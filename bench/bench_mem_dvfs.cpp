// E7 — memory-DVFS extension: adds a third (DRAM) frequency domain to the
// SoC and lets every policy control it like another cluster (the RL policy
// simply instantiates a third factored agent). Compares against pinning
// memory at its top OPP — the configuration the paper's two-domain policy
// implicitly assumes — to quantify what co-managing memory buys.

#include <cstdio>

#include "bench_common.hpp"
#include "governors/registry.hpp"
#include "util/table.hpp"

using namespace pmrl;

namespace {
soc::SocConfig mem_soc_config() {
  soc::SocConfig config = soc::default_mobile_soc_config();
  config.memory.enabled = true;
  return config;
}

/// Wrapper that pins the memory domain at its top OPP while the inner
/// governor controls the CPU clusters (the "no memory DVFS" baseline).
class MemPinnedGovernor : public governors::Governor {
 public:
  explicit MemPinnedGovernor(governors::GovernorPtr inner)
      : inner_(std::move(inner)) {}
  std::string name() const override { return inner_->name() + "+memmax"; }
  void reset(const governors::PolicyObservation& initial) override {
    inner_->reset(initial);
  }
  void decide(const governors::PolicyObservation& obs,
              governors::OppRequest& request) override {
    inner_->decide(obs, request);
    request.back() = obs.soc.clusters.back().opp_count - 1;
  }

 private:
  governors::GovernorPtr inner_;
};
}  // namespace

int main() {
  bench::print_banner("E7", "memory-DVFS third domain",
                      "extension: co-managing the DRAM frequency domain");

  core::SimEngine engine(mem_soc_config(), core::EngineConfig{});
  const std::size_t domains = 3;  // little, big, memory

  // RL with a third factored agent for the memory domain.
  rl::RlGovernor rl_policy(rl::RlGovernorConfig{}, domains);
  rl::TrainerConfig train_cfg;
  train_cfg.episodes = bench::kDefaultEpisodes;
  rl::Trainer trainer(engine, rl_policy, train_cfg);
  trainer.train();

  TextTable table({"policy", "mean E/QoS [J]", "mean energy [J]",
                   "violation rate", "mean f_mem [MHz]"});
  auto add = [&](governors::Governor& governor) {
    const auto summary = bench::evaluate_policy(engine, governor);
    double f_mem = 0.0;
    for (const auto& run : summary.runs) f_mem += run.mean_freq_hz.back();
    f_mem /= static_cast<double>(summary.runs.size());
    table.add_row({governor.name(),
                   TextTable::num(summary.mean_energy_per_qos(), 5),
                   TextTable::num(summary.mean_energy_j(), 1),
                   TextTable::percent(summary.mean_violation_rate()),
                   TextTable::num(f_mem / 1e6, 0)});
  };

  MemPinnedGovernor ondemand_pinned(governors::make_governor("ondemand"));
  add(ondemand_pinned);
  auto ondemand = governors::make_governor("ondemand");
  add(*ondemand);  // ondemand also scales memory (devfreq-style)
  add(rl_policy);
  table.print();

  std::printf(
      "\nexpected shape: scaling the memory domain (devfreq-style ondemand "
      "or the RL's third agent) cuts energy vs pinning DRAM at max without "
      "raising violations; RL finds the lowest sufficient memory "
      "frequency.\n");
  return 0;
}
