// E5 — adaptation under scenario switching: the mixed scenario chains
// video -> game -> web -> idle -> launch phases. Compares the online
// (learning) policy, the frozen (greedy-only) policy, and ondemand —
// demonstrating the paper's claim that the policy "adapts to the
// variations in the system".

#include <cstdio>

#include "bench_common.hpp"
#include "governors/registry.hpp"
#include "util/table.hpp"

using namespace pmrl;

int main() {
  bench::print_banner("E5", "adaptation under scenario switching",
                      "policy adaptivity claim (mixed-scenario chains)");

  auto engine = bench::make_default_engine();
  const std::vector<workload::ScenarioKind> mixed_only = {
      workload::ScenarioKind::Mixed};

  // Train on a *subset* of the scenarios (video/web/game) so that the mixed
  // evaluation chains contain phases the policy never saw (app launches,
  // audio idle). Online learning can adapt to them; the frozen policy
  // cannot.
  auto train_subset_policy = [&] {
    auto governor = std::make_unique<rl::RlGovernor>(
        rl::RlGovernorConfig{}, engine.soc_config().clusters.size());
    rl::TrainerConfig train_cfg;
    train_cfg.episodes = bench::kDefaultEpisodes;
    train_cfg.workload_seed = bench::kTrainSeed;
    train_cfg.scenarios = {workload::ScenarioKind::VideoPlayback,
                           workload::ScenarioKind::WebBrowsing,
                           workload::ScenarioKind::Gaming};
    rl::Trainer trainer(engine, *governor, train_cfg);
    trainer.train();
    return governor;
  };
  auto online_gov = train_subset_policy();
  auto frozen_gov = train_subset_policy();
  frozen_gov->set_frozen(true);
  struct {
    std::unique_ptr<rl::RlGovernor> governor;
  } online{std::move(online_gov)}, frozen{std::move(frozen_gov)};
  auto ondemand = governors::make_governor("ondemand");

  TextTable table({"policy", "mode", "E/QoS [J]", "viol rate",
                   "energy [J]", "DVFS transitions"});
  auto add = [&](const char* label, const char* mode,
                 governors::Governor& g) {
    // Three held-out mixed chains.
    double epqos = 0.0;
    double viol = 0.0;
    double energy = 0.0;
    double transitions = 0.0;
    constexpr int kChains = 3;
    for (int i = 0; i < kChains; ++i) {
      const auto summary = bench::evaluate_policy(
          engine, g, bench::kEvalSeed + static_cast<std::uint64_t>(i),
          mixed_only);
      epqos += summary.runs[0].energy_per_qos;
      viol += summary.runs[0].violation_rate;
      energy += summary.runs[0].energy_j;
      transitions += static_cast<double>(summary.runs[0].dvfs_transitions);
    }
    table.add_row({label, mode, TextTable::num(epqos / kChains, 5),
                   TextTable::percent(viol / kChains),
                   TextTable::num(energy / kChains, 1),
                   TextTable::num(transitions / kChains, 0)});
  };
  add("rl", "online (learning)", *online.governor);
  add("rl", "frozen (greedy)", *frozen.governor);
  add("ondemand", "-", *ondemand);
  table.print();

  std::printf(
      "\nexpected shape: online rl <= frozen rl in E/QoS (adaptation "
      "helps), both competitive with ondemand; frozen may lose QoS on "
      "unseen phases.\n");
  return 0;
}
