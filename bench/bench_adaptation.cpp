// E5 — adaptation under scenario switching: the mixed scenario chains
// video -> game -> web -> idle -> launch phases. Compares the online
// (learning) policy, the frozen (greedy-only) policy, and ondemand —
// demonstrating the paper's claim that the policy "adapts to the
// variations in the system".

#include <cstdio>

#include "bench_common.hpp"
#include "governors/registry.hpp"
#include "util/table.hpp"

using namespace pmrl;

int main(int argc, char** argv) {
  bench::print_banner("E5", "adaptation under scenario switching",
                      "policy adaptivity claim (mixed-scenario chains)");

  auto farm = bench::make_default_farm(bench::jobs_from_args(argc, argv));
  const std::vector<workload::ScenarioKind> mixed_only = {
      workload::ScenarioKind::Mixed};

  // Train on a *subset* of the scenarios (video/web/game) so that the mixed
  // evaluation chains contain phases the policy never saw (app launches,
  // audio idle). Online learning can adapt to them; the frozen policy
  // cannot. The two trainings are identical independent jobs — one farm
  // task each, with a task-local engine.
  auto train_subset_policy = [&farm]() -> std::unique_ptr<rl::RlGovernor> {
    core::SimEngine engine(farm.soc_config(), farm.engine_config());
    auto governor = std::make_unique<rl::RlGovernor>(
        rl::RlGovernorConfig{}, engine.soc_config().clusters.size());
    rl::TrainerConfig train_cfg;
    train_cfg.episodes = bench::kDefaultEpisodes;
    train_cfg.workload_seed = bench::kTrainSeed;
    train_cfg.scenarios = {workload::ScenarioKind::VideoPlayback,
                           workload::ScenarioKind::WebBrowsing,
                           workload::ScenarioKind::Gaming};
    rl::Trainer trainer(engine, *governor, train_cfg);
    trainer.train();
    return governor;
  };
  std::vector<std::function<std::unique_ptr<rl::RlGovernor>()>> train_tasks =
      {train_subset_policy, train_subset_policy};
  auto trained = bench::farm_map_timed<std::unique_ptr<rl::RlGovernor>>(
      farm, "subset-train", train_tasks);
  auto online_gov = std::move(trained[0]);
  auto frozen_gov = std::move(trained[1]);
  frozen_gov->set_frozen(true);
  auto ondemand = governors::make_governor("ondemand");

  // Three held-out mixed chains per policy. A learning policy's chains are
  // order-dependent (its state carries across chains), so the chain loop
  // stays serial inside each policy's farm task; the three policies are
  // independent tasks.
  struct Row {
    double epqos = 0.0;
    double viol = 0.0;
    double energy = 0.0;
    double transitions = 0.0;
  };
  constexpr int kChains = 3;
  auto eval_chains = [&](governors::Governor& g) {
    core::SimEngine engine(farm.soc_config(), farm.engine_config());
    Row row;
    for (int i = 0; i < kChains; ++i) {
      const auto summary = bench::evaluate_policy(
          engine, g, bench::kEvalSeed + static_cast<std::uint64_t>(i),
          mixed_only);
      row.epqos += summary.runs[0].energy_per_qos;
      row.viol += summary.runs[0].violation_rate;
      row.energy += summary.runs[0].energy_j;
      row.transitions += static_cast<double>(summary.runs[0].dvfs_transitions);
    }
    return row;
  };
  std::vector<std::function<Row()>> eval_tasks = {
      [&] { return eval_chains(*online_gov); },
      [&] { return eval_chains(*frozen_gov); },
      [&] { return eval_chains(*ondemand); }};
  const auto rows = bench::farm_map_timed<Row>(farm, "chains", eval_tasks);

  TextTable table({"policy", "mode", "E/QoS [J]", "viol rate",
                   "energy [J]", "DVFS transitions"});
  const char* labels[] = {"rl", "rl", "ondemand"};
  const char* modes[] = {"online (learning)", "frozen (greedy)", "-"};
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    table.add_row({labels[i], modes[i], TextTable::num(r.epqos / kChains, 5),
                   TextTable::percent(r.viol / kChains),
                   TextTable::num(r.energy / kChains, 1),
                   TextTable::num(r.transitions / kChains, 0)});
  }
  table.print();

  std::printf(
      "\nexpected shape: online rl <= frozen rl in E/QoS (adaptation "
      "helps), both competitive with ondemand; frozen may lose QoS on "
      "unseen phases.\n");
  return 0;
}
