// Microbenchmarks (google-benchmark) for the policy hot paths: state
// encoding, Q selection/update in both arithmetics, the hardware datapath
// invocation, and the simulator tick itself. These measure the *host*
// implementation speed (how fast the simulation runs), not the modeled
// device latencies (those are E2).

#include <benchmark/benchmark.h>

#include "core/engine.hpp"
#include "hw/hw_policy.hpp"
#include "rl/rl_governor.hpp"
#include "workload/scenarios.hpp"

using namespace pmrl;

namespace {

governors::PolicyObservation sample_observation() {
  governors::PolicyObservation obs;
  obs.soc.clusters.resize(2);
  for (std::size_t c = 0; c < 2; ++c) {
    auto& ct = obs.soc.clusters[c];
    ct.cluster_id = c;
    ct.opp_index = 7;
    ct.opp_count = c == 0 ? 13 : 19;
    ct.freq_hz = 900e6;
    ct.max_freq_hz = c == 0 ? 1.4e9 : 2.0e9;
    ct.util_avg = 0.42;
    ct.util_max = 0.61;
    ct.max_power_w = c == 0 ? 0.8 : 6.8;
  }
  obs.epoch_duration_s = 0.02;
  obs.epoch_energy_j = 0.02;
  obs.epoch_quality = 4.5;
  obs.epoch_releases = 5;
  obs.cluster_feedback.resize(2);
  obs.cluster_feedback[1].epoch_energy_j = 0.015;
  obs.cluster_feedback[1].epoch_deadline_quality = 3.0;
  obs.cluster_feedback[1].epoch_deadline_completed = 3;
  return obs;
}

void BM_StateEncode(benchmark::State& state) {
  const rl::StateEncoder encoder(rl::StateConfig{}, 2);
  const auto obs = sample_observation();
  for (auto _ : state) {
    benchmark::DoNotOptimize(encoder.encode_cluster(obs, 1));
  }
}
BENCHMARK(BM_StateEncode);

void BM_FloatAgentStep(benchmark::State& state) {
  rl::QLearningAgent agent(rl::QLearningConfig{}, 240, 3);
  std::size_t s = 0;
  for (auto _ : state) {
    const std::size_t a = agent.select_action(s);
    agent.learn(s, a, -0.3, (s + 1) % 240);
    s = (s + 7) % 240;
  }
}
BENCHMARK(BM_FloatAgentStep);

void BM_FixedAgentStep(benchmark::State& state) {
  rl::FixedAgentConfig config;
  rl::FixedPointQAgent agent(config, 1024, 9);
  std::size_t s = 0;
  for (auto _ : state) {
    const std::size_t a = agent.select_action(s);
    agent.learn(s, a, -0.3, (s + 1) % 1024);
    s = (s + 13) % 1024;
  }
}
BENCHMARK(BM_FixedAgentStep);

void BM_HwDatapathInvoke(benchmark::State& state) {
  hw::HwPolicyEngine engine(hw::HwPolicyConfig{}, 1024, 9);
  hw::PolicyLatency latency;
  std::size_t s = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.invoke(s, -0.3, latency));
    s = (s + 13) % 1024;
  }
}
BENCHMARK(BM_HwDatapathInvoke);

void BM_SocTick(benchmark::State& state) {
  soc::Soc soc(soc::default_mobile_soc_config());
  const auto task = soc.create_task("bench", soc::Affinity::Any, 1.0);
  std::vector<soc::CompletedJob> completed;
  std::uint64_t job_id = 0;
  for (auto _ : state) {
    soc::Job job;
    job.id = ++job_id;
    job.work_cycles = 1e6;
    soc.submit(task, job);
    completed.clear();
    soc.step(0.001, completed);
    benchmark::DoNotOptimize(completed.size());
  }
}
BENCHMARK(BM_SocTick);

void BM_EngineSecondSimulated(benchmark::State& state) {
  core::SimEngine engine(soc::default_mobile_soc_config(),
                         core::EngineConfig{0.001, 0.02, 1.0, 0.25});
  rl::RlGovernor governor(rl::RlGovernorConfig{}, 2);
  std::uint64_t seed = 1;
  for (auto _ : state) {
    auto scenario =
        workload::make_scenario(workload::ScenarioKind::VideoPlayback,
                                seed++);
    benchmark::DoNotOptimize(engine.run(*scenario, governor).energy_j);
  }
}
BENCHMARK(BM_EngineSecondSimulated)->Unit(benchmark::kMillisecond);

}  // namespace
