// E1 — the paper's headline comparison: average energy per unit QoS of the
// RL policy vs the six conventional DVFS governors. The paper reports the
// proposed policy 31.66% lower than the six governors (journal figure; the
// LBR states "lower energy per QoS").

#include <cstdio>

#include "bench_common.hpp"
#include "governors/registry.hpp"
#include "util/table.hpp"

using namespace pmrl;

int main() {
  bench::print_banner("E1", "energy per unit QoS vs six DVFS governors",
                      "headline comparison (31.66% lower average E/QoS)");

  auto engine = bench::make_default_engine();
  auto trained = bench::train_default_policy(engine);
  std::printf("trained %zu episodes; final epsilon %.3f\n\n",
              trained.curve.size(), trained.governor->agent().epsilon());

  const auto baselines = bench::evaluate_baselines(engine);
  const auto ours = bench::evaluate_policy(engine, *trained.governor);
  // schedutil post-dates the paper's six baselines; reported as an extra
  // row, excluded from the six-governor aggregate.
  auto schedutil = governors::make_governor("schedutil");
  const auto extra = bench::evaluate_policy(engine, *schedutil);

  TextTable table({"policy", "mean E/QoS [J]", "mean energy [J]",
                   "violation rate", "E/QoS vs RL"});
  auto add_row = [&](const core::PolicySummary& s) {
    table.add_row({s.governor, TextTable::num(s.mean_energy_per_qos(), 5),
                   TextTable::num(s.mean_energy_j(), 1),
                   TextTable::percent(s.mean_violation_rate()),
                   TextTable::num(s.mean_energy_per_qos() /
                                      ours.mean_energy_per_qos(),
                                  2) +
                       "x"});
  };
  for (const auto& b : baselines) add_row(b);
  add_row(extra);
  add_row(ours);
  table.print();
  std::printf("(schedutil is a post-paper extra baseline; the aggregates "
              "below use only the paper's six)\n");

  std::printf(
      "\nRL improvement, mean of per-governor savings:   %6.2f%%\n",
      100.0 * core::mean_improvement_vs_baselines(ours, baselines));
  std::printf(
      "RL improvement vs six-governor average E/QoS:   %6.2f%%   "
      "(paper: 31.66%%)\n",
      100.0 * core::improvement_vs_mean_baseline(ours, baselines));
  return 0;
}
