// E1 — the paper's headline comparison: average energy per unit QoS of the
// RL policy vs the six conventional DVFS governors. The paper reports the
// proposed policy 31.66% lower than the six governors (journal figure; the
// LBR states "lower energy per QoS").

#include <cstdio>

#include "bench_common.hpp"
#include "governors/registry.hpp"
#include "util/table.hpp"

using namespace pmrl;

int main(int argc, char** argv) {
  bench::print_banner("E1", "energy per unit QoS vs six DVFS governors",
                      "headline comparison (31.66% lower average E/QoS)");

  auto farm = bench::make_default_farm(bench::jobs_from_args(argc, argv));
  auto engine = bench::make_default_engine();
  auto trained = bench::train_default_policy(engine);
  std::printf("trained %zu episodes; final epsilon %.3f\n\n",
              trained.curve.size(), trained.governor->agent().epsilon());

  const auto baselines = bench::evaluate_baselines(farm);
  // Our policy and the schedutil extra are two more independent farm
  // tasks; each evaluates its six scenarios serially inside the task.
  // schedutil post-dates the paper's six baselines; reported as an extra
  // row, excluded from the six-governor aggregate.
  std::vector<std::function<core::PolicySummary()>> tasks;
  tasks.push_back([&] {
    core::SimEngine eval_engine(farm.soc_config(), farm.engine_config());
    return bench::evaluate_policy(eval_engine, *trained.governor);
  });
  tasks.push_back([&] {
    core::SimEngine eval_engine(farm.soc_config(), farm.engine_config());
    auto schedutil = governors::make_governor("schedutil");
    return bench::evaluate_policy(eval_engine, *schedutil);
  });
  const auto extras =
      bench::farm_map_timed<core::PolicySummary>(farm, "ours+extra", tasks);
  const auto& ours = extras[0];
  const auto& extra = extras[1];

  TextTable table({"policy", "mean E/QoS [J]", "mean energy [J]",
                   "violation rate", "E/QoS vs RL"});
  auto add_row = [&](const core::PolicySummary& s) {
    table.add_row({s.governor, TextTable::num(s.mean_energy_per_qos(), 5),
                   TextTable::num(s.mean_energy_j(), 1),
                   TextTable::percent(s.mean_violation_rate()),
                   TextTable::num(s.mean_energy_per_qos() /
                                      ours.mean_energy_per_qos(),
                                  2) +
                       "x"});
  };
  for (const auto& b : baselines) add_row(b);
  add_row(extra);
  add_row(ours);
  table.print();
  std::printf("(schedutil is a post-paper extra baseline; the aggregates "
              "below use only the paper's six)\n");

  std::printf(
      "\nRL improvement, mean of per-governor savings:   %6.2f%%\n",
      100.0 * core::mean_improvement_vs_baselines(ours, baselines));
  std::printf(
      "RL improvement vs six-governor average E/QoS:   %6.2f%%   "
      "(paper: 31.66%%)\n",
      100.0 * core::improvement_vs_mean_baseline(ours, baselines));
  return 0;
}
