// A1 — ablation over the state discretization: how the per-domain state
// granularity (utilization / OPP / QoS-pressure bins) trades learning speed
// against control resolution. Coarse OPP bins alias the low indices and
// park mid-table; generous exact-OPP states are the default.

#include <cstdio>

#include "bench_common.hpp"
#include "util/table.hpp"

using namespace pmrl;

int main(int argc, char** argv) {
  bench::print_banner("A1", "state-discretization ablation",
                      "design-choice study for the state encoding");
  auto farm = bench::make_default_farm(bench::jobs_from_args(argc, argv));

  struct Config {
    const char* label;
    std::size_t util_bins;
    std::size_t opp_bins;
    std::size_t qos_bins;
  };
  const Config configs[] = {
      {"util2 opp20 qos3", 2, 20, 3},
      {"util4 opp4  qos3 (binned OPP)", 4, 4, 3},
      {"util4 opp8  qos3", 4, 8, 3},
      {"util4 opp20 qos3 (default)", 4, 20, 3},
      {"util8 opp20 qos3", 8, 20, 3},
      {"util4 opp20 qos1 (no QoS state)", 4, 20, 1},
      {"util4 opp20 qos6", 4, 20, 6},
  };

  // One farm task per state configuration (train + eval on a task-local
  // engine); rows come back in config order.
  std::vector<std::function<bench::TrainEval()>> tasks;
  for (const auto& c : configs) {
    tasks.push_back([&farm, c] {
      rl::RlGovernorConfig config;
      config.state.util_bins = c.util_bins;
      config.state.opp_bins = c.opp_bins;
      config.state.qos_bins = c.qos_bins;
      return bench::train_and_evaluate(farm, config);
    });
  }
  const auto results =
      bench::farm_map_timed<bench::TrainEval>(farm, "state-configs", tasks);

  TextTable table({"state config", "states/domain", "mean E/QoS [J]",
                   "violation rate", "mean energy [J]"});
  for (std::size_t i = 0; i < results.size(); ++i) {
    const auto& summary = results[i].summary;
    table.add_row(
        {configs[i].label,
         std::to_string(
             results[i].trained.governor->encoder().cluster_state_count()),
         TextTable::num(summary.mean_energy_per_qos(), 5),
         TextTable::percent(summary.mean_violation_rate()),
         TextTable::num(summary.mean_energy_j(), 1)});
  }
  table.print();
  std::printf(
      "\nexpected shape: coarse OPP bins (opp4) park mid-table and waste "
      "energy; removing the QoS state (qos1) raises violations; the "
      "default is at or near the E/QoS minimum.\n");
  return 0;
}
