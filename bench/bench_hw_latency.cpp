// E2 — hardware vs software policy decision latency. The journal extension
// reports hardware decision-making 3.92x faster than software end to end;
// the LBR reports "up to 40x" average-latency reduction for the raw
// datapath. Both implementations run the same fixed-point Q-learning
// algorithm; the stream of (state, reward) invocations is captured from a
// real simulated run so the replay exercises realistic addresses.

#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "hw/latency.hpp"
#include "rl/rl_governor.hpp"
#include "util/table.hpp"

using namespace pmrl;

namespace {

/// Joint-policy configuration matching the modeled accelerator: one Q
/// memory of 1024 states x 9 actions in Q5.10 fixed point.
rl::RlGovernorConfig hw_joint_config() {
  rl::RlGovernorConfig config;
  config.structure = rl::PolicyStructure::Joint;
  config.backend = rl::AgentBackend::Fixed;
  config.state.util_bins = 4;
  config.state.opp_bins = 4;
  config.state.qos_bins = 4;  // 4*(4*4)^2 = 1024 joint states
  config.action.jump = 0;     // 3^2 = 9 joint actions
  return config;
}

/// Captures the encoded state + reward of every decision epoch while the
/// wrapped policy controls the SoC.
class CapturingGovernor : public governors::Governor {
 public:
  CapturingGovernor(rl::RlGovernor& inner,
                    std::vector<hw::InvocationRecord>& out)
      : inner_(inner), out_(out) {}
  std::string name() const override { return inner_.name(); }
  void reset(const governors::PolicyObservation& initial) override {
    inner_.reset(initial);
  }
  void decide(const governors::PolicyObservation& obs,
              governors::OppRequest& request) override {
    out_.push_back({inner_.encoder().encode(obs),
                    inner_.reward()(obs, false)});
    inner_.decide(obs, request);
  }

 private:
  rl::RlGovernor& inner_;
  std::vector<hw::InvocationRecord>& out_;
};

}  // namespace

int main() {
  bench::print_banner(
      "E2", "policy decision latency: hardware vs software",
      "3.92x end-to-end speedup (journal) / up to 40x raw (LBR)");

  // Capture a realistic invocation stream: the joint policy controlling the
  // SoC through the mixed scenario.
  auto engine = bench::make_default_engine();
  rl::RlGovernor policy(hw_joint_config(),
                        engine.soc_config().clusters.size());
  std::vector<hw::InvocationRecord> stream;
  CapturingGovernor capture(policy, stream);
  for (std::size_t episode = 0; episode < 4; ++episode) {
    auto scenario = workload::make_scenario(workload::ScenarioKind::Mixed,
                                            bench::kTrainSeed + episode);
    policy.begin_episode();
    engine.run(*scenario, capture);
  }
  std::printf("captured %zu policy invocations from simulation\n\n",
              stream.size());

  hw::LatencyExperimentConfig config;
  config.hw.agent.learning = hw_joint_config().learning;
  const std::size_t states = policy.encoder().state_count();
  const std::size_t actions = policy.actions().action_count();
  const auto result =
      hw::run_latency_experiment(config, states, actions, stream);

  hw::HwPolicyEngine probe(config.hw, states, actions);
  std::printf("accelerator: %zu states x %zu actions, %u-bit Q words "
              "(%.1f kbit BRAM), %.0f MHz\n",
              states, actions, config.hw.agent.total_bits,
              probe.datapath().qmem_bits() / 1000.0,
              config.hw.fpga_clock_hz / 1e6);
  std::printf("datapath: decide %u cycles + update %u cycles; "
              "interface %.0f ns/invocation\n\n",
              probe.datapath().decide_cycle_count(),
              probe.datapath().update_cycle_count(),
              probe.interface_latency_s() * 1e9);

  TextTable table({"implementation", "mean [us]", "p50 [us]", "p99 [us]",
                   "max [us]"});
  auto row = [&](const char* name, const SampleSet& s) {
    table.add_row({name, TextTable::num(s.mean() * 1e6, 3),
                   TextTable::num(s.quantile(0.5) * 1e6, 3),
                   TextTable::num(s.quantile(0.99) * 1e6, 3),
                   TextTable::num(s.max() * 1e6, 3)});
  };
  row("software (kernel governor)", result.sw_latency_s);
  row("hardware, end-to-end (AXI)", result.hw_end_to_end_s);
  row("hardware, raw datapath", result.hw_raw_s);
  table.print();

  std::printf("\nspeedup end-to-end (mean): %5.2fx   (paper: 3.92x)\n",
              result.mean_speedup_end_to_end());
  std::printf("speedup raw datapath (mean): %5.2fx\n",
              result.mean_speedup_raw());
  std::printf("speedup raw datapath (p99 SW / raw): %5.2fx   "
              "(paper LBR: up to 40x)\n",
              result.sw_latency_s.quantile(0.99) / result.hw_raw_s.mean());
  return 0;
}
