// A4 — ablation over the decision-epoch length: shorter epochs track
// workload phases more closely but multiply the per-decision runtime
// overhead, which is exactly the overhead the paper's hardware
// implementation attacks. The table therefore also reports the decision
// overhead of the software vs hardware policy as a fraction of each epoch.

#include <cstdio>

#include "bench_common.hpp"
#include "hw/latency.hpp"
#include "util/table.hpp"

using namespace pmrl;

int main(int argc, char** argv) {
  bench::print_banner("A4", "decision-epoch length ablation",
                      "epoch-length design choice + overhead motivation");
  auto farm = bench::make_default_farm(bench::jobs_from_args(argc, argv));

  // Decision overhead per invocation from the latency models (E2).
  hw::LatencyExperimentConfig lat_config;
  hw::SwPolicyCostModel sw_model(lat_config.sw, /*action_count=*/9);
  hw::HwPolicyEngine hw_engine(lat_config.hw, 1024, 9);
  const double sw_s = sw_model.mean_latency_s();
  hw::PolicyLatency probe;
  hw_engine.invoke(0, 0.0, probe);
  const double hw_s = probe.end_to_end_s;

  // Each epoch length needs its own engine timing config, so the farm task
  // builds the engine itself rather than going through train_and_evaluate.
  const double epochs_ms[] = {10.0, 20.0, 50.0, 100.0, 200.0};
  std::vector<std::function<core::PolicySummary()>> tasks;
  for (const double epoch_ms : epochs_ms) {
    tasks.push_back([epoch_ms] {
      core::EngineConfig engine_config;
      engine_config.decision_period_s = epoch_ms / 1000.0;
      core::SimEngine engine(soc::default_mobile_soc_config(), engine_config);
      auto trained = bench::train_default_policy(engine);
      return bench::evaluate_policy(engine, *trained.governor);
    });
  }
  const auto results =
      bench::farm_map_timed<core::PolicySummary>(farm, "epochs", tasks);

  TextTable table({"epoch [ms]", "mean E/QoS [J]", "violation rate",
                   "mean energy [J]", "SW overhead", "HW overhead"});
  for (std::size_t i = 0; i < results.size(); ++i) {
    const double epoch_ms = epochs_ms[i];
    const auto& summary = results[i];
    table.add_row({TextTable::num(epoch_ms, 0),
                   TextTable::num(summary.mean_energy_per_qos(), 5),
                   TextTable::percent(summary.mean_violation_rate()),
                   TextTable::num(summary.mean_energy_j(), 1),
                   TextTable::percent(sw_s / (epoch_ms / 1000.0), 3),
                   TextTable::percent(hw_s / (epoch_ms / 1000.0), 3)});
  }
  table.print();
  std::printf(
      "\nexpected shape: E/QoS improves toward shorter epochs until the "
      "PELT window (~32 ms half-life) is undersampled; the software "
      "policy's overhead share grows ~4x faster than the hardware "
      "policy's, which is the motivation for the FPGA implementation.\n");
  return 0;
}
