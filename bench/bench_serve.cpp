// SERVE — performance baseline of the policy-decision service. Phases:
//
//  1. Headline throughput: pipelined clients with client-side frame
//     batching (many Query frames per write) against the sharded server
//     over loopback UDS; reports decisions/sec and exact p50/p95/p99
//     chunk-round-trip latency, plus the in-process batched-argmax cost as
//     the no-transport floor.
//  2. Scaling curve: 1/2/4/8 clients x {uds, tcp, shm} transports, same
//     pipelined load, one row each; the max-client cell per transport is
//     the saturation point whose p99 is reported.
//  3. Overload: a server whose service rate is pinned far below the
//     offered load (batch_process_delay) must shed with safe-default
//     responses — every request answered, zero connection drops.
//
// Emits BENCH_serve.json for CI artifact upload and perf-regression
// gating: `--check BASELINE.json [--check-tolerance X]` exits nonzero when
// headline throughput regresses more than X (default 0.30) below the
// baseline file's value.

#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "bench_common.hpp"
#include "core/runfarm/thread_pool.hpp"
#include "obs/metrics.hpp"
#include "rl/batch_argmax.hpp"
#include "serve/client.hpp"
#include "serve/server.hpp"
#include "serve/shm_ring.hpp"
#include "util/table.hpp"

using namespace pmrl;
using Clock = std::chrono::steady_clock;

namespace {

struct ClientStats {
  std::vector<double> latencies_s;
  std::uint64_t responses = 0;
  std::uint64_t cache_hits = 0;
  std::uint64_t safe_defaults = 0;
  bool dropped = false;  ///< connection died mid-run
};

/// Closed-loop pipelined load with client-side frame batching: `chunk`
/// Query frames are encoded into one buffer and written with a single
/// send_raw (one syscall / ring reservation), keeping ~`depth` requests in
/// flight until `until`, then draining. The latency sample is the
/// round-trip of each chunk's first request — send-of-chunk to
/// receive-of-that-id — so it includes the queueing of its chunk peers
/// (honest pipelined latency, not an unloaded ping).
template <typename ClientT>
ClientStats run_pipelined_client(ClientT& client, std::size_t depth,
                                 std::size_t chunk, Clock::time_point until,
                                 std::uint64_t state_count,
                                 std::uint64_t state_offset) {
  ClientStats stats;
  try {
    std::unordered_map<std::uint64_t, Clock::time_point> samples;
    samples.reserve(64);
    std::string buf;
    std::uint64_t seq = state_offset;
    std::uint64_t id = 1;
    std::size_t inflight = 0;
    auto send_chunk = [&] {
      buf.clear();
      const auto now = Clock::now();
      for (std::size_t i = 0; i < chunk; ++i) {
        if (i == 0) samples.emplace(id, now);
        serve::append_query(buf, serve::QueryMsg{id++, 0, seq++ % state_count});
      }
      client.send_raw(buf.data(), buf.size());
      inflight += chunk;
    };
    auto recv_one = [&] {
      const auto msg = client.recv_response();
      --inflight;
      ++stats.responses;
      if (msg.flags & serve::kRespCacheHit) ++stats.cache_hits;
      if (msg.flags & serve::kRespSafeDefault) ++stats.safe_defaults;
      const auto it = samples.find(msg.request_id);
      if (it != samples.end()) {
        stats.latencies_s.push_back(
            std::chrono::duration<double>(Clock::now() - it->second).count());
        samples.erase(it);
      }
    };
    while (inflight + chunk <= depth) send_chunk();
    while (Clock::now() < until) {
      for (std::size_t i = 0; i < chunk && inflight > 0; ++i) recv_one();
      send_chunk();
    }
    while (inflight > 0) recv_one();
  } catch (const serve::ClientError&) {
    stats.dropped = true;
  }
  return stats;
}

double percentile_exact(std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  const auto rank = static_cast<std::size_t>(
      q * static_cast<double>(sorted.size() - 1) + 0.5);
  return sorted[std::min(rank, sorted.size() - 1)];
}

std::string bench_path(const char* phase, const char* suffix) {
  return "/tmp/pmrl_bench_serve_" + std::to_string(::getpid()) + "_" + phase +
         suffix;
}

struct RunResult {
  double decisions_per_sec = 0.0;
  double p50_us = 0.0;
  double p95_us = 0.0;
  double p99_us = 0.0;
  double cache_hit_rate = 0.0;
  std::uint64_t responses = 0;
  std::uint64_t safe_defaults = 0;
  bool drops = false;
};

RunResult summarize(std::vector<ClientStats>& per_client, double wall_s) {
  RunResult result;
  std::uint64_t cache_hits = 0;
  std::vector<double> latencies;
  for (auto& stats : per_client) {
    result.responses += stats.responses;
    cache_hits += stats.cache_hits;
    result.safe_defaults += stats.safe_defaults;
    result.drops = result.drops || stats.dropped;
    latencies.insert(latencies.end(), stats.latencies_s.begin(),
                     stats.latencies_s.end());
  }
  std::sort(latencies.begin(), latencies.end());
  result.decisions_per_sec =
      wall_s > 0.0 ? static_cast<double>(result.responses) / wall_s : 0.0;
  result.p50_us = percentile_exact(latencies, 0.50) * 1e6;
  result.p95_us = percentile_exact(latencies, 0.95) * 1e6;
  result.p99_us = percentile_exact(latencies, 0.99) * 1e6;
  result.cache_hit_rate =
      result.responses > 0
          ? static_cast<double>(cache_hits) /
                static_cast<double>(result.responses)
          : 0.0;
  return result;
}

/// One load cell: a fresh server configured for `transport` ("uds", "tcp",
/// or "shm"), `clients` pipelined connections for `duration_s`.
RunResult run_cell(const std::string& transport, std::size_t clients,
                   std::size_t workers, std::size_t depth, std::size_t chunk,
                   double duration_s) {
  serve::ServerConfig config;
  config.workers = workers;
  if (transport == "uds") {
    config.uds_path = bench_path("cell", ".sock");
  } else if (transport == "tcp") {
    config.uds_path.clear();
    config.tcp_enable = true;
  } else {
    config.uds_path.clear();
    config.shm_path = bench_path("cell", ".shm");
    config.shm_lanes = clients + 1;
    config.shm_workers = std::min<std::size_t>(workers, clients);
  }
  serve::PolicyServer server(config);
  server.start();
  const auto state_count = static_cast<std::uint64_t>(
      server.governor().agent(0).state_count());
  const auto until =
      Clock::now() + std::chrono::duration_cast<Clock::duration>(
                         std::chrono::duration<double>(duration_s));
  const auto wall0 = Clock::now();
  std::vector<ClientStats> per_client(clients);
  {
    std::vector<std::thread> threads;
    for (std::size_t c = 0; c < clients; ++c) {
      threads.emplace_back([&, c] {
        try {
          if (transport == "shm") {
            serve::ShmClient client(config.shm_path);
            per_client[c] = run_pipelined_client(client, depth, chunk, until,
                                                 state_count, c * 37);
          } else if (transport == "tcp") {
            auto client =
                serve::Client::connect_tcp("127.0.0.1", server.tcp_port());
            per_client[c] = run_pipelined_client(client, depth, chunk, until,
                                                 state_count, c * 37);
          } else {
            auto client = serve::Client::connect_uds(config.uds_path);
            per_client[c] = run_pipelined_client(client, depth, chunk, until,
                                                 state_count, c * 37);
          }
        } catch (const serve::ClientError&) {
          per_client[c].dropped = true;
        }
      });
    }
    for (auto& thread : threads) thread.join();
  }
  const double wall_s =
      std::chrono::duration<double>(Clock::now() - wall0).count();
  server.stop();
  return summarize(per_client, wall_s);
}

}  // namespace

int main(int argc, char** argv) {
  double duration_s = 3.0;
  std::string out_path = "BENCH_serve.json";
  std::string check_path;
  double check_tolerance = 0.30;
  std::size_t conns = 4;
  std::size_t depth = 256;
  std::size_t chunk = 32;
  std::size_t workers = 4;
  bool run_curve = true;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    auto value = [&](const char* flag, int len) -> const char* {
      if (std::strncmp(arg, flag, static_cast<std::size_t>(len)) == 0 &&
          arg[len] == '=') {
        return arg + len + 1;
      }
      if (std::strcmp(arg, flag) == 0 && i + 1 < argc) return argv[++i];
      return nullptr;
    };
    if (const char* dur = value("--duration", 10)) {
      duration_s = std::atof(dur);
    } else if (const char* path = value("--out", 5)) {
      out_path = path;
    } else if (const char* baseline = value("--check", 7)) {
      check_path = baseline;
    } else if (const char* tol = value("--check-tolerance", 17)) {
      check_tolerance = std::atof(tol);
    } else if (const char* n_conns = value("--conns", 7)) {
      conns = static_cast<std::size_t>(std::atoi(n_conns));
    } else if (const char* n_depth = value("--depth", 7)) {
      depth = static_cast<std::size_t>(std::atoi(n_depth));
    } else if (const char* n_chunk = value("--chunk", 7)) {
      chunk = static_cast<std::size_t>(std::atoi(n_chunk));
    } else if (const char* n_workers = value("--workers", 9)) {
      workers = static_cast<std::size_t>(std::atoi(n_workers));
    } else if (std::strcmp(arg, "--no-curve") == 0) {
      run_curve = false;
    }
  }
  if (duration_s <= 0.0 || conns == 0 || depth == 0 || chunk == 0 ||
      workers == 0 || depth < chunk) {
    std::fprintf(stderr,
                 "--duration/--conns/--depth/--chunk/--workers need positive "
                 "values with depth >= chunk\n");
    return 2;
  }

  bench::print_banner("SERVE",
                      "policy-decision service throughput + scaling + "
                      "overload",
                      "serving baseline (BENCH_serve.json), not a paper "
                      "figure");
  const unsigned hw_threads = std::thread::hardware_concurrency();
  const std::size_t effective_jobs = core::runfarm::default_jobs();
  std::printf("hardware_concurrency %u, effective jobs %zu, simd %s\n\n",
              hw_threads, effective_jobs, rl::batch_argmax_backend());

  // ---- phase 1: headline throughput (loopback UDS) -----------------------
  const RunResult headline =
      run_cell("uds", conns, workers, depth, chunk, duration_s);

  // No-transport floor: the in-process batched argmax the service wraps.
  double direct_ns = 0.0;
  {
    serve::ServerConfig probe_config;
    probe_config.uds_path = bench_path("probe", ".sock");
    serve::PolicyServer probe(probe_config);
    const auto& agent = probe.governor().agent(0);
    const auto state_count =
        static_cast<std::uint64_t>(agent.state_count());
    constexpr std::size_t kCalls = 2'000'000;
    constexpr std::size_t kBatch = 32;
    std::vector<std::uint64_t> states(kBatch);
    std::vector<std::uint32_t> actions(kBatch);
    std::size_t sink = 0;
    const auto t0 = Clock::now();
    for (std::size_t i = 0; i < kCalls; i += kBatch) {
      for (std::size_t j = 0; j < kBatch; ++j) {
        states[j] = (i + j * 7) % state_count;
      }
      agent.greedy_actions(states.data(), kBatch, actions.data());
      sink += actions[0];
    }
    const double elapsed =
        std::chrono::duration<double>(Clock::now() - t0).count();
    direct_ns = elapsed / static_cast<double>(kCalls) * 1e9;
    if (sink == static_cast<std::size_t>(-1)) std::printf("?");  // keep sink
  }

  TextTable table({"metric", "value"});
  table.add_row({"decisions/sec",
                 TextTable::num(headline.decisions_per_sec, 0)});
  table.add_row({"p50 chunk latency [us]", TextTable::num(headline.p50_us, 1)});
  table.add_row({"p95 chunk latency [us]", TextTable::num(headline.p95_us, 1)});
  table.add_row({"p99 chunk latency [us]", TextTable::num(headline.p99_us, 1)});
  table.add_row({"cache hit rate", TextTable::percent(headline.cache_hit_rate)});
  table.add_row({"batched argmax [ns/decision]", TextTable::num(direct_ns, 1)});
  table.print();
  const bool meets_100k = headline.decisions_per_sec >= 100'000.0;
  const bool meets_750k = headline.decisions_per_sec >= 750'000.0;
  std::printf("throughput targets over loopback UDS (%zu workers): "
              ">=100k/s %s, >=750k/s %s\n",
              workers, meets_100k ? "met" : "MISSED",
              meets_750k ? "met" : "missed");

  // ---- phase 2: scaling curve --------------------------------------------
  struct CurveRow {
    std::string transport;
    std::size_t clients;
    RunResult result;
  };
  std::vector<CurveRow> curve;
  if (run_curve) {
    const double cell_s = std::max(0.25, duration_s / 3.0);
    const std::size_t client_counts[] = {1, 2, 4, 8};
    std::printf("\nscaling curve (%.2f s per cell, %zu workers):\n", cell_s,
                workers);
    TextTable curve_table(
        {"transport", "clients", "decisions/sec", "p50 [us]", "p99 [us]"});
    for (const char* transport : {"uds", "tcp", "shm"}) {
      for (const std::size_t clients : client_counts) {
        CurveRow row{transport, clients,
                     run_cell(transport, clients, workers, depth, chunk,
                              cell_s)};
        curve_table.add_row(
            {row.transport, TextTable::num(static_cast<double>(clients), 0),
             TextTable::num(row.result.decisions_per_sec, 0),
             TextTable::num(row.result.p50_us, 1),
             TextTable::num(row.result.p99_us, 1)});
        curve.push_back(std::move(row));
      }
    }
    curve_table.print();
  }

  // ---- phase 3: overload shedding ----------------------------------------
  // Pin the service rate: one worker, small batches, 2 ms of forced work
  // per batch => capacity ~ batch_max / delay. The unpaced pipelined
  // clients offer far more; the contract under test is "every request
  // answered, degraded not dropped".
  serve::ServerConfig overload_config;
  overload_config.uds_path = bench_path("ov", ".sock");
  overload_config.workers = 1;
  overload_config.batch_max = 16;
  overload_config.queue_capacity = 64;
  overload_config.request_timeout = std::chrono::milliseconds(1000);
  overload_config.batch_process_delay = std::chrono::microseconds(2000);
  serve::PolicyServer overload_server(overload_config);
  overload_server.start();
  const auto overload_states = static_cast<std::uint64_t>(
      overload_server.governor().agent(0).state_count());
  const double overload_duration_s = std::min(duration_s, 2.0);
  const auto overload_until =
      Clock::now() + std::chrono::duration_cast<Clock::duration>(
                         std::chrono::duration<double>(overload_duration_s));
  const auto overload_wall0 = Clock::now();
  std::vector<ClientStats> overload_clients(2);
  {
    std::vector<std::thread> threads;
    for (std::size_t c = 0; c < overload_clients.size(); ++c) {
      threads.emplace_back([&, c] {
        try {
          auto client = serve::Client::connect_uds(overload_config.uds_path);
          overload_clients[c] = run_pipelined_client(
              client, depth, chunk, overload_until, overload_states, c * 41);
        } catch (const serve::ClientError&) {
          overload_clients[c].dropped = true;
        }
      });
    }
    for (auto& thread : threads) thread.join();
  }
  const double overload_wall_s =
      std::chrono::duration<double>(Clock::now() - overload_wall0).count();
  overload_server.stop();
  const RunResult overload = summarize(overload_clients, overload_wall_s);
  const double capacity_per_sec =
      static_cast<double>(overload_config.batch_max) /
      (static_cast<double>(overload_config.batch_process_delay.count()) *
       1e-6);
  const double shed_fraction =
      overload.responses > 0
          ? static_cast<double>(overload.safe_defaults) /
                static_cast<double>(overload.responses)
          : 0.0;
  std::printf("\noverload: offered %.0f/s vs ~%.0f/s capacity, "
              "%.1f%% shed to safe-default, drops: %s\n",
              overload.decisions_per_sec, capacity_per_sec,
              100.0 * shed_fraction, overload.drops ? "YES (bug)" : "none");

  std::FILE* out = std::fopen(out_path.c_str(), "w");
  if (!out) {
    std::fprintf(stderr, "cannot open %s for writing\n", out_path.c_str());
    return 1;
  }
  std::fprintf(out, "{\n");
  std::fprintf(out, "  \"bench\": \"serve\",\n");
  std::fprintf(out, "  \"duration_s\": %g,\n", duration_s);
  std::fprintf(out, "  \"hardware_concurrency\": %u,\n", hw_threads);
  std::fprintf(out, "  \"effective_jobs\": %zu,\n", effective_jobs);
  std::fprintf(out, "  \"simd_backend\": \"%s\",\n",
               rl::batch_argmax_backend());
  std::fprintf(out, "  \"workers\": %zu,\n", workers);
  std::fprintf(out, "  \"conns\": %zu,\n", conns);
  std::fprintf(out, "  \"depth\": %zu,\n", depth);
  std::fprintf(out, "  \"chunk\": %zu,\n", chunk);
  std::fprintf(out, "  \"throughput\": {\n");
  std::fprintf(out, "    \"decisions_per_sec\": %.1f,\n",
               headline.decisions_per_sec);
  std::fprintf(out, "    \"responses\": %llu,\n",
               static_cast<unsigned long long>(headline.responses));
  std::fprintf(out, "    \"p50_us\": %.2f,\n", headline.p50_us);
  std::fprintf(out, "    \"p95_us\": %.2f,\n", headline.p95_us);
  std::fprintf(out, "    \"p99_us\": %.2f,\n", headline.p99_us);
  std::fprintf(out, "    \"cache_hit_rate\": %.4f,\n",
               headline.cache_hit_rate);
  std::fprintf(out, "    \"connection_drops\": %s,\n",
               headline.drops ? "true" : "false");
  std::fprintf(out, "    \"meets_100k_target\": %s,\n",
               meets_100k ? "true" : "false");
  std::fprintf(out, "    \"meets_750k_target\": %s,\n",
               meets_750k ? "true" : "false");
  std::fprintf(out, "    \"direct_argmax_ns\": %.2f\n", direct_ns);
  std::fprintf(out, "  },\n");
  std::fprintf(out, "  \"scaling\": [");
  for (std::size_t i = 0; i < curve.size(); ++i) {
    const auto& row = curve[i];
    std::fprintf(out,
                 "%s\n    {\"transport\": \"%s\", \"clients\": %zu, "
                 "\"decisions_per_sec\": %.1f, \"p50_us\": %.2f, "
                 "\"p95_us\": %.2f, \"p99_us\": %.2f, "
                 "\"connection_drops\": %s}",
                 i == 0 ? "" : ",", row.transport.c_str(), row.clients,
                 row.result.decisions_per_sec, row.result.p50_us,
                 row.result.p95_us, row.result.p99_us,
                 row.result.drops ? "true" : "false");
  }
  std::fprintf(out, "\n  ],\n");
  std::fprintf(out, "  \"saturation\": {");
  {
    bool first = true;
    for (const char* transport : {"uds", "tcp", "shm"}) {
      const CurveRow* best = nullptr;
      for (const auto& row : curve) {
        if (row.transport == transport &&
            (!best || row.clients > best->clients)) {
          best = &row;
        }
      }
      if (!best) continue;
      std::fprintf(out,
                   "%s\n    \"%s\": {\"clients\": %zu, "
                   "\"decisions_per_sec\": %.1f, \"p99_us\": %.2f}",
                   first ? "" : ",", transport, best->clients,
                   best->result.decisions_per_sec, best->result.p99_us);
      first = false;
    }
  }
  std::fprintf(out, "\n  },\n");
  std::fprintf(out, "  \"overload\": {\n");
  std::fprintf(out, "    \"offered_per_sec\": %.1f,\n",
               overload.decisions_per_sec);
  std::fprintf(out, "    \"capacity_per_sec\": %.1f,\n", capacity_per_sec);
  std::fprintf(out, "    \"responses\": %llu,\n",
               static_cast<unsigned long long>(overload.responses));
  std::fprintf(out, "    \"safe_default_responses\": %llu,\n",
               static_cast<unsigned long long>(overload.safe_defaults));
  std::fprintf(out, "    \"shed_fraction\": %.4f,\n", shed_fraction);
  std::fprintf(out, "    \"connection_drops\": %s\n",
               overload.drops ? "true" : "false");
  std::fprintf(out, "  }\n");
  std::fprintf(out, "}\n");
  std::fclose(out);
  std::printf("wrote %s\n", out_path.c_str());

  bool curve_drops = false;
  for (const auto& row : curve) curve_drops = curve_drops || row.result.drops;
  int exit_code = (headline.drops || overload.drops || curve_drops) ? 1 : 0;

  // ---- optional perf-regression gate (shared with bench_perf) ------------
  if (!check_path.empty()) {
    const int rc = bench::check_against_baseline(
        check_path, "decisions_per_sec", headline.decisions_per_sec,
        check_tolerance);
    if (rc == 2) return 2;
    if (rc != 0) exit_code = rc;
  }
  return exit_code;
}
