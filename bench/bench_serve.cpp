// SERVE — performance baseline of the policy-decision service. Two phases
// over a loopback Unix-domain socket:
//
//  1. Throughput: pipelined clients keep `depth` requests in flight per
//     connection against a 4-worker server; reports decisions/sec and exact
//     p50/p95/p99 latency from the raw per-request samples, plus the
//     in-process greedy_action cost as the no-network floor.
//  2. Overload: a server whose service rate is pinned far below the offered
//     load (batch_process_delay) must shed with safe-default responses —
//     every request answered, zero connection drops.
//
// Emits BENCH_serve.json for CI artifact upload and future perf diffs.

#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "bench_common.hpp"
#include "obs/metrics.hpp"
#include "serve/client.hpp"
#include "serve/server.hpp"
#include "util/table.hpp"

using namespace pmrl;
using Clock = std::chrono::steady_clock;

namespace {

struct ClientStats {
  std::vector<double> latencies_s;
  std::uint64_t responses = 0;
  std::uint64_t cache_hits = 0;
  std::uint64_t safe_defaults = 0;
  bool dropped = false;  ///< connection died mid-run
};

/// Closed-loop pipelined load: keeps `depth` requests in flight until
/// `until`, then drains. Request latency is send-to-receive of the same id
/// (batching may reorder responses within a connection).
ClientStats run_pipelined_client(const std::string& uds_path,
                                 std::size_t depth, Clock::time_point until,
                                 std::uint64_t state_count,
                                 std::uint64_t state_offset) {
  ClientStats stats;
  try {
    auto client = serve::Client::connect_uds(uds_path);
    std::unordered_map<std::uint64_t, Clock::time_point> inflight;
    inflight.reserve(depth * 2);
    std::uint64_t seq = state_offset;
    auto send_one = [&] {
      const std::uint64_t state = seq++ % state_count;
      const auto id = client.send_query(state);
      inflight.emplace(id, Clock::now());
    };
    auto recv_one = [&] {
      const auto msg = client.recv_response();
      const auto now = Clock::now();
      const auto it = inflight.find(msg.request_id);
      if (it != inflight.end()) {
        stats.latencies_s.push_back(
            std::chrono::duration<double>(now - it->second).count());
        inflight.erase(it);
      }
      ++stats.responses;
      if (msg.flags & serve::kRespCacheHit) ++stats.cache_hits;
      if (msg.flags & serve::kRespSafeDefault) ++stats.safe_defaults;
    };
    for (std::size_t i = 0; i < depth; ++i) send_one();
    while (Clock::now() < until) {
      recv_one();
      send_one();
    }
    while (!inflight.empty()) recv_one();
  } catch (const serve::ClientError&) {
    stats.dropped = true;
  }
  return stats;
}

double percentile_exact(std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  const auto rank = static_cast<std::size_t>(
      q * static_cast<double>(sorted.size() - 1) + 0.5);
  return sorted[std::min(rank, sorted.size() - 1)];
}

std::string bench_socket_path(const char* phase) {
  return "/tmp/pmrl_bench_serve_" + std::to_string(::getpid()) + "_" + phase +
         ".sock";
}

}  // namespace

int main(int argc, char** argv) {
  double duration_s = 3.0;
  std::string out_path = "BENCH_serve.json";
  std::size_t conns = 4;
  std::size_t depth = 64;
  std::size_t workers = 4;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    auto value = [&](const char* flag, int len) -> const char* {
      if (std::strncmp(arg, flag, static_cast<std::size_t>(len)) == 0 &&
          arg[len] == '=') {
        return arg + len + 1;
      }
      if (std::strcmp(arg, flag) == 0 && i + 1 < argc) return argv[++i];
      return nullptr;
    };
    if (const char* dur = value("--duration", 10)) {
      duration_s = std::atof(dur);
    } else if (const char* path = value("--out", 5)) {
      out_path = path;
    } else if (const char* n_conns = value("--conns", 7)) {
      conns = static_cast<std::size_t>(std::atoi(n_conns));
    } else if (const char* n_depth = value("--depth", 7)) {
      depth = static_cast<std::size_t>(std::atoi(n_depth));
    } else if (const char* n_workers = value("--workers", 9)) {
      workers = static_cast<std::size_t>(std::atoi(n_workers));
    }
  }
  if (duration_s <= 0.0 || conns == 0 || depth == 0 || workers == 0) {
    std::fprintf(stderr,
                 "--duration/--conns/--depth/--workers need positive values\n");
    return 2;
  }

  bench::print_banner("SERVE", "policy-decision service throughput + overload",
                      "serving baseline (BENCH_serve.json), not a paper "
                      "figure");

  // ---- phase 1: peak throughput ------------------------------------------
  serve::ServerConfig config;
  config.uds_path = bench_socket_path("tp");
  config.workers = workers;
  obs::MetricsRegistry metrics;
  serve::PolicyServer server(config);
  server.set_metrics(&metrics);
  server.start();
  const auto state_count = static_cast<std::uint64_t>(
      server.governor().agent(0).state_count());

  const auto until =
      Clock::now() + std::chrono::duration_cast<Clock::duration>(
                         std::chrono::duration<double>(duration_s));
  const auto wall0 = Clock::now();
  std::vector<ClientStats> per_client(conns);
  {
    std::vector<std::thread> threads;
    for (std::size_t c = 0; c < conns; ++c) {
      threads.emplace_back([&, c] {
        per_client[c] = run_pipelined_client(config.uds_path, depth, until,
                                             state_count, c * 37);
      });
    }
    for (auto& thread : threads) thread.join();
  }
  const double wall_s =
      std::chrono::duration<double>(Clock::now() - wall0).count();
  server.stop();

  std::uint64_t responses = 0, cache_hits = 0;
  bool drops = false;
  std::vector<double> latencies;
  for (auto& stats : per_client) {
    responses += stats.responses;
    cache_hits += stats.cache_hits;
    drops = drops || stats.dropped;
    latencies.insert(latencies.end(), stats.latencies_s.begin(),
                     stats.latencies_s.end());
  }
  std::sort(latencies.begin(), latencies.end());
  const double decisions_per_sec =
      wall_s > 0.0 ? static_cast<double>(responses) / wall_s : 0.0;
  const double p50 = percentile_exact(latencies, 0.50);
  const double p95 = percentile_exact(latencies, 0.95);
  const double p99 = percentile_exact(latencies, 0.99);
  const double hit_rate =
      responses > 0
          ? static_cast<double>(cache_hits) / static_cast<double>(responses)
          : 0.0;

  // No-network floor: the in-process Q-table argmax the service wraps.
  double direct_ns = 0.0;
  {
    serve::ServerConfig probe_config;
    probe_config.uds_path = bench_socket_path("probe");
    serve::PolicyServer probe(probe_config);
    const auto& agent = probe.governor().agent(0);
    constexpr std::size_t kCalls = 2'000'000;
    const auto t0 = Clock::now();
    std::size_t sink = 0;
    for (std::size_t i = 0; i < kCalls; ++i) {
      sink += agent.greedy_action(i % state_count);
    }
    const double elapsed =
        std::chrono::duration<double>(Clock::now() - t0).count();
    direct_ns = elapsed / static_cast<double>(kCalls) * 1e9;
    if (sink == static_cast<std::size_t>(-1)) std::printf("?");  // keep sink
  }

  TextTable table({"metric", "value"});
  table.add_row({"decisions/sec", TextTable::num(decisions_per_sec, 0)});
  table.add_row({"p50 latency [us]", TextTable::num(p50 * 1e6, 1)});
  table.add_row({"p95 latency [us]", TextTable::num(p95 * 1e6, 1)});
  table.add_row({"p99 latency [us]", TextTable::num(p99 * 1e6, 1)});
  table.add_row({"cache hit rate", TextTable::percent(hit_rate)});
  table.add_row({"direct argmax [ns]", TextTable::num(direct_ns, 1)});
  table.print();
  const bool meets_target = decisions_per_sec >= 100'000.0;
  std::printf("throughput target (>=100k/s over loopback UDS, %zu workers): "
              "%s\n",
              workers, meets_target ? "met" : "MISSED");

  // ---- phase 2: overload shedding ----------------------------------------
  // Pin the service rate: one worker, small batches, 2 ms of forced work per
  // batch => capacity ~ batch_max / delay. The unpaced pipelined clients
  // offer far more; the contract under test is "every request answered,
  // degraded not dropped".
  serve::ServerConfig overload_config;
  overload_config.uds_path = bench_socket_path("ov");
  overload_config.workers = 1;
  overload_config.batch_max = 16;
  overload_config.queue_capacity = 64;
  overload_config.request_timeout = std::chrono::milliseconds(1000);
  overload_config.batch_process_delay = std::chrono::microseconds(2000);
  serve::PolicyServer overload_server(overload_config);
  obs::MetricsRegistry overload_metrics;
  overload_server.set_metrics(&overload_metrics);
  overload_server.start();

  const double overload_duration_s = std::min(duration_s, 2.0);
  const auto overload_until =
      Clock::now() + std::chrono::duration_cast<Clock::duration>(
                         std::chrono::duration<double>(overload_duration_s));
  const auto overload_wall0 = Clock::now();
  std::vector<ClientStats> overload_clients(2);
  {
    std::vector<std::thread> threads;
    for (std::size_t c = 0; c < overload_clients.size(); ++c) {
      threads.emplace_back([&, c] {
        overload_clients[c] = run_pipelined_client(
            overload_config.uds_path, depth, overload_until, state_count,
            c * 41);
      });
    }
    for (auto& thread : threads) thread.join();
  }
  const double overload_wall_s =
      std::chrono::duration<double>(Clock::now() - overload_wall0).count();
  overload_server.stop();

  std::uint64_t overload_responses = 0, overload_safe = 0;
  bool overload_drops = false;
  for (const auto& stats : overload_clients) {
    overload_responses += stats.responses;
    overload_safe += stats.safe_defaults;
    overload_drops = overload_drops || stats.dropped;
  }
  const double offered_per_sec =
      overload_wall_s > 0.0
          ? static_cast<double>(overload_responses) / overload_wall_s
          : 0.0;
  const double capacity_per_sec =
      static_cast<double>(overload_config.batch_max) /
      (static_cast<double>(overload_config.batch_process_delay.count()) *
       1e-6);
  const double shed_fraction =
      overload_responses > 0 ? static_cast<double>(overload_safe) /
                                   static_cast<double>(overload_responses)
                             : 0.0;
  std::printf("\noverload: offered %.0f/s vs ~%.0f/s capacity, "
              "%.1f%% shed to safe-default, drops: %s\n",
              offered_per_sec, capacity_per_sec, 100.0 * shed_fraction,
              overload_drops ? "YES (bug)" : "none");

  std::FILE* out = std::fopen(out_path.c_str(), "w");
  if (!out) {
    std::fprintf(stderr, "cannot open %s for writing\n", out_path.c_str());
    return 1;
  }
  std::fprintf(out, "{\n");
  std::fprintf(out, "  \"bench\": \"serve\",\n");
  std::fprintf(out, "  \"duration_s\": %g,\n", duration_s);
  std::fprintf(out, "  \"workers\": %zu,\n", workers);
  std::fprintf(out, "  \"conns\": %zu,\n", conns);
  std::fprintf(out, "  \"depth\": %zu,\n", depth);
  std::fprintf(out, "  \"throughput\": {\n");
  std::fprintf(out, "    \"decisions_per_sec\": %.1f,\n", decisions_per_sec);
  std::fprintf(out, "    \"responses\": %llu,\n",
               static_cast<unsigned long long>(responses));
  std::fprintf(out, "    \"p50_us\": %.2f,\n", p50 * 1e6);
  std::fprintf(out, "    \"p95_us\": %.2f,\n", p95 * 1e6);
  std::fprintf(out, "    \"p99_us\": %.2f,\n", p99 * 1e6);
  std::fprintf(out, "    \"cache_hit_rate\": %.4f,\n", hit_rate);
  std::fprintf(out, "    \"connection_drops\": %s,\n",
               drops ? "true" : "false");
  std::fprintf(out, "    \"meets_100k_target\": %s,\n",
               meets_target ? "true" : "false");
  std::fprintf(out, "    \"direct_argmax_ns\": %.2f\n", direct_ns);
  std::fprintf(out, "  },\n");
  std::fprintf(out, "  \"overload\": {\n");
  std::fprintf(out, "    \"offered_per_sec\": %.1f,\n", offered_per_sec);
  std::fprintf(out, "    \"capacity_per_sec\": %.1f,\n", capacity_per_sec);
  std::fprintf(out, "    \"responses\": %llu,\n",
               static_cast<unsigned long long>(overload_responses));
  std::fprintf(out, "    \"safe_default_responses\": %llu,\n",
               static_cast<unsigned long long>(overload_safe));
  std::fprintf(out, "    \"shed_fraction\": %.4f,\n", shed_fraction);
  std::fprintf(out, "    \"connection_drops\": %s\n",
               overload_drops ? "true" : "false");
  std::fprintf(out, "  }\n");
  std::fprintf(out, "}\n");
  std::fclose(out);
  std::printf("wrote %s\n", out_path.c_str());
  return (drops || overload_drops) ? 1 : 0;
}
