// A3 — ablation over the reward's QoS weight lambda: the energy-vs-QoS
// trade-off dial. Low lambda rides frequencies too low (violations); high
// lambda over-provisions (energy). The default sits at the knee.

#include <cstdio>

#include "bench_common.hpp"
#include "util/table.hpp"

using namespace pmrl;

int main(int argc, char** argv) {
  bench::print_banner("A3", "reward QoS-weight (lambda) ablation",
                      "energy-vs-QoS trade-off of the reward shaping");
  auto farm = bench::make_default_farm(bench::jobs_from_args(argc, argv));

  const double lambdas[] = {0.0, 0.5, 1.0, 2.0, 4.0, 8.0};
  std::vector<std::function<bench::TrainEval()>> tasks;
  for (const double lambda : lambdas) {
    tasks.push_back([&farm, lambda] {
      rl::RlGovernorConfig config;
      config.reward.lambda_qos = lambda;
      return bench::train_and_evaluate(farm, config);
    });
  }
  const auto results =
      bench::farm_map_timed<bench::TrainEval>(farm, "lambdas", tasks);

  TextTable table({"lambda", "mean E/QoS [J]", "violation rate",
                   "mean energy [J]", "mean quality"});
  for (std::size_t i = 0; i < results.size(); ++i) {
    const auto& summary = results[i].summary;
    double quality = 0.0;
    for (const auto& run : summary.runs) quality += run.mean_quality;
    quality /= static_cast<double>(summary.runs.size());
    table.add_row({TextTable::num(lambdas[i], 1),
                   TextTable::num(summary.mean_energy_per_qos(), 5),
                   TextTable::percent(summary.mean_violation_rate()),
                   TextTable::num(summary.mean_energy_j(), 1),
                   TextTable::num(quality, 3)});
  }
  table.print();
  std::printf(
      "\nexpected shape: violations fall monotonically with lambda while "
      "energy rises; E/QoS has its minimum at a moderate lambda "
      "(default 2.0).\n");
  return 0;
}
