// A3 — ablation over the reward's QoS weight lambda: the energy-vs-QoS
// trade-off dial. Low lambda rides frequencies too low (violations); high
// lambda over-provisions (energy). The default sits at the knee.

#include <cstdio>

#include "bench_common.hpp"
#include "util/table.hpp"

using namespace pmrl;

int main() {
  bench::print_banner("A3", "reward QoS-weight (lambda) ablation",
                      "energy-vs-QoS trade-off of the reward shaping");

  auto engine = bench::make_default_engine();
  TextTable table({"lambda", "mean E/QoS [J]", "violation rate",
                   "mean energy [J]", "mean quality"});
  for (const double lambda : {0.0, 0.5, 1.0, 2.0, 4.0, 8.0}) {
    rl::RlGovernorConfig config;
    config.reward.lambda_qos = lambda;
    auto trained = bench::train_default_policy(
        engine, bench::kDefaultEpisodes, bench::kTrainSeed, config);
    const auto summary = bench::evaluate_policy(engine, *trained.governor);
    double quality = 0.0;
    for (const auto& run : summary.runs) quality += run.mean_quality;
    quality /= static_cast<double>(summary.runs.size());
    table.add_row({TextTable::num(lambda, 1),
                   TextTable::num(summary.mean_energy_per_qos(), 5),
                   TextTable::percent(summary.mean_violation_rate()),
                   TextTable::num(summary.mean_energy_j(), 1),
                   TextTable::num(quality, 3)});
  }
  table.print();
  std::printf(
      "\nexpected shape: violations fall monotonically with lambda while "
      "energy rises; E/QoS has its minimum at a moderate lambda "
      "(default 2.0).\n");
  return 0;
}
