// DistributedTrainer: episode sharding, seed isolation, and the central
// determinism contract — the merged Q-table is bit-identical at any farm
// thread count, because the actor count (not --jobs) fixes the shards and
// QMerge reduces in a seeded canonical order.

#include "train/distributed_trainer.hpp"

#include <gtest/gtest.h>

#include <set>
#include <sstream>
#include <string>

#include "rl/policy_io.hpp"
#include "workload/scenarios.hpp"

namespace pmrl::train {
namespace {

core::EngineConfig short_engine() {
  core::EngineConfig config;
  config.duration_s = 4.0;
  return config;
}

DistributedTrainerConfig small_schedule(std::size_t episodes,
                                        std::size_t actors) {
  DistributedTrainerConfig config;
  config.schedule.episodes = episodes;
  config.schedule.workload_seed = 7;
  config.actors = actors;
  config.merge_seed = 3;
  return config;
}

std::string train_image(std::size_t jobs, DistributedTrainerConfig config) {
  core::runfarm::RunFarm farm(soc::default_mobile_soc_config(),
                              short_engine(), jobs);
  rl::RlGovernorConfig policy;
  const std::size_t clusters = farm.soc_config().clusters.size();
  DistributedTrainer trainer(farm, policy, clusters, config);
  rl::RlGovernor merged(policy, clusters);
  trainer.train(merged);
  std::ostringstream out;
  rl::save_policy(merged, out);
  return out.str();
}

TEST(DistributedTrainerTest, ActorRangesTileTheSchedule) {
  core::runfarm::RunFarm farm(soc::default_mobile_soc_config(),
                              short_engine(), 1);
  DistributedTrainer trainer(farm, rl::RlGovernorConfig{},
                             farm.soc_config().clusters.size(),
                             small_schedule(11, 4));
  std::size_t covered = 0;
  std::size_t expected_first = 0;
  for (std::size_t k = 0; k < 4; ++k) {
    const auto [first, count] = trainer.actor_range(k);
    EXPECT_EQ(first, expected_first) << "actor " << k;
    EXPECT_GE(count, 11u / 4u) << "actor " << k;
    expected_first = first + count;
    covered += count;
  }
  EXPECT_EQ(covered, 11u);
}

TEST(DistributedTrainerTest, ActorSeedsAreDistinct) {
  core::runfarm::RunFarm farm(soc::default_mobile_soc_config(),
                              short_engine(), 1);
  DistributedTrainer trainer(farm, rl::RlGovernorConfig{},
                             farm.soc_config().clusters.size(),
                             small_schedule(8, 8));
  std::set<std::uint64_t> seeds;
  for (std::size_t k = 0; k < 8; ++k) seeds.insert(trainer.actor_seed(k));
  EXPECT_EQ(seeds.size(), 8u);
}

TEST(DistributedTrainerTest, RejectsZeroEpisodesAndClampsActors) {
  core::runfarm::RunFarm farm(soc::default_mobile_soc_config(),
                              short_engine(), 1);
  const std::size_t clusters = farm.soc_config().clusters.size();
  EXPECT_THROW(DistributedTrainer(farm, rl::RlGovernorConfig{}, clusters,
                                  small_schedule(0, 4)),
               std::invalid_argument);
  // More actors than episodes: the surplus actors are dropped so no shard
  // is empty.
  DistributedTrainer trainer(farm, rl::RlGovernorConfig{}, clusters,
                             small_schedule(3, 8));
  EXPECT_EQ(trainer.config().actors, 3u);
}

TEST(DistributedTrainerTest, CurveFollowsTheSerialSchedule) {
  core::runfarm::RunFarm farm(soc::default_mobile_soc_config(),
                              short_engine(), 2);
  const auto config = small_schedule(7, 3);
  rl::RlGovernorConfig policy;
  const std::size_t clusters = farm.soc_config().clusters.size();
  DistributedTrainer trainer(farm, policy, clusters, config);
  rl::RlGovernor merged(policy, clusters);
  const auto result = trainer.train(merged);
  ASSERT_EQ(result.curve.size(), 7u);
  for (std::size_t e = 0; e < result.curve.size(); ++e) {
    EXPECT_EQ(result.curve[e].episode, e);
    EXPECT_EQ(result.curve[e].scenario,
              workload::scenario_kind_name(config.schedule.episode_kind(e)));
  }
  ASSERT_EQ(result.deltas.size(), 3u);
  for (std::size_t k = 0; k < result.deltas.size(); ++k) {
    EXPECT_EQ(result.deltas[k].actor_index, k);
  }
}

// Acceptance criterion: same config at --jobs 1/2/4 -> bit-identical
// merged checkpoint (the farm's thread count must not change one bit).
TEST(DistributedTrainerTest, MergedTableBitIdenticalAcrossJobs) {
  const auto config = small_schedule(6, 3);
  const std::string serial = train_image(1, config);
  EXPECT_EQ(train_image(2, config), serial);
  EXPECT_EQ(train_image(4, config), serial);
}

// Changing the merge seed re-seeds the actor RNG streams, so the merged
// table must differ — determinism is "pure function of the seeds", not
// "always the same answer".
TEST(DistributedTrainerTest, MergeSeedChangesTheTable) {
  auto config = small_schedule(6, 3);
  const std::string baseline = train_image(2, config);
  config.merge_seed = 99;
  EXPECT_NE(train_image(2, config), baseline);
}

// Many actors on many threads: exercises concurrent actor execution for
// the TSan job (each actor owns its engine/governor; a race here is a
// bug in the farm isolation contract).
TEST(DistributedTrainerTest, ConcurrentActorsMatchSerialExecution) {
  const auto config = small_schedule(8, 8);
  EXPECT_EQ(train_image(8, config), train_image(1, config));
}

}  // namespace
}  // namespace pmrl::train
