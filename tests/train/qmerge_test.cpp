// QMerge reducer: visit-weighted averaging semantics, shape/backend
// guards, and the order-independence property battery — merging K shuffled
// orderings of the same actor deltas must produce a bit-identical table.
// Failures print the master seed so any counterexample replays exactly:
//   PMRL_PROPERTY_SEED=<seed> ./build/tests/test_train

#include "train/qmerge.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <numeric>
#include <sstream>
#include <string>
#include <vector>

#include "rl/policy_io.hpp"
#include "rl/rl_governor.hpp"
#include "util/rng.hpp"

namespace pmrl::train {
namespace {

std::uint64_t master_seed() {
  if (const char* env = std::getenv("PMRL_PROPERTY_SEED")) {
    return std::strtoull(env, nullptr, 10);
  }
  return 20260807;  // fixed default: CI runs are reproducible
}

rl::RlGovernorConfig float_config() {
  rl::RlGovernorConfig config;
  config.backend = rl::AgentBackend::Float;
  return config;
}

/// Exact text image of the governor's tables (%.17g round-trips doubles
/// bit-for-bit, so equal strings mean bit-identical tables).
std::string table_image(const rl::RlGovernor& governor) {
  std::ostringstream out;
  rl::save_policy(governor, out);
  return out.str();
}

/// A delta with the governor's shape and randomized (visits, weighted_q)
/// entries; roughly half the (s, a) pairs stay unvisited.
ActorDelta random_delta(const rl::RlGovernor& shape, std::size_t actor,
                        Rng& rng) {
  ActorDelta delta;
  delta.actor_index = actor;
  for (std::size_t i = 0; i < shape.agent_count(); ++i) {
    AgentDelta agent;
    agent.states = shape.agent(i).state_count();
    agent.actions = shape.agent(i).action_count();
    agent.visits.resize(agent.states * agent.actions, 0);
    agent.weighted_q.resize(agent.states * agent.actions, 0.0);
    for (std::size_t cell = 0; cell < agent.visits.size(); ++cell) {
      if (rng.uniform() < 0.5) continue;
      const auto visits = static_cast<std::uint64_t>(rng.uniform_int(1, 50));
      agent.visits[cell] = visits;
      agent.weighted_q[cell] =
          static_cast<double>(visits) * rng.uniform(-8.0, 0.0);
    }
    delta.agents.push_back(std::move(agent));
  }
  return delta;
}

TEST(QMergeTest, VisitWeightedAverageAndInitialQFallback) {
  auto config = float_config();
  config.learning.initial_q = -0.25;
  rl::RlGovernor governor(config, 2);
  const std::size_t actions = governor.agent(0).action_count();

  ActorDelta a;
  a.actor_index = 0;
  ActorDelta b;
  b.actor_index = 1;
  for (std::size_t i = 0; i < governor.agent_count(); ++i) {
    AgentDelta agent;
    agent.states = governor.agent(i).state_count();
    agent.actions = actions;
    agent.visits.assign(agent.states * actions, 0);
    agent.weighted_q.assign(agent.states * actions, 0.0);
    a.agents.push_back(agent);
    b.agents.push_back(agent);
  }
  // Cell (0, 1): actor 0 visited 3 times averaging -2, actor 1 visited
  // once at -6. Merged Q = (3 * -2 + 1 * -6) / 4 = -3.
  a.agents[0].visits[1] = 3;
  a.agents[0].weighted_q[1] = 3.0 * -2.0;
  b.agents[0].visits[1] = 1;
  b.agents[0].weighted_q[1] = -6.0;

  merge_into(governor, {a, b}, /*merge_seed=*/5);
  EXPECT_DOUBLE_EQ(governor.agent(0).q_value(0, 1), -3.0);
  // Untouched cells fall back to the configured initial_q.
  EXPECT_DOUBLE_EQ(governor.agent(0).q_value(0, 0), -0.25);
  EXPECT_DOUBLE_EQ(governor.agent(1).q_value(3, 0), -0.25);
}

TEST(QMergeTest, RejectsDuplicateActorIndices) {
  rl::RlGovernor governor(float_config(), 2);
  Rng rng(master_seed());
  auto a = random_delta(governor, 0, rng);
  auto b = random_delta(governor, 0, rng);
  EXPECT_THROW(merge_into(governor, {a, b}, 1), std::invalid_argument);
}

TEST(QMergeTest, RejectsShapeMismatch) {
  rl::RlGovernor governor(float_config(), 2);
  Rng rng(master_seed());
  auto delta = random_delta(governor, 0, rng);
  delta.agents[0].visits.pop_back();
  EXPECT_THROW(merge_into(governor, {delta}, 1), std::invalid_argument);
}

TEST(QMergeTest, RejectsNonFloatBackend) {
  rl::RlGovernorConfig config;
  config.backend = rl::AgentBackend::Fixed;
  rl::RlGovernor governor(config, 2);
  EXPECT_THROW(extract_delta(governor), std::invalid_argument);
}

TEST(QMergeTest, MergedTableCarriesSummedVisits) {
  rl::RlGovernor governor(float_config(), 2);
  ActorDelta a;
  a.actor_index = 0;
  for (std::size_t i = 0; i < governor.agent_count(); ++i) {
    AgentDelta agent;
    agent.states = governor.agent(i).state_count();
    agent.actions = governor.agent(i).action_count();
    agent.visits.assign(agent.states * agent.actions, 0);
    agent.weighted_q.assign(agent.states * agent.actions, 0.0);
    a.agents.push_back(agent);
  }
  a.agents[0].visits[0] = 7;
  a.agents[0].weighted_q[0] = -7.0;
  auto b = a;
  b.actor_index = 1;
  b.agents[0].visits[0] = 5;
  b.agents[0].weighted_q[0] = -5.0;
  merge_into(governor, {a, b}, 1);
  const auto& agent =
      static_cast<const rl::QLearningAgent&>(governor.agent(0));
  EXPECT_EQ(agent.table().visits(0, 0), 12u);
}

// The property: for random actor fleets, every shuffled delta ordering
// merges to the same bits, and a different merge seed is allowed to (and
// in practice does) produce different low bits — proving the canonical
// order comes from the seed, not the input order.
TEST(QMergeProperty, ShuffledOrderingsMergeBitIdentical) {
  const std::uint64_t seed = master_seed();
  Rng rng(seed);
  for (int iteration = 0; iteration < 12; ++iteration) {
    SCOPED_TRACE("master_seed=" + std::to_string(seed) +
                 " iteration=" + std::to_string(iteration));
    const auto actors = static_cast<std::size_t>(rng.uniform_int(1, 9));
    const std::uint64_t merge_seed = rng();
    rl::RlGovernor shape(float_config(), 2);
    std::vector<ActorDelta> deltas;
    for (std::size_t k = 0; k < actors; ++k) {
      deltas.push_back(random_delta(shape, k, rng));
    }

    rl::RlGovernor reference(float_config(), 2);
    merge_into(reference, deltas, merge_seed);
    const std::string expected = table_image(reference);

    for (int shuffle = 0; shuffle < 6; ++shuffle) {
      auto permuted = deltas;
      for (std::size_t i = permuted.size(); i > 1; --i) {
        const auto j =
            static_cast<std::size_t>(rng.uniform_int(0, i - 1));
        std::swap(permuted[i - 1], permuted[j]);
      }
      rl::RlGovernor merged(float_config(), 2);
      merge_into(merged, permuted, merge_seed);
      ASSERT_EQ(table_image(merged), expected)
          << "shuffle " << shuffle << " changed the merged table";
    }
  }
}

}  // namespace
}  // namespace pmrl::train
