// Canary rollout loopback integration: a PolicyServer backed by a policy
// registry stages a candidate at 50%, routes connections deterministically,
// and the client outcome reports drive the verdict — a worse candidate
// must auto-rollback within the settle window with zero connection drops,
// a better one must promote. Runs whole under TSan with the rest of
// test_serve (acceptor/worker/report/verdict thread choreography).

#include <gtest/gtest.h>
#include <unistd.h>

#include <filesystem>
#include <string>
#include <vector>

#include "policy/registry.hpp"
#include "policy/rollout.hpp"
#include "serve/client.hpp"
#include "serve/server.hpp"

namespace pmrl {
namespace {

using namespace std::chrono_literals;

std::string test_socket_path() {
  const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
  return ::testing::TempDir() + "pmrl_cn_" + std::to_string(::getpid()) +
         "_" + info->name() + ".sock";
}

std::filesystem::path test_registry_dir() {
  const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
  const std::filesystem::path dir =
      std::filesystem::path(::testing::TempDir()) /
      ("pmrl_canary_" + std::to_string(::getpid()) + "_" + info->name());
  std::filesystem::remove_all(dir);
  return dir;
}

/// Governor whose greedy move at state 7 on every agent is `action`.
rl::RlGovernor marked_governor(std::size_t action) {
  rl::RlGovernor governor(rl::RlGovernorConfig{}, 2);
  for (std::size_t agent = 0; agent < governor.agent_count(); ++agent) {
    governor.agent(agent).set_q_value(7, action, 5.0);
  }
  return governor;
}

/// Registry with v1 = incumbent (promoted, action 1 at state 7) and
/// v2 = candidate (action 2 at state 7).
void seed_registry(const std::filesystem::path& dir) {
  policy::PolicyRegistry registry(dir);
  policy::PolicyMeta meta;
  meta.train_seed = 1;
  ASSERT_EQ(registry.add(marked_governor(1), meta), 1u);
  registry.promote(1);
  meta.parent_version = 1;
  ASSERT_EQ(registry.add(marked_governor(2), meta), 2u);
}

serve::ServerConfig canary_config(const std::filesystem::path& dir) {
  serve::ServerConfig config;
  config.uds_path = test_socket_path();
  config.workers = 2;
  config.batch_max = 16;
  config.batch_deadline = 100us;
  config.queue_capacity = 64;
  config.request_timeout = 5s;
  config.cache_capacity = 256;
  config.registry_dir = dir.string();
  config.rollout.canary_pct = 50.0;
  config.rollout.regression_threshold = 0.05;
  config.rollout.window_reports = 8;
  config.rollout.settle_windows = 2;
  return config;
}

constexpr int kClients = 8;

/// Connects kClients, learns each connection's arm from the response flag,
/// and asserts the incumbent/candidate actions are served as staged.
void connect_and_split(const serve::ServerConfig& config,
                       std::vector<serve::Client>& clients,
                       std::vector<bool>& canary) {
  for (int i = 0; i < kClients; ++i) {
    clients.push_back(serve::Client::connect_uds(config.uds_path));
  }
  int candidates = 0;
  for (auto& client : clients) {
    const auto result = client.query(7);
    canary.push_back(result.canary);
    EXPECT_EQ(result.action, result.canary ? 2u : 1u);
    candidates += result.canary ? 1 : 0;
  }
  // The 50% hash over accept sequences 0..7 must split the cohort; both
  // arms are required for windows to close (deterministic per salt).
  ASSERT_GT(candidates, 0);
  ASSERT_LT(candidates, kClients);
}

/// Sends one report per connection per round until the rollout reaches
/// `target` or the round budget runs out. Candidate-arm connections report
/// `candidate_energy` per unit QoS; incumbent connections report 1.0.
void drive_reports(std::vector<serve::Client>& clients,
                   const std::vector<bool>& canary, double candidate_energy,
                   policy::RolloutState target) {
  const auto want = static_cast<std::uint8_t>(target);
  for (int round = 0; round < 32; ++round) {
    for (int i = 0; i < kClients; ++i) {
      const auto ack =
          clients[i].report(canary[i] ? candidate_energy : 1.0, 1.0);
      if (ack.rollout_state == want) return;
    }
  }
  FAIL() << "no verdict after 32 report rounds";
}

TEST(CanaryRollout, WorseCandidateAutoRollsBackWithZeroDrops) {
  const auto dir = test_registry_dir();
  seed_registry(dir);
  auto config = canary_config(dir);
  serve::PolicyServer server(config);
  server.start();
  ASSERT_TRUE(server.candidate_active());
  EXPECT_EQ(server.candidate_version(), 2u);
  EXPECT_EQ(server.rollout_state(), policy::RolloutState::Canary);
  // The incumbent came from the registry's CURRENT pointer.
  EXPECT_EQ(server.governor().agent(0).q_value(7, 1), 5.0);

  std::vector<serve::Client> clients;
  std::vector<bool> canary;
  connect_and_split(config, clients, canary);

  // Candidate spends 2x the energy per QoS: regression beyond the 5%
  // threshold in every window -> rollback after 2 settle windows.
  drive_reports(clients, canary, 2.0, policy::RolloutState::RolledBack);

  EXPECT_EQ(server.rollout_state(), policy::RolloutState::RolledBack);
  EXPECT_FALSE(server.candidate_active());
  EXPECT_EQ(server.rollbacks(), 1u);
  EXPECT_EQ(server.promotions(), 0u);

  // Zero connection drops: every connection — including the canary
  // cohort — keeps serving on the same socket, now from the incumbent.
  for (auto& client : clients) {
    const auto result = client.query(7);
    EXPECT_EQ(result.action, 1u);
    EXPECT_FALSE(result.canary);
  }

  // The registry recorded the verdict; CURRENT still names the incumbent.
  policy::PolicyRegistry registry(dir);
  EXPECT_EQ(registry.meta(2)->status, policy::PolicyStatus::RolledBack);
  EXPECT_EQ(*registry.current(), 1u);

  // SIGHUP (request_reload) stages the next candidate from the registry.
  policy::PolicyMeta meta;
  meta.parent_version = 1;
  ASSERT_EQ(registry.add(marked_governor(0), meta), 3u);
  EXPECT_TRUE(server.request_reload());
  EXPECT_TRUE(server.candidate_active());
  EXPECT_EQ(server.candidate_version(), 3u);
  EXPECT_EQ(server.rollout_state(), policy::RolloutState::Canary);
  server.stop();
}

TEST(CanaryRollout, BetterCandidatePromotes) {
  const auto dir = test_registry_dir();
  seed_registry(dir);
  auto config = canary_config(dir);
  serve::PolicyServer server(config);
  server.start();
  ASSERT_TRUE(server.candidate_active());

  std::vector<serve::Client> clients;
  std::vector<bool> canary;
  connect_and_split(config, clients, canary);

  // Candidate spends 10% less energy per QoS: healthy windows -> promote.
  drive_reports(clients, canary, 0.9, policy::RolloutState::Promoted);

  EXPECT_EQ(server.rollout_state(), policy::RolloutState::Promoted);
  EXPECT_FALSE(server.candidate_active());
  EXPECT_EQ(server.promotions(), 1u);
  EXPECT_EQ(server.rollbacks(), 0u);

  // The candidate is the incumbent now: every connection gets its action,
  // with no canary flag.
  for (auto& client : clients) {
    const auto result = client.query(7);
    EXPECT_EQ(result.action, 2u);
    EXPECT_FALSE(result.canary);
  }
  policy::PolicyRegistry registry(dir);
  EXPECT_EQ(registry.meta(2)->status, policy::PolicyStatus::Promoted);
  EXPECT_EQ(*registry.current(), 2u);
  server.stop();
}

TEST(CanaryRollout, ZeroPctStagesNothing) {
  const auto dir = test_registry_dir();
  seed_registry(dir);
  auto config = canary_config(dir);
  config.rollout.canary_pct = 0.0;
  serve::PolicyServer server(config);
  server.start();
  EXPECT_FALSE(server.candidate_active());
  // Reports are still acknowledged (and ignored — no canary running).
  auto client = serve::Client::connect_uds(config.uds_path);
  const auto ack = client.report(1.0, 1.0);
  EXPECT_FALSE(ack.candidate_arm);
  EXPECT_EQ(ack.rollout_state,
            static_cast<std::uint8_t>(policy::RolloutState::Idle));
  server.stop();
}

TEST(CanaryRollout, StagedCandidateServesItsSliceOverTcp) {
  const auto dir = test_registry_dir();
  seed_registry(dir);
  auto config = canary_config(dir);
  config.uds_path.clear();
  config.tcp_enable = true;
  config.tcp_port = 0;
  config.rollout.canary_pct = 100.0;  // every connection is a canary
  serve::PolicyServer server(config);
  server.start();
  ASSERT_GT(server.tcp_port(), 0);
  auto client = serve::Client::connect_tcp("127.0.0.1", server.tcp_port());
  const auto result = client.query(7);
  EXPECT_EQ(result.action, 2u);
  EXPECT_TRUE(result.canary);
  server.stop();
}

}  // namespace
}  // namespace pmrl
