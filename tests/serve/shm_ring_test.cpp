// serve/shm_ring.hpp: SPSC ring mechanics (wraparound, geometry
// validation), the shared-memory transport end to end against
// PolicyServer, lane lifecycle (claim/exhaust/recycle, poisoning on
// corrupt frames), and byte-for-byte decision parity across the UDS, TCP,
// and shm transports.

#include "serve/shm_ring.hpp"

#include <gtest/gtest.h>
#include <unistd.h>

#include <chrono>
#include <cstdint>
#include <fstream>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <tuple>
#include <vector>

#include "obs/metrics.hpp"
#include "rl/policy_io.hpp"
#include "serve/client.hpp"
#include "serve/server.hpp"

namespace pmrl {
namespace {

using namespace std::chrono_literals;

constexpr std::size_t kRingBytes = 1 << 17;  // minimum legal ring

std::string test_path(const std::string& suffix) {
  const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
  return ::testing::TempDir() + "pmrl_" + std::to_string(::getpid()) + "_" +
         info->name() + suffix;
}

serve::ServerConfig shm_config() {
  serve::ServerConfig config;
  config.shm_path = test_path(".shm");
  config.shm_lanes = 4;
  config.shm_ring_bytes = kRingBytes;
  config.shm_workers = 2;
  config.workers = 1;  // no socket listeners needed
  config.uds_path.clear();
  return config;
}

TEST(ShmRing, WrapAroundRoundTripsBytes) {
  const auto path = test_path(".shm");
  auto segment = serve::ShmSegment::create(path, 1, kRingBytes);
  serve::ShmRing ring = segment.request_ring(0);
  EXPECT_EQ(ring.capacity(), kRingBytes);
  EXPECT_EQ(ring.readable(), 0u);
  EXPECT_EQ(ring.writable(), kRingBytes);

  // Chunked writes/reads several times the capacity force the head/tail
  // indices through multiple wraps; every byte must survive in order.
  std::uint8_t write_value = 0;
  std::uint8_t read_value = 0;
  std::vector<char> chunk(40000);
  std::vector<char> got(chunk.size());
  for (int round = 0; round < 12; ++round) {
    for (auto& b : chunk) b = static_cast<char>(write_value++);
    std::size_t written = 0;
    while (written < chunk.size()) {
      written += ring.write_some(chunk.data() + written,
                                 chunk.size() - written);
      std::size_t read = 0;
      while ((read = ring.read_some(got.data(), got.size())) > 0) {
        for (std::size_t i = 0; i < read; ++i) {
          ASSERT_EQ(static_cast<std::uint8_t>(got[i]), read_value++)
              << "round=" << round;
        }
      }
    }
  }
  EXPECT_EQ(ring.readable(), 0u);
}

TEST(ShmRing, WriterStopsAtCapacity) {
  const auto path = test_path(".shm");
  auto segment = serve::ShmSegment::create(path, 1, kRingBytes);
  serve::ShmRing ring = segment.request_ring(0);
  const std::string block(kRingBytes, 'x');
  EXPECT_EQ(ring.write_some(block.data(), block.size()), kRingBytes);
  EXPECT_EQ(ring.write_some(block.data(), block.size()), 0u);  // full
  char buf[512];
  EXPECT_EQ(ring.read_some(buf, sizeof buf), sizeof buf);
  EXPECT_EQ(ring.write_some(block.data(), block.size()), sizeof buf);
}

TEST(ShmSegment, CreateRejectsBadGeometry) {
  const auto path = test_path(".shm");
  EXPECT_THROW(serve::ShmSegment::create(path, 0, kRingBytes),
               std::invalid_argument);
  EXPECT_THROW(serve::ShmSegment::create(path, 1, kRingBytes + 64),
               std::invalid_argument);  // not a power of two
  EXPECT_THROW(serve::ShmSegment::create(path, 1, kRingBytes / 2),
               std::invalid_argument);  // cannot hold a max frame
}

TEST(ShmSegment, OpenRejectsMissingOrMalformed) {
  EXPECT_THROW(serve::ShmSegment::open(test_path(".nope")),
               serve::ClientError);
  const auto path = test_path(".junk");
  {
    std::ofstream out(path);
    out << std::string(4096, 'z');
  }
  EXPECT_THROW(serve::ShmSegment::open(path), serve::ClientError);
  ::unlink(path.c_str());
}

TEST(ShmServe, QueryPingReloadAndCacheWork) {
  auto config = shm_config();
  config.policy_path = test_path(".pmrl");
  {
    rl::RlGovernor governor(config.governor, config.cluster_count);
    for (std::size_t agent = 0; agent < governor.agent_count(); ++agent) {
      governor.agent(agent).set_q_value(9, 2, 5.0);
    }
    std::ofstream out(config.policy_path);
    ASSERT_TRUE(out);
    rl::save_policy(governor, out);
  }
  serve::PolicyServer server(config);
  server.start();
  {
    serve::ShmClient client(config.shm_path);
    EXPECT_TRUE(client.ping(1234));
    const auto first = client.query(9);
    EXPECT_EQ(first.action, 2u);
    EXPECT_FALSE(first.cache_hit);
    const auto second = client.query(9);
    EXPECT_EQ(second.action, 2u);
    EXPECT_TRUE(second.cache_hit);

    // Hot reload over the shm control path invalidates the worker caches.
    {
      rl::RlGovernor governor(config.governor, config.cluster_count);
      for (std::size_t agent = 0; agent < governor.agent_count(); ++agent) {
        governor.agent(agent).set_q_value(9, 1, 5.0);
      }
      std::ofstream out(config.policy_path);
      rl::save_policy(governor, out);
    }
    std::string error;
    ASSERT_TRUE(client.reload(&error)) << error;
    const auto after = client.query(9);
    EXPECT_EQ(after.action, 1u);
    EXPECT_FALSE(after.cache_hit);
  }
  server.stop();
  ::unlink(config.policy_path.c_str());
}

TEST(ShmServe, LanesExhaustThenRecycle) {
  auto config = shm_config();
  config.shm_lanes = 2;
  serve::PolicyServer server(config);
  server.governor().agent(0).set_q_value(1, 2, 5.0);
  server.start();
  auto a = std::make_unique<serve::ShmClient>(config.shm_path);
  auto b = std::make_unique<serve::ShmClient>(config.shm_path);
  EXPECT_NE(a->lane(), b->lane());
  EXPECT_THROW(serve::ShmClient{config.shm_path}, serve::ClientError);
  EXPECT_EQ(a->query(1).action, 2u);
  a.reset();  // lane goes Closed; a worker recycles it to Free
  std::optional<serve::ShmClient> again;
  const auto deadline = std::chrono::steady_clock::now() + 5s;
  while (!again) {
    try {
      again.emplace(config.shm_path);
    } catch (const serve::ClientError&) {
      ASSERT_LT(std::chrono::steady_clock::now(), deadline)
          << "lane was never recycled";
      std::this_thread::sleep_for(1ms);
    }
  }
  EXPECT_EQ(again->query(1).action, 2u);
  EXPECT_EQ(b->query(1).action, 2u);  // untouched neighbour lane
  server.stop();
}

// Bit flips across the frame (magic, version/type, length, CRC, payload)
// must poison only the offending lane: the client on it gets an Error and
// no further service; fresh lanes keep working. Mirrors the socket-side
// GarbageBytesDropOnlyThatConnection semantics.
TEST(ShmServe, CorruptFramePoisonsOnlyThatLane) {
  auto config = shm_config();
  obs::MetricsRegistry metrics;
  serve::PolicyServer server(config);
  server.set_metrics(&metrics);
  server.governor().agent(0).set_q_value(1, 2, 5.0);
  server.start();
  std::string frame;
  serve::append_query(frame, serve::QueryMsg{77, 0, 1});
  const std::size_t flip_bytes[] = {0, 5, 8, 12, frame.size() - 1};
  for (const std::size_t byte : flip_bytes) {
    std::string corrupt = frame;
    corrupt[byte] = static_cast<char>(corrupt[byte] ^ 0x10);
    std::optional<serve::ShmClient> vandal;
    const auto deadline = std::chrono::steady_clock::now() + 5s;
    while (!vandal) {  // poisoned lanes free up once the vandal detaches
      try {
        vandal.emplace(config.shm_path);
      } catch (const serve::ClientError&) {
        ASSERT_LT(std::chrono::steady_clock::now(), deadline);
        std::this_thread::sleep_for(1ms);
      }
    }
    vandal->send_raw(corrupt.data(), corrupt.size());
    EXPECT_THROW((void)vandal->recv_response(), serve::ClientError)
        << "flip at byte " << byte;
  }
  serve::ShmClient client(config.shm_path);
  EXPECT_EQ(client.query(1).action, 2u);
  EXPECT_GE(metrics.counter("serve.wire_errors").value(),
            std::size(flip_bytes));
  server.stop();
}

TEST(ShmServe, ServerStopSurfacesAsClientError) {
  auto config = shm_config();
  serve::PolicyServer server(config);
  server.start();
  serve::ShmClient client(config.shm_path);
  EXPECT_TRUE(client.ping(7));
  server.stop();
  EXPECT_THROW((void)client.query(0), serve::ClientError);
}

// The same policy must produce byte-identical decision streams (action,
// safe-default flag, cache-hit flag) over UDS, TCP, and shm: the transport
// moves frames, it never changes a decision.
TEST(ShmServe, TransportsAreDecisionIdentical) {
  struct Step {
    std::uint64_t state;
    std::uint32_t agent;
  };
  std::vector<Step> steps;
  for (int round = 0; round < 3; ++round) {  // repeats exercise the cache
    for (std::uint64_t s = 0; s < 24; ++s) {
      steps.push_back({s * 7 % 240, static_cast<std::uint32_t>(s % 2)});
    }
  }

  auto seed = [](serve::PolicyServer& server) {
    for (std::size_t agent = 0; agent < 2; ++agent) {
      for (std::size_t s = 0; s < 240; ++s) {
        server.governor().agent(agent).set_q_value(
            s, (s * 13 + agent) % 3, 2.0);
      }
    }
  };
  auto run = [&](auto& client) {
    std::vector<std::tuple<std::uint32_t, bool, bool>> out;
    for (const Step& step : steps) {
      const auto result = client.query(step.state, step.agent);
      out.emplace_back(result.action, result.safe_default, result.cache_hit);
    }
    return out;
  };

  serve::ServerConfig uds_config;
  uds_config.uds_path = test_path(".sock");
  uds_config.workers = 2;
  serve::PolicyServer uds_server(uds_config);
  seed(uds_server);
  uds_server.start();
  auto uds_client = serve::Client::connect_uds(uds_config.uds_path);
  const auto uds_out = run(uds_client);
  uds_server.stop();

  serve::ServerConfig tcp_config;
  tcp_config.uds_path.clear();
  tcp_config.tcp_enable = true;
  tcp_config.workers = 2;
  serve::PolicyServer tcp_server(tcp_config);
  seed(tcp_server);
  tcp_server.start();
  auto tcp_client =
      serve::Client::connect_tcp("127.0.0.1", tcp_server.tcp_port());
  const auto tcp_out = run(tcp_client);
  tcp_server.stop();

  auto shm_cfg = shm_config();
  serve::PolicyServer shm_server(shm_cfg);
  seed(shm_server);
  shm_server.start();
  serve::ShmClient shm_client(shm_cfg.shm_path);
  const auto shm_out = run(shm_client);
  shm_server.stop();

  EXPECT_EQ(uds_out, tcp_out);
  EXPECT_EQ(uds_out, shm_out);
}

}  // namespace
}  // namespace pmrl
