// serve/wire.hpp: message encode/parse round trips and fuzz-ish corruption
// over the serve protocol's frames (truncation, bit flips, bad version,
// short payloads).

#include "serve/wire.hpp"

#include <gtest/gtest.h>

#include <string>

namespace pmrl {
namespace {

using serve::MsgType;

util::Frame decode_one(const std::string& bytes) {
  std::size_t offset = 0;
  util::Frame frame;
  EXPECT_EQ(util::decode_frame(bytes, offset, frame), util::FrameStatus::Ok);
  EXPECT_EQ(offset, bytes.size());
  return frame;
}

TEST(ServeWire, QueryRoundTrips) {
  std::string bytes;
  serve::append_query(bytes,
                      serve::QueryMsg{0x1122334455667788ull, 3, 1023});
  const util::Frame frame = decode_one(bytes);
  EXPECT_EQ(static_cast<MsgType>(frame.type), MsgType::Query);
  serve::QueryMsg query;
  ASSERT_TRUE(serve::parse_query(frame, query));
  EXPECT_EQ(query.request_id, 0x1122334455667788ull);
  EXPECT_EQ(query.agent, 3u);
  EXPECT_EQ(query.state, 1023u);
}

TEST(ServeWire, ResponseRoundTrips) {
  std::string bytes;
  serve::append_response(
      bytes, serve::ResponseMsg{42, 7,
                                static_cast<std::uint16_t>(
                                    serve::kRespSafeDefault |
                                    serve::kRespCacheHit)});
  serve::ResponseMsg msg;
  ASSERT_TRUE(serve::parse_response(decode_one(bytes), msg));
  EXPECT_EQ(msg.request_id, 42u);
  EXPECT_EQ(msg.action, 7u);
  EXPECT_TRUE(msg.flags & serve::kRespSafeDefault);
  EXPECT_TRUE(msg.flags & serve::kRespCacheHit);
}

TEST(ServeWire, PingPongRoundTrip) {
  std::string bytes;
  serve::append_ping(bytes, 0xCAFEBABEull);
  std::uint64_t token = 0;
  ASSERT_TRUE(serve::parse_ping(decode_one(bytes), token));
  EXPECT_EQ(token, 0xCAFEBABEull);

  bytes.clear();
  serve::append_pong(bytes, 0xCAFEBABEull);
  token = 0;
  ASSERT_TRUE(serve::parse_pong(decode_one(bytes), token));
  EXPECT_EQ(token, 0xCAFEBABEull);
}

TEST(ServeWire, ReloadAckRoundTrips) {
  std::string bytes;
  serve::append_reload_ack(bytes,
                           serve::ReloadAckMsg{false, "checksum mismatch"});
  serve::ReloadAckMsg ack;
  ASSERT_TRUE(serve::parse_reload_ack(decode_one(bytes), ack));
  EXPECT_FALSE(ack.ok);
  EXPECT_EQ(ack.error, "checksum mismatch");

  bytes.clear();
  serve::append_reload_ack(bytes, serve::ReloadAckMsg{true, ""});
  ASSERT_TRUE(serve::parse_reload_ack(decode_one(bytes), ack));
  EXPECT_TRUE(ack.ok);
  EXPECT_TRUE(ack.error.empty());
}

TEST(ServeWire, ErrorRoundTrips) {
  std::string bytes;
  serve::append_error(
      bytes, serve::ErrorMsg{9, static_cast<std::uint32_t>(
                                    serve::WireErrorCode::BadState),
                             "state index out of range"});
  serve::ErrorMsg err;
  ASSERT_TRUE(serve::parse_error(decode_one(bytes), err));
  EXPECT_EQ(err.request_id, 9u);
  EXPECT_EQ(err.code,
            static_cast<std::uint32_t>(serve::WireErrorCode::BadState));
  EXPECT_EQ(err.message, "state index out of range");
}

TEST(ServeWire, ParseRejectsWrongTypeAndShortPayload) {
  std::string bytes;
  serve::append_ping(bytes, 1);  // 8-byte payload, Ping type
  const util::Frame ping = decode_one(bytes);
  serve::QueryMsg query;
  EXPECT_FALSE(serve::parse_query(ping, query));  // wrong type

  // Right type, truncated payload: a hand-built Query frame with 4 payload
  // bytes passes the CRC but must fail the message parse.
  std::string short_frame;
  util::append_frame(short_frame,
                     static_cast<std::uint8_t>(MsgType::Query), 0, "abcd");
  EXPECT_FALSE(serve::parse_query(decode_one(short_frame), query));
}

// Fuzz-ish: flip every bit of an encoded query; the frame layer must never
// hand a corrupted payload to the message parser as Ok.
TEST(ServeWire, CorruptedQueryNeverParses) {
  std::string bytes;
  serve::append_query(bytes, serve::QueryMsg{77, 1, 55});
  for (std::size_t byte = 0; byte < bytes.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      std::string corrupt = bytes;
      corrupt[byte] = static_cast<char>(corrupt[byte] ^ (1 << bit));
      std::size_t offset = 0;
      util::Frame frame;
      const auto status = util::decode_frame(corrupt, offset, frame);
      EXPECT_NE(status, util::FrameStatus::Ok)
          << "flip at byte " << byte << " bit " << bit;
    }
  }
}

TEST(ServeWire, TruncatedQueryNeedsMore) {
  std::string bytes;
  serve::append_query(bytes, serve::QueryMsg{1, 0, 2});
  for (std::size_t len = 0; len < bytes.size(); ++len) {
    std::size_t offset = 0;
    util::Frame frame;
    EXPECT_EQ(util::decode_frame(std::string_view(bytes).substr(0, len),
                                 offset, frame),
              util::FrameStatus::NeedMore);
  }
}

}  // namespace
}  // namespace pmrl
