// PolicyServer loopback integration: request/response over UDS and TCP,
// cache hits, corruption handling, hot-reload invalidation, overload
// shedding, and per-request timeout degradation. Everything runs in one
// process over loopback sockets, so these tests double as the TSan gate
// for the acceptor/worker/reload thread choreography.

#include "serve/server.hpp"

#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/trace_sink.hpp"
#include "rl/policy_io.hpp"
#include "serve/client.hpp"

namespace pmrl {
namespace {

using namespace std::chrono_literals;

/// Short unique UDS path for the current test (sun_path is ~108 bytes).
std::string test_socket_path() {
  const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
  return ::testing::TempDir() + "pmrl_" + std::to_string(::getpid()) + "_" +
         info->name() + ".sock";
}

serve::ServerConfig base_config() {
  serve::ServerConfig config;
  config.uds_path = test_socket_path();
  config.workers = 2;
  config.batch_max = 16;
  config.batch_deadline = 100us;
  config.queue_capacity = 64;
  config.request_timeout = 5s;  // tests that need timeouts shrink this
  config.cache_capacity = 256;
  return config;
}

/// Writes a checkpoint (default governor shape) whose greedy move for
/// `state` on every agent is `action`, with margin far above the down-bias
/// selection prior.
void write_policy_file(const std::string& path, std::size_t state,
                       std::size_t action) {
  rl::RlGovernor governor(rl::RlGovernorConfig{}, 2);
  for (std::size_t agent = 0; agent < governor.agent_count(); ++agent) {
    governor.agent(agent).set_q_value(state, action, 5.0);
  }
  std::ofstream out(path);
  ASSERT_TRUE(out);
  rl::save_policy(governor, out);
}

TEST(PolicyServer, UdsQueryReturnsGreedyAction) {
  auto config = base_config();
  serve::PolicyServer server(config);
  server.governor().agent(0).set_q_value(7, 2, 5.0);
  server.start();
  auto client = serve::Client::connect_uds(config.uds_path);
  const auto result = client.query(7);
  EXPECT_EQ(result.action, 2u);
  EXPECT_FALSE(result.safe_default);
  server.stop();
}

TEST(PolicyServer, TcpQueryWorks) {
  auto config = base_config();
  config.uds_path.clear();
  config.tcp_enable = true;
  config.tcp_port = 0;  // ephemeral
  serve::PolicyServer server(config);
  server.governor().agent(1).set_q_value(3, 2, 5.0);
  server.start();
  ASSERT_GT(server.tcp_port(), 0);
  auto client = serve::Client::connect_tcp("127.0.0.1", server.tcp_port());
  EXPECT_TRUE(client.ping(99));
  const auto result = client.query(3, /*agent=*/1);
  EXPECT_EQ(result.action, 2u);
  server.stop();
}

TEST(PolicyServer, RepeatQueryHitsCache) {
  auto config = base_config();
  serve::PolicyServer server(config);
  server.governor().agent(0).set_q_value(11, 2, 5.0);
  server.start();
  auto client = serve::Client::connect_uds(config.uds_path);
  const auto first = client.query(11);
  EXPECT_FALSE(first.cache_hit);
  const auto second = client.query(11);
  EXPECT_TRUE(second.cache_hit);
  EXPECT_EQ(first.action, second.action);
  server.stop();
}

TEST(PolicyServer, BadStateAndAgentGetErrorAndConnectionSurvives) {
  auto config = base_config();
  serve::PolicyServer server(config);
  const auto states = server.governor().agent(0).state_count();
  server.governor().agent(0).set_q_value(1, 2, 5.0);
  server.start();
  auto client = serve::Client::connect_uds(config.uds_path);
  EXPECT_THROW(client.query(states + 10), serve::ClientError);
  EXPECT_THROW(client.query(0, /*agent=*/99), serve::ClientError);
  // The frames were valid, only the payloads were out of range: the same
  // connection keeps serving.
  EXPECT_EQ(client.query(1).action, 2u);
  server.stop();
}

TEST(PolicyServer, GarbageBytesDropOnlyThatConnection) {
  auto config = base_config();
  obs::MetricsRegistry metrics;
  serve::PolicyServer server(config);
  server.set_metrics(&metrics);
  server.governor().agent(0).set_q_value(1, 2, 5.0);
  server.start();
  {
    auto vandal = serve::Client::connect_uds(config.uds_path);
    const std::string garbage = "this is definitely not a PMRF frame....";
    vandal.send_raw(garbage.data(), garbage.size());
    // The server answers with an Error frame and closes; either surfaces
    // as a ClientError here.
    EXPECT_THROW(
        {
          for (;;) (void)vandal.recv_response();
        },
        serve::ClientError);
  }
  // A fresh connection is unaffected.
  auto client = serve::Client::connect_uds(config.uds_path);
  EXPECT_EQ(client.query(1).action, 2u);
  EXPECT_GE(metrics.counter("serve.wire_errors").value(), 1u);
  server.stop();
}

TEST(PolicyServer, TruncatedFrameCompletesAcrossWrites) {
  auto config = base_config();
  serve::PolicyServer server(config);
  server.governor().agent(0).set_q_value(4, 2, 5.0);
  server.start();
  auto client = serve::Client::connect_uds(config.uds_path);
  std::string frame;
  serve::append_query(frame, serve::QueryMsg{123, 0, 4});
  client.send_raw(frame.data(), 10);  // mid-header
  std::this_thread::sleep_for(20ms);
  client.send_raw(frame.data() + 10, frame.size() - 10);
  const auto msg = client.recv_response();
  EXPECT_EQ(msg.request_id, 123u);
  EXPECT_EQ(msg.action, 2u);
  server.stop();
}

TEST(PolicyServer, ReloadSwapsPolicyAndInvalidatesCache) {
  auto config = base_config();
  config.policy_path = test_socket_path() + ".pmrl";
  write_policy_file(config.policy_path, 9, 2);
  serve::PolicyServer server(config);
  server.start();
  auto client = serve::Client::connect_uds(config.uds_path);
  EXPECT_EQ(client.query(9).action, 2u);
  EXPECT_TRUE(client.query(9).cache_hit);  // now cached

  write_policy_file(config.policy_path, 9, 1);
  std::string error;
  ASSERT_TRUE(client.reload(&error)) << error;
  const auto after = client.query(9);
  EXPECT_EQ(after.action, 1u);        // the reloaded policy answers
  EXPECT_FALSE(after.cache_hit);      // the cache was invalidated
  server.stop();
  ::unlink(config.policy_path.c_str());
}

TEST(PolicyServer, ReloadRejectsCorruptCheckpointAndKeepsServing) {
  auto config = base_config();
  config.policy_path = test_socket_path() + ".pmrl";
  write_policy_file(config.policy_path, 6, 2);
  serve::PolicyServer server(config);
  server.start();
  auto client = serve::Client::connect_uds(config.uds_path);
  EXPECT_EQ(client.query(6).action, 2u);

  // Corrupt the checkpoint on disk; the reload must reject it (CRC) and
  // keep the in-memory policy (and its cache) serving.
  {
    std::ofstream out(config.policy_path);
    out << "pmrl-policy,2,2,240,3\nnot,numbers,at,all\n";
  }
  std::string error;
  EXPECT_FALSE(client.reload(&error));
  EXPECT_FALSE(error.empty());
  const auto after = client.query(6);
  EXPECT_EQ(after.action, 2u);
  EXPECT_TRUE(after.cache_hit);  // cache untouched by the failed reload
  server.stop();
  ::unlink(config.policy_path.c_str());
}

TEST(PolicyServer, OverloadShedsSafeDefaultsWithoutDrops) {
  auto config = base_config();
  config.workers = 1;
  config.queue_capacity = 4;
  serve::PolicyServer server(config);
  server.governor().agent(0).set_q_value(2, 2, 5.0);
  server.start();
  server.pause_workers();  // stall the drain so the queue fills

  auto client = serve::Client::connect_uds(config.uds_path);
  constexpr std::size_t kBurst = 12;
  for (std::size_t i = 0; i < kBurst; ++i) (void)client.send_query(2);

  // The overflow (burst - capacity) is shed immediately with the
  // safe-default all-hold action; the queued remainder is served for real
  // once the workers resume. No request goes unanswered, the connection
  // never drops.
  std::size_t shed = 0;
  std::vector<serve::ResponseMsg> real;
  for (std::size_t i = 0; i < kBurst - config.queue_capacity; ++i) {
    const auto msg = client.recv_response();
    EXPECT_TRUE(msg.flags & serve::kRespSafeDefault);
    EXPECT_EQ(msg.action, 0u);  // all-hold
    ++shed;
  }
  server.resume_workers();
  for (std::size_t i = 0; i < config.queue_capacity; ++i) {
    real.push_back(client.recv_response());
  }
  EXPECT_EQ(shed, kBurst - config.queue_capacity);
  for (const auto& msg : real) {
    EXPECT_FALSE(msg.flags & serve::kRespSafeDefault);
    EXPECT_EQ(msg.action, 2u);
  }
  server.stop();
}

TEST(PolicyServer, StaleRequestsDegradeToSafeDefault) {
  auto config = base_config();
  config.workers = 1;
  config.request_timeout = 1ms;
  serve::PolicyServer server(config);
  server.governor().agent(0).set_q_value(8, 2, 5.0);
  server.start();
  server.pause_workers();
  auto client = serve::Client::connect_uds(config.uds_path);
  (void)client.send_query(8);
  (void)client.send_query(8);
  std::this_thread::sleep_for(50ms);  // let both requests go stale
  server.resume_workers();
  for (int i = 0; i < 2; ++i) {
    const auto msg = client.recv_response();
    EXPECT_TRUE(msg.flags & serve::kRespSafeDefault);
    EXPECT_EQ(msg.action, 0u);
  }
  server.stop();
}

TEST(PolicyServer, MetricsAndTraceAreWired) {
  auto config = base_config();
  obs::MetricsRegistry metrics;
  obs::VectorTraceSink trace;
  serve::PolicyServer server(config);
  server.set_metrics(&metrics);
  server.set_trace_sink(&trace);
  server.governor().agent(0).set_q_value(5, 2, 5.0);
  server.start();
  auto client = serve::Client::connect_uds(config.uds_path);
  for (int i = 0; i < 10; ++i) (void)client.query(5);
  server.stop();

  EXPECT_GE(metrics.counter("serve.requests").value(), 10u);
  EXPECT_GE(metrics.counter("serve.cache_hit").value(), 9u);
  EXPECT_GE(metrics.counter("serve.cache_miss").value(), 1u);
  EXPECT_GE(metrics.histogram("serve.batch_size").count(), 1u);
  EXPECT_GE(metrics.histogram("serve.latency_s").count(), 10u);
  const std::string json = metrics.to_json();
  EXPECT_NE(json.find("\"serve.latency_s\""), std::string::npos);
  EXPECT_NE(json.find("\"p50\""), std::string::npos);
  EXPECT_NE(json.find("\"p99\""), std::string::npos);

  ASSERT_FALSE(trace.events().empty());
  for (const auto& event : trace.events()) {
    EXPECT_EQ(event.kind, obs::EventKind::HwInvoke);
    EXPECT_EQ(event.detail, "serve.batch");
    EXPECT_GE(event.value, 1.0);
  }
  EXPECT_GE(server.responses(), 10u);
}

// Reload hammer: clients query nonstop on every shard while the policy
// file flips between two greedy actions and reloads fire. Every answer
// must be one of the two valid actions (never a torn read, never a stale
// cache entry after the generation moved), and after the final reload a
// cold query must serve the final policy. This is the TSan gate for the
// generation-counter invalidation protocol.
TEST(PolicyServer, ReloadInvalidationUnderConcurrentQueries) {
  auto config = base_config();
  config.workers = 3;
  config.policy_path = test_socket_path() + ".pmrl";
  write_policy_file(config.policy_path, 9, 1);
  serve::PolicyServer server(config);
  server.start();

  std::atomic<bool> done{false};
  std::atomic<int> bad_actions{0};
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 3; ++t) {
    threads.emplace_back([&] {
      try {
        auto client = serve::Client::connect_uds(config.uds_path);
        while (!done.load(std::memory_order_relaxed)) {
          const auto result = client.query(9);
          if (result.action != 1u && result.action != 2u) ++bad_actions;
        }
      } catch (const serve::ClientError&) {
        ++failures;
      }
    });
  }
  auto admin = serve::Client::connect_uds(config.uds_path);
  for (int round = 0; round < 20; ++round) {
    write_policy_file(config.policy_path, 9, (round % 2) ? 1 : 2);
    std::string error;
    ASSERT_TRUE(admin.reload(&error)) << error;
  }
  done.store(true, std::memory_order_relaxed);
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(bad_actions.load(), 0);
  EXPECT_EQ(failures.load(), 0);
  EXPECT_GE(server.cache_generation(), 20u);

  // After the last reload (even round 19 -> action 1) no stale cached
  // action 2 may survive on any shard: fresh connections land on
  // whichever shard accepts first and must all see the final policy.
  for (int i = 0; i < 6; ++i) {
    auto probe = serve::Client::connect_uds(config.uds_path);
    EXPECT_EQ(probe.query(9).action, 1u);
  }
  server.stop();
  ::unlink(config.policy_path.c_str());
}

TEST(PolicyServer, ManyConnectionsConcurrently) {
  auto config = base_config();
  config.workers = 4;
  serve::PolicyServer server(config);
  server.governor().agent(0).set_q_value(1, 2, 5.0);
  server.governor().agent(1).set_q_value(2, 2, 5.0);
  server.start();
  constexpr int kClients = 6;
  constexpr int kQueriesEach = 200;
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  for (int t = 0; t < kClients; ++t) {
    threads.emplace_back([&, t] {
      try {
        auto client = serve::Client::connect_uds(config.uds_path);
        for (int i = 0; i < kQueriesEach; ++i) {
          const std::uint32_t agent = t % 2;
          const std::uint64_t state = agent == 0 ? 1 : 2;
          if (client.query(state, agent).action != 2u) ++failures;
        }
      } catch (const serve::ClientError&) {
        ++failures;
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(failures.load(), 0);
  server.stop();
}

}  // namespace
}  // namespace pmrl
