// serve/cache.hpp: LRU semantics of the decision cache — eviction order,
// promotion on hit, refresh on put, clear-on-reload, disabled mode.

#include "serve/cache.hpp"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace pmrl {
namespace {

TEST(DecisionCache, MissThenHit) {
  serve::DecisionCache cache(4);
  EXPECT_FALSE(cache.get(10).has_value());
  cache.put(10, 3);
  const auto hit = cache.get(10);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(*hit, 3u);
  EXPECT_EQ(cache.size(), 1u);
}

TEST(DecisionCache, EvictsLeastRecentlyUsed) {
  serve::DecisionCache cache(3);
  cache.put(1, 11);
  cache.put(2, 22);
  cache.put(3, 33);
  cache.put(4, 44);  // evicts key 1 (oldest)
  EXPECT_FALSE(cache.get(1).has_value());
  EXPECT_TRUE(cache.get(2).has_value());
  EXPECT_TRUE(cache.get(3).has_value());
  EXPECT_TRUE(cache.get(4).has_value());
  EXPECT_EQ(cache.size(), 3u);
}

TEST(DecisionCache, GetPromotesToMostRecentlyUsed) {
  serve::DecisionCache cache(3);
  cache.put(1, 11);
  cache.put(2, 22);
  cache.put(3, 33);
  EXPECT_TRUE(cache.get(1).has_value());  // 1 becomes MRU
  cache.put(4, 44);                       // evicts 2, not 1
  EXPECT_TRUE(cache.get(1).has_value());
  EXPECT_FALSE(cache.get(2).has_value());
}

TEST(DecisionCache, PutRefreshesExistingKey) {
  serve::DecisionCache cache(2);
  cache.put(1, 11);
  cache.put(2, 22);
  cache.put(1, 99);  // refresh, promotes 1
  cache.put(3, 33);  // evicts 2
  const auto hit = cache.get(1);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(*hit, 99u);
  EXPECT_FALSE(cache.get(2).has_value());
}

TEST(DecisionCache, ClearDropsEverything) {
  serve::DecisionCache cache(4);
  cache.put(1, 11);
  cache.put(2, 22);
  cache.clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_FALSE(cache.get(1).has_value());
  EXPECT_FALSE(cache.get(2).has_value());
}

TEST(DecisionCache, ZeroCapacityDisables) {
  serve::DecisionCache cache(0);
  cache.put(1, 11);
  EXPECT_FALSE(cache.get(1).has_value());
  EXPECT_EQ(cache.size(), 0u);
}

// Workers of several batches probe/fill/clear concurrently; the cache must
// stay internally consistent (size bounded by capacity, no crash, every
// hit returns a value some thread actually put).
TEST(DecisionCache, ThreadSafeUnderConcurrentUse) {
  serve::DecisionCache cache(64);
  constexpr int kThreads = 8;
  constexpr int kIters = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&cache, t] {
      for (int i = 0; i < kIters; ++i) {
        const auto key = static_cast<std::uint64_t>(i % 256);
        if (const auto hit = cache.get(key)) {
          EXPECT_EQ(*hit, static_cast<std::uint32_t>(key % 16));
        } else {
          cache.put(key, static_cast<std::uint32_t>(key % 16));
        }
        if (t == 0 && i % 5000 == 0) cache.clear();
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_LE(cache.size(), 64u);
}

TEST(WorkerCache, SyncInvalidatesOnlyOnGenerationChange) {
  serve::WorkerCache cache(8);
  cache.put(1, 11);
  EXPECT_FALSE(cache.sync(0));  // generation unchanged
  EXPECT_TRUE(cache.get(1).has_value());
  EXPECT_TRUE(cache.sync(1));  // reload happened: everything drops
  EXPECT_FALSE(cache.get(1).has_value());
  EXPECT_EQ(cache.generation(), 1u);
  cache.put(2, 22);
  EXPECT_FALSE(cache.sync(1));
  EXPECT_TRUE(cache.get(2).has_value());
}

TEST(WorkerCache, ProbeCombinesSyncAndLookup) {
  serve::WorkerCache cache(8);
  cache.put(5, 55);
  const auto hit = cache.probe(5, 0);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(*hit, 55u);
  // A probe under a moved generation must miss (stale entry dropped) and
  // leave the cache on the new generation.
  EXPECT_FALSE(cache.probe(5, 3).has_value());
  EXPECT_EQ(cache.generation(), 3u);
  EXPECT_EQ(cache.size(), 0u);
}

TEST(WorkerCache, CapacityAndLruSemanticsPassThrough) {
  serve::WorkerCache cache(2);
  EXPECT_EQ(cache.capacity(), 2u);
  cache.put(1, 11);
  cache.put(2, 22);
  cache.put(3, 33);  // evicts 1
  EXPECT_FALSE(cache.get(1).has_value());
  EXPECT_TRUE(cache.get(2).has_value());
  EXPECT_TRUE(cache.get(3).has_value());
}

}  // namespace
}  // namespace pmrl
