// RolloutController: config validation, deterministic cohort routing, and
// the canary state machine — windows close only with both arms reporting,
// settle-window hysteresis turns window verdicts into Rollback/Promote,
// and terminal states ignore further reports.

#include "policy/rollout.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace pmrl::policy {
namespace {

RolloutConfig fast_config() {
  RolloutConfig config;
  config.canary_pct = 50.0;
  config.regression_threshold = 0.10;
  config.window_reports = 4;
  config.settle_windows = 2;
  return config;
}

/// One balanced window: half the reports from each arm at the given
/// per-report energy (QoS 1 each), so window epq == energy.
RolloutDecision feed_window(RolloutController& controller,
                            double incumbent_energy,
                            double candidate_energy) {
  RolloutDecision last = RolloutDecision::None;
  for (int i = 0; i < 2; ++i) {
    last = controller.report(false, incumbent_energy, 1.0);
    last = controller.report(true, candidate_energy, 1.0);
  }
  return last;
}

TEST(RolloutControllerTest, RejectsInvalidConfig) {
  RolloutConfig bad = fast_config();
  bad.canary_pct = 101.0;
  EXPECT_THROW(RolloutController{bad}, std::invalid_argument);
  bad = fast_config();
  bad.window_reports = 0;
  EXPECT_THROW(RolloutController{bad}, std::invalid_argument);
  bad = fast_config();
  bad.settle_windows = 0;
  EXPECT_THROW(RolloutController{bad}, std::invalid_argument);
  bad = fast_config();
  bad.regression_threshold = -0.1;
  EXPECT_THROW(RolloutController{bad}, std::invalid_argument);
}

TEST(RolloutControllerTest, RoutingIsDeterministicAndRespectsPct) {
  EXPECT_FALSE(RolloutController::routes_to_candidate(123, 0.0, 0));
  EXPECT_TRUE(RolloutController::routes_to_candidate(123, 100.0, 0));
  int candidates = 0;
  for (std::uint64_t key = 0; key < 10000; ++key) {
    const bool arm = RolloutController::routes_to_candidate(key, 25.0, 9);
    EXPECT_EQ(arm, RolloutController::routes_to_candidate(key, 25.0, 9));
    candidates += arm ? 1 : 0;
  }
  // A hash split, not an exact quota: 25% +/- 2 points over 10k keys.
  EXPECT_NEAR(candidates / 10000.0, 0.25, 0.02);
}

TEST(RolloutControllerTest, RegressionStreakTripsRollback) {
  RolloutController controller(fast_config());
  controller.start(7);
  EXPECT_EQ(controller.state(), RolloutState::Canary);
  EXPECT_EQ(controller.candidate_version(), 7u);
  // Candidate spends 2x the energy per QoS: every window regresses.
  EXPECT_EQ(feed_window(controller, 1.0, 2.0), RolloutDecision::None);
  EXPECT_EQ(controller.regressed_streak(), 1u);
  EXPECT_EQ(feed_window(controller, 1.0, 2.0), RolloutDecision::Rollback);
  EXPECT_EQ(controller.state(), RolloutState::RolledBack);
  EXPECT_EQ(controller.windows_evaluated(), 2u);
}

TEST(RolloutControllerTest, HealthyStreakPromotes) {
  RolloutController controller(fast_config());
  controller.start(3);
  EXPECT_EQ(feed_window(controller, 1.0, 0.9), RolloutDecision::None);
  EXPECT_EQ(feed_window(controller, 1.0, 0.9), RolloutDecision::Promote);
  EXPECT_EQ(controller.state(), RolloutState::Promoted);
}

TEST(RolloutControllerTest, NoisyWindowResetsTheOpposingStreak) {
  RolloutController controller(fast_config());
  controller.start(1);
  EXPECT_EQ(feed_window(controller, 1.0, 2.0), RolloutDecision::None);
  EXPECT_EQ(controller.regressed_streak(), 1u);
  // One healthy window resets the regression streak instead of tripping.
  EXPECT_EQ(feed_window(controller, 1.0, 1.0), RolloutDecision::None);
  EXPECT_EQ(controller.regressed_streak(), 0u);
  EXPECT_EQ(controller.healthy_streak(), 1u);
  EXPECT_EQ(feed_window(controller, 1.0, 2.0), RolloutDecision::None);
  EXPECT_EQ(feed_window(controller, 1.0, 2.0), RolloutDecision::Rollback);
}

TEST(RolloutControllerTest, WithinThresholdCountsAsHealthy) {
  RolloutController controller(fast_config());
  controller.start(1);
  // 8% worse with a 10% threshold: healthy.
  EXPECT_EQ(feed_window(controller, 1.0, 1.08), RolloutDecision::None);
  EXPECT_EQ(feed_window(controller, 1.0, 1.08), RolloutDecision::Promote);
}

TEST(RolloutControllerTest, WindowWaitsForBothArms) {
  RolloutController controller(fast_config());
  controller.start(1);
  // Twice the window size from the incumbent alone: nothing to compare,
  // the window keeps filling.
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(controller.report(false, 1.0, 1.0), RolloutDecision::None);
  }
  EXPECT_EQ(controller.windows_evaluated(), 0u);
  // The moment the candidate shows up, the (oversized) window closes.
  EXPECT_EQ(controller.report(true, 0.5, 1.0), RolloutDecision::None);
  EXPECT_EQ(controller.windows_evaluated(), 1u);
}

TEST(RolloutControllerTest, TerminalStatesIgnoreReports) {
  RolloutController controller(fast_config());
  controller.start(1);
  feed_window(controller, 1.0, 2.0);
  feed_window(controller, 1.0, 2.0);
  ASSERT_EQ(controller.state(), RolloutState::RolledBack);
  const auto windows = controller.windows_evaluated();
  EXPECT_EQ(feed_window(controller, 1.0, 2.0), RolloutDecision::None);
  EXPECT_EQ(controller.windows_evaluated(), windows);
  EXPECT_EQ(controller.state(), RolloutState::RolledBack);
}

TEST(RolloutControllerTest, ArmAggregatesAccumulateAcrossWindows) {
  RolloutController controller(fast_config());
  controller.start(1);
  feed_window(controller, 1.0, 2.0);
  feed_window(controller, 1.0, 2.0);
  EXPECT_EQ(controller.arm_reports(false), 4u);
  EXPECT_EQ(controller.arm_reports(true), 4u);
  EXPECT_DOUBLE_EQ(controller.arm_energy_j(false), 4.0);
  EXPECT_DOUBLE_EQ(controller.arm_energy_j(true), 8.0);
  EXPECT_DOUBLE_EQ(controller.arm_energy_per_qos(false), 1.0);
  EXPECT_DOUBLE_EQ(controller.arm_energy_per_qos(true), 2.0);
}

TEST(RolloutControllerTest, StartResetsEverything) {
  RolloutController controller(fast_config());
  controller.start(1);
  feed_window(controller, 1.0, 2.0);
  controller.start(2);
  EXPECT_EQ(controller.state(), RolloutState::Canary);
  EXPECT_EQ(controller.candidate_version(), 2u);
  EXPECT_EQ(controller.arm_reports(true), 0u);
  EXPECT_EQ(controller.regressed_streak(), 0u);
  EXPECT_EQ(controller.windows_evaluated(), 0u);
}

}  // namespace
}  // namespace pmrl::policy
