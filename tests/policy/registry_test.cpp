// PolicyRegistry: versioned storage round-trips, monotonic version
// assignment, lifecycle status + CURRENT pointer semantics, corruption
// containment (CRC footers), and v1-checkpoint compatibility — entries
// written by old builds must stay loadable.

#include "policy/registry.hpp"

#include <gtest/gtest.h>
#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "rl/policy_io.hpp"

namespace pmrl::policy {
namespace {

/// Fresh per-test registry directory (removed and recreated).
std::filesystem::path test_dir() {
  const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
  const std::filesystem::path dir =
      std::filesystem::path(::testing::TempDir()) /
      ("pmrl_registry_" + std::to_string(::getpid()) + "_" + info->name());
  std::filesystem::remove_all(dir);
  return dir;
}

rl::RlGovernor marked_governor(double q) {
  rl::RlGovernor governor(rl::RlGovernorConfig{}, 2);
  governor.agent(0).set_q_value(3, 1, q);
  return governor;
}

PolicyMeta lineage_meta() {
  PolicyMeta meta;
  meta.parent_version = 0;
  meta.train_seed = 42;
  meta.merge_seed = 7;
  meta.episodes = 60;
  meta.actors = 4;
  meta.note = "unit test";
  return meta;
}

TEST(PolicyRegistryTest, AddAssignsMonotonicVersionsAndRoundTripsMeta) {
  PolicyRegistry registry(test_dir());
  EXPECT_TRUE(registry.list().empty());
  EXPECT_EQ(registry.add(marked_governor(-1.0), lineage_meta()), 1u);
  auto second = lineage_meta();
  second.parent_version = 1;
  EXPECT_EQ(registry.add(marked_governor(-2.0), second), 2u);

  const auto entries = registry.list();
  ASSERT_EQ(entries.size(), 2u);
  EXPECT_EQ(entries[0].version, 1u);
  EXPECT_EQ(entries[1].version, 2u);
  EXPECT_EQ(entries[1].parent_version, 1u);
  EXPECT_EQ(entries[0].status, PolicyStatus::Candidate);
  EXPECT_EQ(entries[0].train_seed, 42u);
  EXPECT_EQ(entries[0].merge_seed, 7u);
  EXPECT_EQ(entries[0].episodes, 60u);
  EXPECT_EQ(entries[0].actors, 4u);
  EXPECT_EQ(entries[0].note, "unit test");
}

TEST(PolicyRegistryTest, LoadRestoresTheCheckpoint) {
  PolicyRegistry registry(test_dir());
  const auto version = registry.add(marked_governor(-3.5), lineage_meta());
  rl::RlGovernor restored(rl::RlGovernorConfig{}, 2);
  registry.load(version, restored);
  EXPECT_DOUBLE_EQ(restored.agent(0).q_value(3, 1), -3.5);
}

TEST(PolicyRegistryTest, PromoteSetsCurrentRollbackDoesNot) {
  PolicyRegistry registry(test_dir());
  registry.add(marked_governor(-1.0), lineage_meta());
  registry.add(marked_governor(-2.0), lineage_meta());
  EXPECT_FALSE(registry.current().has_value());

  registry.promote(1);
  ASSERT_TRUE(registry.current().has_value());
  EXPECT_EQ(*registry.current(), 1u);
  EXPECT_EQ(registry.meta(1)->status, PolicyStatus::Promoted);

  registry.rollback(2);
  EXPECT_EQ(registry.meta(2)->status, PolicyStatus::RolledBack);
  EXPECT_EQ(*registry.current(), 1u);  // the incumbent keeps serving
}

TEST(PolicyRegistryTest, LatestCandidateSkipsServedVersions) {
  PolicyRegistry registry(test_dir());
  registry.add(marked_governor(-1.0), lineage_meta());
  registry.add(marked_governor(-2.0), lineage_meta());
  registry.add(marked_governor(-3.0), lineage_meta());
  EXPECT_EQ(*registry.latest_candidate(), 3u);
  registry.set_status(3, PolicyStatus::Canary);
  EXPECT_EQ(*registry.latest_candidate(), 2u);
  registry.promote(2);
  registry.rollback(1);
  EXPECT_FALSE(registry.latest_candidate().has_value());
}

TEST(PolicyRegistryTest, SetStatusOnMissingVersionThrows) {
  PolicyRegistry registry(test_dir());
  EXPECT_THROW(registry.set_status(9, PolicyStatus::Promoted),
               std::runtime_error);
}

TEST(PolicyRegistryTest, CorruptMetaIsSkippedNotServed) {
  PolicyRegistry registry(test_dir());
  registry.add(marked_governor(-1.0), lineage_meta());
  registry.add(marked_governor(-2.0), lineage_meta());
  {
    std::ofstream out(registry.meta_path(1),
                      std::ios::binary | std::ios::app);
    out << "tampered\n";
  }
  EXPECT_FALSE(registry.meta(1).has_value());
  const auto entries = registry.list();
  ASSERT_EQ(entries.size(), 1u);
  EXPECT_EQ(entries[0].version, 2u);
  // Version assignment still moves forward from the highest readable id.
  EXPECT_EQ(registry.add(marked_governor(-3.0), lineage_meta()), 3u);
}

TEST(PolicyRegistryTest, CorruptCurrentPointerReadsAsUnset) {
  PolicyRegistry registry(test_dir());
  registry.add(marked_governor(-1.0), lineage_meta());
  registry.promote(1);
  ASSERT_TRUE(registry.current().has_value());
  {
    std::ofstream out(registry.dir() / "CURRENT", std::ios::binary);
    out << "1\ncrc32,00000000\n";
  }
  EXPECT_FALSE(registry.current().has_value());
}

// Satellite: a registry entry whose checkpoint was written by an old build
// in the v1 format (no crc32 footer) must still load.
TEST(PolicyRegistryTest, V1CheckpointEntryStillLoads) {
  PolicyRegistry registry(test_dir());
  const auto version = registry.add(marked_governor(-4.25), lineage_meta());

  // Rewrite the stored checkpoint as a v1 file, exactly as an old build
  // would have produced it.
  std::ifstream in(registry.policy_path(version));
  std::stringstream buffer;
  buffer << in.rdbuf();
  std::string text = buffer.str();
  ASSERT_EQ(text.rfind("pmrl-policy,2,", 0), 0u);
  text.replace(0, 14, "pmrl-policy,1,");
  const std::size_t footer = text.rfind("crc32,");
  ASSERT_NE(footer, std::string::npos);
  text.erase(footer);
  {
    std::ofstream out(registry.policy_path(version), std::ios::binary);
    out << text;
  }

  rl::RlGovernor restored(rl::RlGovernorConfig{}, 2);
  registry.load(version, restored);
  EXPECT_DOUBLE_EQ(restored.agent(0).q_value(3, 1), -4.25);
}

}  // namespace
}  // namespace pmrl::policy
