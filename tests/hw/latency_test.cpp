#include "hw/latency.hpp"

#include <gtest/gtest.h>

namespace pmrl::hw {
namespace {

TEST(LatencyExperimentTest, SyntheticStreamProperties) {
  const auto stream = synthetic_stream(128, 1000, 42);
  ASSERT_EQ(stream.size(), 1000u);
  for (const auto& record : stream) {
    EXPECT_LT(record.state, 128u);
    EXPECT_LE(record.reward, 0.0);
    EXPECT_GE(record.reward, -2.0);
  }
  // Deterministic per seed.
  const auto again = synthetic_stream(128, 1000, 42);
  EXPECT_EQ(stream[500].state, again[500].state);
  const auto other = synthetic_stream(128, 1000, 43);
  bool differs = false;
  for (std::size_t i = 0; i < 1000 && !differs; ++i) {
    differs = stream[i].state != other[i].state;
  }
  EXPECT_TRUE(differs);
}

TEST(LatencyExperimentTest, SampleCountsMatchStream) {
  LatencyExperimentConfig config;
  const auto stream = synthetic_stream(1024, 500, 1);
  const auto result = run_latency_experiment(config, 1024, 9, stream);
  EXPECT_EQ(result.sw_latency_s.count(), 500u);
  EXPECT_EQ(result.hw_raw_s.count(), 500u);
  EXPECT_EQ(result.hw_end_to_end_s.count(), 500u);
}

TEST(LatencyExperimentTest, OrderingInvariant) {
  // raw < end-to-end < software, sample by sample in the mean.
  LatencyExperimentConfig config;
  const auto stream = synthetic_stream(1024, 2000, 2);
  const auto result = run_latency_experiment(config, 1024, 9, stream);
  EXPECT_LT(result.hw_raw_s.mean(), result.hw_end_to_end_s.mean());
  EXPECT_LT(result.hw_end_to_end_s.mean(), result.sw_latency_s.mean());
  EXPECT_GT(result.mean_speedup_raw(), result.mean_speedup_end_to_end());
  EXPECT_GT(result.mean_speedup_end_to_end(), 1.0);
}

TEST(LatencyExperimentTest, PaperShapeReproduced) {
  // The calibrated defaults must land near the paper's numbers:
  // ~3.9x end-to-end and raw "up to" tens of x.
  LatencyExperimentConfig config;
  const auto stream = synthetic_stream(1024, 10000, 3);
  const auto result = run_latency_experiment(config, 1024, 9, stream);
  EXPECT_NEAR(result.mean_speedup_end_to_end(), 3.92, 0.6);
  EXPECT_GT(result.mean_speedup_raw(), 20.0);
  EXPECT_LT(result.mean_speedup_raw(), 60.0);
  const double up_to =
      result.sw_latency_s.quantile(0.99) / result.hw_raw_s.mean();
  EXPECT_NEAR(up_to, 40.0, 12.0);
}

TEST(LatencyExperimentTest, EmptyStreamSafe) {
  LatencyExperimentConfig config;
  const auto result = run_latency_experiment(config, 64, 9, {});
  EXPECT_EQ(result.sw_latency_s.count(), 0u);
  EXPECT_EQ(result.mean_speedup_end_to_end(), 0.0);
  EXPECT_EQ(result.mean_speedup_raw(), 0.0);
  EXPECT_EQ(result.max_speedup_raw(), 0.0);
}

TEST(LatencyExperimentTest, HwLatencyIsNearlyConstant) {
  // The datapath is unconditional: raw latency varies only between the
  // first invocation (no update) and the rest.
  LatencyExperimentConfig config;
  const auto stream = synthetic_stream(1024, 100, 4);
  const auto result = run_latency_experiment(config, 1024, 9, stream);
  EXPECT_LT(result.hw_raw_s.stddev(), result.hw_raw_s.mean() * 0.2);
  EXPECT_GT(result.sw_latency_s.stddev(), 0.0);
}

}  // namespace
}  // namespace pmrl::hw
