#include "hw/datapath.hpp"

#include <gtest/gtest.h>

namespace pmrl::hw {
namespace {

rl::FixedAgentConfig greedy_agent() {
  rl::FixedAgentConfig config;
  config.learning.epsilon_start = 0.0;
  config.learning.epsilon_end = 0.0;
  return config;
}

TEST(DatapathTest, ArgmaxTreeDepth) {
  EXPECT_EQ(QDatapath(greedy_agent(), 16, 2).argmax_tree_depth(), 1u);
  EXPECT_EQ(QDatapath(greedy_agent(), 16, 3).argmax_tree_depth(), 2u);
  EXPECT_EQ(QDatapath(greedy_agent(), 16, 9).argmax_tree_depth(), 4u);
  EXPECT_EQ(QDatapath(greedy_agent(), 16, 16).argmax_tree_depth(), 4u);
  EXPECT_EQ(QDatapath(greedy_agent(), 16, 1).argmax_tree_depth(), 0u);
}

TEST(DatapathTest, CycleCountsForNineActionConfig) {
  QDatapath dp(greedy_agent(), 1024, 9);
  // decide: capture(1) + addr(1) + bram(2) + tree(4) + mux(1) = 9.
  EXPECT_EQ(dp.decide_cycle_count(), 9u);
  // update: bram(2) + tree(4) + mult(2) + add(1) + sub(1) + mult(2) +
  //         add(1) + writeback(1) = 14.
  EXPECT_EQ(dp.update_cycle_count(), 14u);
}

TEST(DatapathTest, CycleCountsScaleWithTiming) {
  DatapathTiming slow;
  slow.bram_read_cycles = 3;
  slow.mult_cycles = 4;
  QDatapath dp(greedy_agent(), 64, 4);
  QDatapath slow_dp(greedy_agent(), 64, 4, slow);
  EXPECT_GT(slow_dp.decide_cycle_count(), dp.decide_cycle_count());
  EXPECT_GT(slow_dp.update_cycle_count(), dp.update_cycle_count());
}

TEST(DatapathTest, LfsrRunsInShadowOfDeepTree) {
  // With a deep argmax tree the 1-cycle LFSR is fully hidden.
  DatapathTiming timing;
  timing.lfsr_cycles = 1;
  QDatapath wide(greedy_agent(), 16, 16, timing);  // tree depth 4
  timing.lfsr_cycles = 4;
  QDatapath slow_lfsr(greedy_agent(), 16, 16, timing);
  EXPECT_EQ(wide.decide_cycle_count(), slow_lfsr.decide_cycle_count());
  // With a single action (tree depth 0) the LFSR becomes the critical path.
  QDatapath narrow(greedy_agent(), 16, 1, timing);
  EXPECT_EQ(narrow.decide_cycle_count(), 1u + 1u + 2u + 4u + 1u);
}

TEST(DatapathTest, DecideAccumulatesCycles) {
  QDatapath dp(greedy_agent(), 64, 9);
  CycleBreakdown cycles;
  dp.decide(0, cycles);
  dp.decide(1, cycles);
  EXPECT_EQ(cycles.decide_cycles, 2 * dp.decide_cycle_count());
  EXPECT_EQ(cycles.update_cycles, 0u);
  dp.update(0, 1, -0.5, 1, cycles);
  EXPECT_EQ(cycles.update_cycles, dp.update_cycle_count());
  EXPECT_EQ(cycles.total(),
            2 * dp.decide_cycle_count() + dp.update_cycle_count());
}

TEST(DatapathTest, DecisionsMatchEmbeddedAgent) {
  // The datapath is a cycle-counting wrapper: its decisions must be
  // exactly the embedded fixed-point agent's.
  rl::FixedAgentConfig config = greedy_agent();
  QDatapath dp(config, 32, 5);
  rl::FixedPointQAgent reference(config, 32, 5);
  CycleBreakdown cycles;
  for (int i = 0; i < 200; ++i) {
    const std::size_t s = static_cast<std::size_t>(i) % 32;
    EXPECT_EQ(dp.decide(s, cycles), reference.select_action(s));
    dp.update(s, 1, -0.3, (s + 1) % 32, cycles);
    reference.learn(s, 1, -0.3, (s + 1) % 32);
  }
  for (std::size_t s = 0; s < 32; ++s) {
    for (std::size_t a = 0; a < 5; ++a) {
      EXPECT_EQ(dp.agent().q_raw(s, a), reference.q_raw(s, a));
    }
  }
}

TEST(DatapathTest, QmemBits) {
  QDatapath dp(greedy_agent(), 1024, 9);
  EXPECT_EQ(dp.qmem_bits(), 1024u * 9u * 16u);
}

}  // namespace
}  // namespace pmrl::hw
