#include "hw/axi.hpp"

#include <gtest/gtest.h>

namespace pmrl::hw {
namespace {

TEST(AxiTest, RejectsBadClock) {
  AxiParams params;
  params.bus_clock_hz = 0.0;
  EXPECT_THROW(AxiLiteModel{params}, std::invalid_argument);
}

TEST(AxiTest, WriteLatencyLinearInCount) {
  const AxiLiteModel axi;
  const double one = axi.write_latency_s(1);
  EXPECT_GT(one, 0.0);
  EXPECT_DOUBLE_EQ(axi.write_latency_s(3), 3.0 * one);
  EXPECT_DOUBLE_EQ(axi.write_latency_s(0), 0.0);
}

TEST(AxiTest, ReadLatencyLinearInCount) {
  const AxiLiteModel axi;
  EXPECT_DOUBLE_EQ(axi.read_latency_s(2), 2.0 * axi.read_latency_s(1));
}

TEST(AxiTest, DefaultWriteCostsMoreThanRead) {
  // Write = 5 bus cycles vs read = 4 at the same MMIO overhead.
  const AxiLiteModel axi;
  EXPECT_GT(axi.write_latency_s(1), axi.read_latency_s(1));
}

TEST(AxiTest, LatencyComposition) {
  AxiParams params;
  params.bus_clock_hz = 100e6;   // 10 ns cycle
  params.write_cycles = 5;       // 50 ns bus
  params.read_cycles = 4;        // 40 ns bus
  params.cpu_mmio_overhead_s = 250e-9;
  params.driver_overhead_s = 450e-9;
  const AxiLiteModel axi(params);
  EXPECT_NEAR(axi.write_latency_s(1), 300e-9, 1e-12);
  EXPECT_NEAR(axi.read_latency_s(1), 290e-9, 1e-12);
  EXPECT_NEAR(axi.invocation_latency_s(3, 1), 450e-9 + 900e-9 + 290e-9,
              1e-12);
}

TEST(AxiTest, FasterBusReducesLatency) {
  AxiParams slow;
  slow.bus_clock_hz = 50e6;
  AxiParams fast;
  fast.bus_clock_hz = 200e6;
  EXPECT_GT(AxiLiteModel(slow).invocation_latency_s(3, 1),
            AxiLiteModel(fast).invocation_latency_s(3, 1));
}

TEST(AxiTest, MmioOverheadDominatesAtHighBusClock) {
  // At mobile-class MMIO costs the interconnect round trip, not the bus
  // handshake, dominates — the reason the paper packs the interface into
  // few registers.
  AxiParams params;
  params.bus_clock_hz = 400e6;
  const AxiLiteModel axi(params);
  const double bus_part =
      params.write_cycles / params.bus_clock_hz;
  EXPECT_GT(params.cpu_mmio_overhead_s, 5.0 * bus_part);
  EXPECT_NEAR(axi.write_latency_s(1),
              params.cpu_mmio_overhead_s + bus_part, 1e-12);
}

}  // namespace
}  // namespace pmrl::hw
