#include "hw/hw_policy.hpp"

#include <gtest/gtest.h>

#include <algorithm>

namespace pmrl::hw {
namespace {

TEST(HwPolicyTest, RejectsBadClock) {
  HwPolicyConfig config;
  config.fpga_clock_hz = 0.0;
  EXPECT_THROW(HwPolicyEngine(config, 16, 3), std::invalid_argument);
}

TEST(HwPolicyTest, FirstInvocationSkipsUpdate) {
  HwPolicyEngine engine(HwPolicyConfig{}, 64, 9);
  PolicyLatency latency;
  engine.invoke(5, -1.0, latency);
  // decide only: 9 cycles at default timing.
  EXPECT_EQ(latency.datapath_cycles,
            engine.datapath().decide_cycle_count());
}

TEST(HwPolicyTest, SubsequentInvocationsIncludeUpdate) {
  HwPolicyEngine engine(HwPolicyConfig{}, 64, 9);
  PolicyLatency latency;
  engine.invoke(5, -1.0, latency);
  engine.invoke(6, -0.5, latency);
  EXPECT_EQ(latency.datapath_cycles,
            engine.datapath().decide_cycle_count() +
                engine.datapath().update_cycle_count());
}

TEST(HwPolicyTest, ResetChainSkipsNextUpdate) {
  HwPolicyEngine engine(HwPolicyConfig{}, 64, 9);
  PolicyLatency latency;
  engine.invoke(5, -1.0, latency);
  engine.reset_chain();
  engine.invoke(6, -0.5, latency);
  EXPECT_EQ(latency.datapath_cycles,
            engine.datapath().decide_cycle_count());
}

TEST(HwPolicyTest, LatencyDecomposition) {
  HwPolicyEngine engine(HwPolicyConfig{}, 64, 9);
  PolicyLatency latency;
  engine.invoke(0, 0.0, latency);
  EXPECT_NEAR(latency.raw_s,
              latency.datapath_cycles / engine.config().fpga_clock_hz,
              1e-15);
  EXPECT_NEAR(latency.end_to_end_s,
              latency.raw_s + engine.interface_latency_s(), 1e-15);
  EXPECT_GT(engine.interface_latency_s(), latency.raw_s);
}

TEST(HwPolicyTest, UpdateActuallyLearns) {
  rl::FixedAgentConfig agent_config;
  agent_config.learning.epsilon_start = 0.0;
  agent_config.learning.epsilon_end = 0.0;
  HwPolicyConfig config;
  config.agent = agent_config;
  HwPolicyEngine engine(config, 4, 2);
  PolicyLatency latency;
  // Invoke on state 0 repeatedly with a strongly negative reward for the
  // previous (state 0, chosen action) transition: Q must move.
  engine.invoke(0, 0.0, latency);
  for (int i = 0; i < 20; ++i) engine.invoke(0, -2.0, latency);
  const auto& agent = engine.agent();
  double min_q = 0.0;
  for (std::size_t a = 0; a < 2; ++a) {
    min_q = std::min(min_q, agent.q_value(0, a));
  }
  EXPECT_LT(min_q, -0.5);
}

TEST(HwPolicyTest, FasterClockLowersRawLatencyOnly) {
  HwPolicyConfig slow;
  slow.fpga_clock_hz = 50e6;
  HwPolicyConfig fast;
  fast.fpga_clock_hz = 200e6;
  HwPolicyEngine slow_engine(slow, 64, 9);
  HwPolicyEngine fast_engine(fast, 64, 9);
  PolicyLatency slow_lat;
  PolicyLatency fast_lat;
  slow_engine.invoke(0, 0.0, slow_lat);
  fast_engine.invoke(0, 0.0, fast_lat);
  EXPECT_GT(slow_lat.raw_s, fast_lat.raw_s);
  EXPECT_DOUBLE_EQ(slow_engine.interface_latency_s(),
                   fast_engine.interface_latency_s());
}

}  // namespace
}  // namespace pmrl::hw
