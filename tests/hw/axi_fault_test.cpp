// The AXI degradation path: bounded retries, every attempt's latency
// charged, previous-action hold on exhausted budgets, deterministic fault
// streams.

#include <gtest/gtest.h>

#include "hw/axi.hpp"
#include "hw/hw_policy.hpp"
#include "hw/latency.hpp"

namespace pmrl::hw {
namespace {

TEST(AxiFaultTest, CleanAttemptMatchesFaultFreeLatency) {
  AxiLiteModel axi;
  AxiFaultParams faults;  // rates zero: first attempt always succeeds
  Rng rng(1);
  const auto result = axi.faulty_invocation(3, 1, faults, rng);
  EXPECT_TRUE(result.success);
  EXPECT_EQ(result.retries, 0u);
  EXPECT_EQ(result.timeouts, 0u);
  EXPECT_DOUBLE_EQ(result.latency_s, axi.invocation_latency_s(3, 1));
}

TEST(AxiFaultTest, ErrorResponsesChargeEveryAttempt) {
  AxiLiteModel axi;
  AxiFaultParams faults;
  faults.error_rate = 1.0;
  faults.max_attempts = 3;
  Rng rng(1);
  const auto result = axi.faulty_invocation(3, 1, faults, rng);
  EXPECT_FALSE(result.success);
  EXPECT_EQ(result.retries, 2u);
  EXPECT_EQ(result.timeouts, 0u);
  EXPECT_DOUBLE_EQ(result.latency_s, 3.0 * axi.invocation_latency_s(3, 1));
}

TEST(AxiFaultTest, TimeoutsChargeTheFullTimeoutBudget) {
  AxiLiteModel axi;
  AxiFaultParams faults;
  faults.timeout_rate = 1.0;
  faults.timeout_s = 2e-6;
  faults.max_attempts = 4;
  Rng rng(1);
  const auto result = axi.faulty_invocation(3, 1, faults, rng);
  EXPECT_FALSE(result.success);
  EXPECT_EQ(result.retries, 3u);
  EXPECT_EQ(result.timeouts, 4u);
  EXPECT_DOUBLE_EQ(result.latency_s,
                   4.0 * (axi.invocation_latency_s(3, 1) + 2e-6));
}

TEST(AxiFaultTest, LatencyIsBoundedUnderWorstCaseFaults) {
  AxiLiteModel axi;
  AxiFaultParams faults;
  faults.error_rate = 0.5;
  faults.timeout_rate = 0.5;
  faults.timeout_s = 5e-6;
  faults.max_attempts = 5;
  const double bound =
      faults.max_attempts *
      (axi.invocation_latency_s(3, 1) + faults.timeout_s);
  Rng rng(42);
  for (int i = 0; i < 5000; ++i) {
    const auto result = axi.faulty_invocation(3, 1, faults, rng);
    ASSERT_LE(result.latency_s, bound + 1e-15);
    ASSERT_GT(result.latency_s, 0.0);
  }
}

TEST(AxiFaultTest, EngineHoldsPreviousActionOnInterfaceFailure) {
  HwPolicyEngine engine(HwPolicyConfig{}, 64, 3);
  PolicyLatency latency;
  const std::size_t first = engine.invoke(7, -0.5, latency);
  EXPECT_TRUE(latency.interface_ok);

  AxiFaultParams faults;
  faults.error_rate = 1.0;
  engine.set_interface_faults(faults, 9);
  const std::size_t held = engine.invoke(12, -0.5, latency);
  EXPECT_FALSE(latency.interface_ok);
  EXPECT_EQ(held, first);
  EXPECT_EQ(latency.datapath_cycles, 0u);
  EXPECT_EQ(latency.interface_retries, faults.max_attempts - 1);
  EXPECT_GT(latency.end_to_end_s, 0.0);
  EXPECT_EQ(engine.interface_failures(), 1u);
}

TEST(AxiFaultTest, RetryLatencyIsChargedIntoEndToEnd) {
  HwPolicyEngine clean(HwPolicyConfig{}, 64, 3);
  HwPolicyEngine faulty(HwPolicyConfig{}, 64, 3);
  AxiFaultParams faults;
  faults.error_rate = 0.4;
  faults.timeout_rate = 0.2;
  faulty.set_interface_faults(faults, 11);

  const auto stream = synthetic_stream(64, 5000, 2);
  double clean_s = 0.0;
  double faulty_s = 0.0;
  PolicyLatency latency;
  for (const auto& record : stream) {
    clean.invoke(record.state, record.reward, latency);
    clean_s += latency.end_to_end_s;
    faulty.invoke(record.state, record.reward, latency);
    faulty_s += latency.end_to_end_s;
  }
  // Retries and timeouts must show up as extra CPU-observed latency.
  EXPECT_GT(faulty_s, clean_s);
}

TEST(AxiFaultTest, FaultStreamIsDeterministicUnderASeed) {
  const auto stream = synthetic_stream(64, 2000, 3);
  auto run = [&stream]() {
    HwPolicyEngine engine(HwPolicyConfig{}, 64, 3);
    AxiFaultParams faults;
    faults.error_rate = 0.3;
    faults.timeout_rate = 0.3;
    faults.max_attempts = 2;
    engine.set_interface_faults(faults, 1234);
    double total_s = 0.0;
    std::size_t retries = 0;
    PolicyLatency latency;
    for (const auto& record : stream) {
      engine.invoke(record.state, record.reward, latency);
      total_s += latency.end_to_end_s;
      retries += latency.interface_retries;
    }
    return std::tuple(total_s, retries, engine.interface_failures());
  };
  EXPECT_EQ(run(), run());
}

}  // namespace
}  // namespace pmrl::hw
