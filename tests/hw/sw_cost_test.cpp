#include "hw/sw_cost.hpp"

#include <gtest/gtest.h>

namespace pmrl::hw {
namespace {

TEST(SwCostTest, RejectsBadConfig) {
  SwCostParams params;
  params.cpu_clock_hz = 0.0;
  EXPECT_THROW(SwPolicyCostModel(params, 9), std::invalid_argument);
  EXPECT_THROW(SwPolicyCostModel(SwCostParams{}, 0), std::invalid_argument);
}

TEST(SwCostTest, MeanLatencyComposition) {
  SwCostParams params;
  params.cpu_clock_hz = 2e9;
  params.invoke_overhead_s = 2e-6;
  params.counter_read_s = 400e-9;
  params.counters_read = 8;
  params.featurize_cycles = 200;
  params.line_fill_s = 150e-9;
  params.q_line_fills = 6;
  params.per_action_cycles = 8;
  params.update_cycles = 200;
  const SwPolicyCostModel model(params, 9);
  const double expected = 2e-6 + 8 * 400e-9 + 200 / 2e9 + 6 * 150e-9 +
                          9 * 8 / 2e9 + 200 / 2e9;
  EXPECT_NEAR(model.mean_latency_s(), expected, 1e-15);
}

TEST(SwCostTest, DefaultLatencyIsMicroseconds) {
  const SwPolicyCostModel model(SwCostParams{}, 9);
  // The calibrated kernel-governor path lands in the single-digit
  // microseconds (the regime the paper's software policy measures in).
  EXPECT_GT(model.mean_latency_s(), 3e-6);
  EXPECT_LT(model.mean_latency_s(), 15e-6);
}

TEST(SwCostTest, MoreActionsCostMore) {
  const SwPolicyCostModel small(SwCostParams{}, 3);
  const SwPolicyCostModel large(SwCostParams{}, 81);
  EXPECT_GT(large.mean_latency_s(), small.mean_latency_s());
}

TEST(SwCostTest, JitterHasUnitMeanMultiplier) {
  SwCostParams params;
  params.jitter_sigma = 0.2;
  const SwPolicyCostModel model(params, 9);
  Rng rng(7);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += model.sample_latency_s(rng);
  EXPECT_NEAR(sum / n, model.mean_latency_s(),
              model.mean_latency_s() * 0.01);
}

TEST(SwCostTest, ZeroJitterIsDeterministic) {
  SwCostParams params;
  params.jitter_sigma = 0.0;
  const SwPolicyCostModel model(params, 9);
  Rng rng(7);
  EXPECT_DOUBLE_EQ(model.sample_latency_s(rng), model.mean_latency_s());
  EXPECT_DOUBLE_EQ(model.sample_latency_s(rng), model.mean_latency_s());
}

TEST(SwCostTest, SamplesAlwaysPositive) {
  const SwPolicyCostModel model(SwCostParams{}, 9);
  Rng rng(11);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_GT(model.sample_latency_s(rng), 0.0);
  }
}

}  // namespace
}  // namespace pmrl::hw
