#include "governors/conservative.hpp"

#include <gtest/gtest.h>

#include "../helpers/observation.hpp"

namespace pmrl::governors {
namespace {

TEST(ConservativeTest, StepsUpAboveThreshold) {
  ConservativeGovernor governor;
  const auto obs = test::single_cluster(0.9, 5);
  OppRequest request(1);
  governor.decide(obs, request);
  EXPECT_EQ(request[0], 6u);
}

TEST(ConservativeTest, StepsDownBelowThreshold) {
  ConservativeGovernor governor;
  const auto obs = test::single_cluster(0.1, 5);
  OppRequest request(1);
  governor.decide(obs, request);
  EXPECT_EQ(request[0], 4u);
}

TEST(ConservativeTest, HoldsInDeadband) {
  ConservativeGovernor governor;
  for (double load : {0.25, 0.5, 0.75}) {
    const auto obs = test::single_cluster(load, 7);
    OppRequest request(1);
    governor.decide(obs, request);
    EXPECT_EQ(request[0], 7u) << load;
  }
}

TEST(ConservativeTest, ClampsAtTableEnds) {
  ConservativeGovernor governor;
  OppRequest request(1);
  governor.decide(test::single_cluster(1.0, 18), request);
  EXPECT_EQ(request[0], 18u);
  governor.decide(test::single_cluster(0.0, 0), request);
  EXPECT_EQ(request[0], 0u);
}

TEST(ConservativeTest, CustomStepSize) {
  ConservativeGovernor governor(ConservativeParams{0.80, 0.20, 3});
  OppRequest request(1);
  governor.decide(test::single_cluster(0.9, 5), request);
  EXPECT_EQ(request[0], 8u);
  governor.decide(test::single_cluster(0.1, 5), request);
  EXPECT_EQ(request[0], 2u);
  // Step larger than remaining room clamps to 0.
  governor.decide(test::single_cluster(0.1, 2), request);
  EXPECT_EQ(request[0], 0u);
}

TEST(ConservativeTest, GradualRampToMax) {
  // Sustained overload walks one step per decision: 18 decisions from 0.
  ConservativeGovernor governor;
  std::size_t opp = 0;
  for (int i = 0; i < 18; ++i) {
    OppRequest request(1);
    governor.decide(test::single_cluster(1.0, opp), request);
    EXPECT_EQ(request[0], opp + 1);
    opp = request[0];
  }
  EXPECT_EQ(opp, 18u);
}

TEST(ConservativeTest, ThresholdBoundariesInclusive) {
  ConservativeGovernor governor(ConservativeParams{0.80, 0.20, 1});
  OppRequest request(1);
  governor.decide(test::single_cluster(0.80, 5), request);
  EXPECT_EQ(request[0], 6u);  // >= up_threshold steps up
  governor.decide(test::single_cluster(0.20, 5), request);
  EXPECT_EQ(request[0], 4u);  // <= down_threshold steps down
}

}  // namespace
}  // namespace pmrl::governors
