#include "governors/registry.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "rl/rl_governor.hpp"

namespace pmrl::governors {
namespace {

TEST(RegistryTest, BaselineNamesInPaperOrder) {
  const auto names = baseline_governor_names();
  const std::vector<std::string> expected = {
      "performance", "powersave",    "userspace",
      "ondemand",    "conservative", "interactive"};
  EXPECT_EQ(names, expected);
}

TEST(RegistryTest, AllBaselinesConstructible) {
  for (const auto& name : baseline_governor_names()) {
    ASSERT_TRUE(has_governor(name)) << name;
    const auto governor = make_governor(name);
    ASSERT_NE(governor, nullptr);
    EXPECT_EQ(governor->name(), name);
  }
}

TEST(RegistryTest, UnknownNameThrows) {
  EXPECT_FALSE(has_governor("does-not-exist"));
  EXPECT_THROW(make_governor("does-not-exist"), std::invalid_argument);
}

TEST(RegistryTest, FactoriesReturnFreshInstances) {
  const auto a = make_governor("ondemand");
  const auto b = make_governor("ondemand");
  EXPECT_NE(a.get(), b.get());
}

TEST(RegistryTest, CustomRegistrationAndDuplicateRejection) {
  if (!has_governor("test-custom")) {
    register_governor("test-custom", [] {
      return make_governor("performance");
    });
  }
  EXPECT_TRUE(has_governor("test-custom"));
  EXPECT_THROW(register_governor("test-custom",
                                 [] { return make_governor("powersave"); }),
               std::invalid_argument);
}

TEST(RegistryTest, RlGovernorRegistersOnce) {
  rl::register_rl_governor();
  rl::register_rl_governor();  // idempotent
  ASSERT_TRUE(has_governor("rl"));
  const auto governor = make_governor("rl");
  EXPECT_EQ(governor->name(), "rl");
}

TEST(RegistryTest, RegisteredNamesSortedAndComplete) {
  const auto names = registered_governor_names();
  EXPECT_TRUE(std::is_sorted(names.begin(), names.end()));
  for (const auto& baseline : baseline_governor_names()) {
    EXPECT_NE(std::find(names.begin(), names.end(), baseline), names.end());
  }
}

}  // namespace
}  // namespace pmrl::governors
