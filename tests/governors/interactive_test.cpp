#include "governors/interactive.hpp"

#include <gtest/gtest.h>

#include "../helpers/observation.hpp"

namespace pmrl::governors {
namespace {

governors::PolicyObservation at_time(double util, std::size_t opp,
                                     double time_s) {
  auto obs = test::single_cluster(util, opp);
  obs.soc.time_s = time_s;
  return obs;
}

TEST(InteractiveTest, SpikeJumpsToHispeed) {
  InteractiveGovernor governor;
  governor.reset(at_time(0.0, 0, 0.0));
  OppRequest request(1);
  governor.decide(at_time(0.9, 2, 0.0), request);
  // hispeed = ceil(0.8 * 18) = 15.
  EXPECT_EQ(request[0], 15u);
}

TEST(InteractiveTest, SustainedSpikeAboveHispeedGoesToMax) {
  InteractiveGovernor governor;
  governor.reset(at_time(0.0, 0, 0.0));
  OppRequest request(1);
  governor.decide(at_time(0.95, 16, 0.0), request);
  EXPECT_EQ(request[0], 18u);
}

TEST(InteractiveTest, ProportionalBelowSpike) {
  InteractiveGovernor governor;
  governor.reset(at_time(0.0, 0, 0.0));
  OppRequest request(1);
  // 50% load at opp 9 (f ~= 1.1 GHz): needed = 1.1e9 * 0.5/0.9 = 0.611 GHz
  // -> fraction 0.306 -> ceil(5.5) = 6.
  governor.decide(at_time(0.5, 9, 0.0), request);
  EXPECT_EQ(request[0], 6u);
}

TEST(InteractiveTest, HoldsRaisedFloorForMinSampleTime) {
  InteractiveGovernor governor;
  governor.reset(at_time(0.0, 0, 0.0));
  OppRequest request(1);
  // Spike raises to 15 and arms the floor.
  governor.decide(at_time(0.9, 2, 0.0), request);
  EXPECT_EQ(request[0], 15u);
  // 40 ms later (within the 80 ms hold) load drops: floor holds.
  governor.decide(at_time(0.05, 15, 0.040), request);
  EXPECT_EQ(request[0], 15u);
  // After the hold expires, the proportional target applies.
  governor.decide(at_time(0.05, 15, 0.200), request);
  EXPECT_LT(request[0], 15u);
}

TEST(InteractiveTest, FloorDoesNotPreventRaising) {
  InteractiveGovernor governor;
  governor.reset(at_time(0.0, 0, 0.0));
  OppRequest request(1);
  governor.decide(at_time(0.9, 2, 0.0), request);   // floor 15
  governor.decide(at_time(0.99, 15, 0.01), request);  // further spike
  EXPECT_EQ(request[0], 18u);
}

TEST(InteractiveTest, IdleEventuallyReachesBottom) {
  InteractiveGovernor governor;
  governor.reset(at_time(0.0, 0, 0.0));
  OppRequest request(1);
  governor.decide(at_time(0.0, 10, 10.0), request);
  EXPECT_EQ(request[0], 0u);
}

TEST(InteractiveTest, ResetClearsFloors) {
  InteractiveGovernor governor;
  governor.reset(at_time(0.0, 0, 0.0));
  OppRequest request(1);
  governor.decide(at_time(0.9, 2, 0.0), request);  // arm floor
  governor.reset(at_time(0.0, 0, 0.0));
  governor.decide(at_time(0.05, 15, 0.010), request);
  EXPECT_LT(request[0], 15u);  // floor gone after reset
}

TEST(InteractiveTest, AdaptsWhenClusterCountChanges) {
  // decide() on an observation with more clusters than reset() saw must
  // not crash (defensive re-init path).
  InteractiveGovernor governor;
  governor.reset(at_time(0.0, 0, 0.0));
  const auto obs = test::make_observation(
      {test::ClusterSpec{0, 13, 1.4e9, 0.5},
       test::ClusterSpec{0, 19, 2.0e9, 0.5}});
  OppRequest request(2);
  EXPECT_NO_THROW(governor.decide(obs, request));
}

}  // namespace
}  // namespace pmrl::governors
