#include "governors/static_governors.hpp"

#include <gtest/gtest.h>

#include "../helpers/observation.hpp"

namespace pmrl::governors {
namespace {

using test::ClusterSpec;
using test::make_observation;

TEST(PerformanceGovernorTest, AlwaysRequestsTop) {
  PerformanceGovernor governor;
  const auto obs = make_observation(
      {ClusterSpec{3, 13, 1.4e9, 0.0}, ClusterSpec{5, 19, 2.0e9, 0.9}});
  OppRequest request(2);
  governor.decide(obs, request);
  EXPECT_EQ(request[0], 12u);
  EXPECT_EQ(request[1], 18u);
}

TEST(PowersaveGovernorTest, AlwaysRequestsBottom) {
  PowersaveGovernor governor;
  const auto obs = make_observation(
      {ClusterSpec{3, 13, 1.4e9, 1.0}, ClusterSpec{18, 19, 2.0e9, 1.0}});
  OppRequest request(2);
  governor.decide(obs, request);
  EXPECT_EQ(request[0], 0u);
  EXPECT_EQ(request[1], 0u);
}

TEST(UserspaceGovernorTest, PinsToFraction) {
  UserspaceGovernor half(0.5);
  const auto obs = make_observation(
      {ClusterSpec{0, 13, 1.4e9, 0.5}, ClusterSpec{0, 19, 2.0e9, 0.5}});
  OppRequest request(2);
  half.decide(obs, request);
  EXPECT_EQ(request[0], 6u);  // round(0.5 * 12)
  EXPECT_EQ(request[1], 9u);  // round(0.5 * 18)
}

TEST(UserspaceGovernorTest, ExtremesMapToEnds) {
  UserspaceGovernor bottom(0.0);
  UserspaceGovernor top(1.0);
  const auto obs = make_observation({ClusterSpec{5, 19, 2.0e9, 0.5}});
  OppRequest request(1);
  bottom.decide(obs, request);
  EXPECT_EQ(request[0], 0u);
  top.decide(obs, request);
  EXPECT_EQ(request[0], 18u);
}

TEST(UserspaceGovernorTest, RejectsOutOfRangeFraction) {
  EXPECT_THROW(UserspaceGovernor(-0.1), std::invalid_argument);
  EXPECT_THROW(UserspaceGovernor(1.1), std::invalid_argument);
}

TEST(StaticGovernorsTest, UtilizationIgnored) {
  // These governors must not react to load: sweep util and compare.
  PerformanceGovernor performance;
  PowersaveGovernor powersave;
  UserspaceGovernor userspace(0.3);
  for (double util : {0.0, 0.5, 1.0}) {
    const auto obs = test::single_cluster(util, 9);
    OppRequest request(1);
    performance.decide(obs, request);
    EXPECT_EQ(request[0], 18u);
    powersave.decide(obs, request);
    EXPECT_EQ(request[0], 0u);
    userspace.decide(obs, request);
    EXPECT_EQ(request[0], 5u);
  }
}

TEST(StaticGovernorsTest, Names) {
  EXPECT_EQ(PerformanceGovernor().name(), "performance");
  EXPECT_EQ(PowersaveGovernor().name(), "powersave");
  EXPECT_EQ(UserspaceGovernor().name(), "userspace");
}

}  // namespace
}  // namespace pmrl::governors
