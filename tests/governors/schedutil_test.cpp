#include "governors/schedutil.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "governors/registry.hpp"

#include "../helpers/observation.hpp"

namespace pmrl::governors {
namespace {

governors::PolicyObservation at_time(double util, std::size_t opp,
                                     double time_s) {
  auto obs = test::single_cluster(util, opp);
  obs.soc.time_s = time_s;
  return obs;
}

TEST(SchedutilTest, IdleDropsToBottom) {
  SchedutilGovernor governor;
  governor.reset(at_time(0.0, 12, 0.0));
  OppRequest request(1);
  governor.decide(at_time(0.0, 12, 0.0), request);
  EXPECT_EQ(request[0], 0u);
}

TEST(SchedutilTest, SaturatedGoesToMax) {
  SchedutilGovernor governor;
  governor.reset(at_time(1.0, 18, 0.0));
  OppRequest request(1);
  governor.decide(at_time(1.0, 18, 0.0), request);
  EXPECT_EQ(request[0], 18u);
}

TEST(SchedutilTest, HeadroomFormula) {
  SchedutilGovernor governor;
  governor.reset(at_time(0.0, 0, 0.0));
  OppRequest request(1);
  // At opp 9 (f ~= 1.145 GHz of 2 GHz max in the helper's table): util 0.5
  // -> util_inv ~0.286 -> target = 1.25*0.286*fmax -> fraction 0.358 ->
  // ceil(6.44) = 7.
  governor.decide(at_time(0.5, 9, 0.0), request);
  EXPECT_EQ(request[0], 7u);
}

TEST(SchedutilTest, FrequencyInvariantAcrossOpps) {
  // Same absolute demand observed at different current frequencies must
  // give the same target (the signature property of schedutil).
  SchedutilGovernor governor;
  governor.reset(at_time(0.0, 0, 0.0));
  OppRequest a(1);
  OppRequest b(1);
  // Demand = 0.4 * f(9). Observed at opp 9: util 0.4. At opp 18
  // (f = 2 GHz): util = 0.4 * f(9)/f(18).
  auto obs9 = at_time(0.4, 9, 0.0);
  const double f9 = obs9.soc.clusters[0].freq_hz;
  auto obs18 = at_time(0.4 * f9 / 2.0e9, 18, 0.0);
  governor.decide(obs9, a);
  governor.decide(obs18, b);
  EXPECT_EQ(a[0], b[0]);
}

TEST(SchedutilTest, RateLimitHoldsFrequency) {
  SchedutilParams params;
  params.rate_limit_s = 0.100;
  SchedutilGovernor governor(params);
  governor.reset(at_time(0.0, 0, 0.0));
  OppRequest request(1);
  // First change allowed: drop from max to the floor at t = 0.
  governor.decide(at_time(0.0, 18, 0.0), request);
  EXPECT_EQ(request[0], 0u);
  // 50 ms later demand spikes: the rate limit forces a hold.
  governor.decide(at_time(1.0, 0, 0.050), request);
  EXPECT_EQ(request[0], 0u);
  // 150 ms later the change is allowed.
  governor.decide(at_time(1.0, 0, 0.150), request);
  EXPECT_GT(request[0], 0u);
}

TEST(SchedutilTest, RegisteredInRegistry) {
  // schedutil is an extra (post-paper) baseline: registered but not in the
  // six-governor comparison set.
  EXPECT_TRUE(has_governor("schedutil"));
  const auto six = baseline_governor_names();
  EXPECT_EQ(std::count(six.begin(), six.end(), "schedutil"), 0);
}

}  // namespace
}  // namespace pmrl::governors
