#include "governors/ondemand.hpp"

#include <gtest/gtest.h>

#include "../helpers/observation.hpp"

namespace pmrl::governors {
namespace {

TEST(OndemandTest, JumpsToMaxAboveThreshold) {
  OndemandGovernor governor;
  const auto obs = test::single_cluster(/*util=*/0.85, /*opp=*/3);
  OppRequest request(1);
  governor.decide(obs, request);
  EXPECT_EQ(request[0], 18u);
}

TEST(OndemandTest, ExactThresholdJumps) {
  OndemandGovernor governor(OndemandParams{0.80, 0.0});
  const auto obs = test::single_cluster(0.80, 3);
  OppRequest request(1);
  governor.decide(obs, request);
  EXPECT_EQ(request[0], 18u);
}

TEST(OndemandTest, ScalesProportionallyBelowThreshold) {
  OndemandGovernor governor;
  // At opp 9 (mid table) with 40% load: needed = f(9) * 0.4 / 0.8.
  const auto obs = test::single_cluster(0.40, 9);
  OppRequest request(1);
  governor.decide(obs, request);
  // f(9) ~= 1.1 GHz -> needed ~0.55 GHz -> fraction 0.275 -> ceil(4.95)=5.
  EXPECT_EQ(request[0], 5u);
}

TEST(OndemandTest, IdleDropsToBottom) {
  OndemandGovernor governor;
  const auto obs = test::single_cluster(0.0, 12);
  OppRequest request(1);
  governor.decide(obs, request);
  EXPECT_EQ(request[0], 0u);
}

TEST(OndemandTest, RequestedOppCoversDemand) {
  // Property: the chosen OPP always provides at least load*f_cur capacity
  // (at up_threshold occupancy) for any sub-threshold load.
  OndemandGovernor governor;
  for (std::size_t opp = 0; opp < 19; ++opp) {
    for (double load = 0.05; load < 0.8; load += 0.1) {
      const auto obs = test::single_cluster(load, opp);
      OppRequest request(1);
      governor.decide(obs, request);
      const double f_cur = obs.soc.clusters[0].freq_hz;
      const double needed = f_cur * load / governor.params().up_threshold;
      const double granted =
          obs.soc.clusters[0].max_freq_hz *
          static_cast<double>(request[0]) / 18.0;
      // Index-linear model is conservative: granted >= needed - small slack
      // from the nonzero table base frequency.
      EXPECT_GE(granted + 0.1 * obs.soc.clusters[0].max_freq_hz, needed)
          << "opp=" << opp << " load=" << load;
    }
  }
}

TEST(OndemandTest, PowersaveBiasLowersChoice) {
  OndemandGovernor plain(OndemandParams{0.80, 0.0});
  OndemandGovernor biased(OndemandParams{0.80, 0.4});
  const auto obs = test::single_cluster(0.5, 12);
  OppRequest a(1);
  OppRequest b(1);
  plain.decide(obs, a);
  biased.decide(obs, b);
  EXPECT_LT(b[0], a[0]);
}

TEST(OndemandTest, PerClusterIndependence) {
  OndemandGovernor governor;
  const auto obs = test::make_observation(
      {test::ClusterSpec{5, 13, 1.4e9, 0.95},
       test::ClusterSpec{10, 19, 2.0e9, 0.05}});
  OppRequest request(2);
  governor.decide(obs, request);
  EXPECT_EQ(request[0], 12u);  // overloaded little -> top
  EXPECT_LE(request[1], 2u);   // idle big -> near bottom
}

}  // namespace
}  // namespace pmrl::governors
