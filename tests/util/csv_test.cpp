#include "util/csv.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace pmrl {
namespace {

TEST(CsvWriterTest, PlainRows) {
  std::ostringstream out;
  CsvWriter writer(out);
  writer.write_row({"a", "b", "c"});
  writer.write_row({"1", "2", "3"});
  EXPECT_EQ(out.str(), "a,b,c\n1,2,3\n");
  EXPECT_EQ(writer.rows_written(), 2u);
}

TEST(CsvWriterTest, HeaderEmittedOnce) {
  std::ostringstream out;
  CsvWriter writer(out, {"x", "y"});
  writer.write_row({"1", "2"});
  writer.write_row({"3", "4"});
  EXPECT_EQ(out.str(), "x,y\n1,2\n3,4\n");
}

TEST(CsvWriterTest, HeaderWidthEnforced) {
  std::ostringstream out;
  CsvWriter writer(out, {"x", "y"});
  EXPECT_THROW(writer.write_row({"only-one"}), std::invalid_argument);
}

TEST(CsvWriterTest, EscapingQuotesCommasNewlines) {
  EXPECT_EQ(CsvWriter::escape("plain"), "plain");
  EXPECT_EQ(CsvWriter::escape("a,b"), "\"a,b\"");
  EXPECT_EQ(CsvWriter::escape("say \"hi\""), "\"say \"\"hi\"\"\"");
  EXPECT_EQ(CsvWriter::escape("line\nbreak"), "\"line\nbreak\"");
}

TEST(CsvWriterTest, ValuesFormatting) {
  std::ostringstream out;
  CsvWriter writer(out);
  writer.write_row_values({1.5, -2.0, 0.333333333});
  EXPECT_EQ(out.str(), "1.5,-2,0.333333333\n");
}

TEST(CsvReaderTest, ParsesSimpleDocument) {
  const auto rows = CsvReader::parse_string("a,b\n1,2\n");
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0], (std::vector<std::string>{"a", "b"}));
  EXPECT_EQ(rows[1], (std::vector<std::string>{"1", "2"}));
}

TEST(CsvReaderTest, HandlesCrLf) {
  const auto rows = CsvReader::parse_string("a,b\r\n1,2\r\n");
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[1][1], "2");
}

TEST(CsvReaderTest, QuotedFieldsWithCommasAndQuotes) {
  const auto rows =
      CsvReader::parse_string("\"a,b\",\"say \"\"hi\"\"\"\nplain,x\n");
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0][0], "a,b");
  EXPECT_EQ(rows[0][1], "say \"hi\"");
}

TEST(CsvReaderTest, QuotedNewlineStaysInField) {
  const auto rows = CsvReader::parse_string("\"line\nbreak\",x\n");
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0][0], "line\nbreak");
}

TEST(CsvReaderTest, MissingTrailingNewline) {
  const auto rows = CsvReader::parse_string("a,b\n1,2");
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[1][1], "2");
}

TEST(CsvReaderTest, EmptyFieldsPreserved) {
  const auto rows = CsvReader::parse_string("a,,c\n,,\n");
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0][1], "");
  EXPECT_EQ(rows[1].size(), 3u);
}

TEST(CsvReaderTest, UnterminatedQuoteThrows) {
  EXPECT_THROW(CsvReader::parse_string("\"oops\n"), std::runtime_error);
}

TEST(CsvReaderTest, QuoteInsideUnquotedFieldThrows) {
  EXPECT_THROW(CsvReader::parse_string("ab\"c,d\n"), std::runtime_error);
}

TEST(CsvRoundTripTest, WriterOutputParsesBack) {
  std::ostringstream out;
  CsvWriter writer(out);
  const std::vector<std::string> original = {"a,b", "c\"d", "e\nf", "plain"};
  writer.write_row(original);
  const auto rows = CsvReader::parse_string(out.str());
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0], original);
}

}  // namespace
}  // namespace pmrl
