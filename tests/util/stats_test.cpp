#include "util/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace pmrl {
namespace {

TEST(RunningStatsTest, EmptyDefaults) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.min(), 0.0);
  EXPECT_EQ(s.max(), 0.0);
}

TEST(RunningStatsTest, KnownMoments) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 4.0);  // population variance
  EXPECT_DOUBLE_EQ(s.stddev(), 2.0);
  EXPECT_EQ(s.min(), 2.0);
  EXPECT_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStatsTest, SingleSampleVarianceZero) {
  RunningStats s;
  s.add(3.14);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.mean(), 3.14);
  EXPECT_EQ(s.min(), 3.14);
  EXPECT_EQ(s.max(), 3.14);
}

TEST(RunningStatsTest, MergeMatchesSequential) {
  RunningStats all;
  RunningStats a;
  RunningStats b;
  for (int i = 0; i < 50; ++i) {
    const double x = std::sin(i) * 10.0;
    all.add(x);
    (i % 2 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-12);
  EXPECT_EQ(a.min(), all.min());
  EXPECT_EQ(a.max(), all.max());
}

TEST(RunningStatsTest, MergeWithEmpty) {
  RunningStats a;
  a.add(1.0);
  a.add(2.0);
  RunningStats empty;
  a.merge(empty);
  EXPECT_EQ(a.count(), 2u);
  empty.merge(a);
  EXPECT_EQ(empty.count(), 2u);
  EXPECT_DOUBLE_EQ(empty.mean(), 1.5);
}

TEST(RunningStatsTest, ResetClears) {
  RunningStats s;
  s.add(5.0);
  s.reset();
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.sum(), 0.0);
}

TEST(SampleSetTest, QuantilesExact) {
  SampleSet s;
  for (double x : {5.0, 1.0, 3.0, 2.0, 4.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
  EXPECT_DOUBLE_EQ(s.median(), 3.0);
  EXPECT_DOUBLE_EQ(s.quantile(0.25), 2.0);
  EXPECT_DOUBLE_EQ(s.quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(s.quantile(1.0), 5.0);
}

TEST(SampleSetTest, QuantileInterpolates) {
  SampleSet s;
  s.add(0.0);
  s.add(10.0);
  EXPECT_DOUBLE_EQ(s.quantile(0.5), 5.0);
  EXPECT_DOUBLE_EQ(s.quantile(0.9), 9.0);
}

TEST(SampleSetTest, QuantileClampsArgument) {
  SampleSet s;
  s.add(1.0);
  s.add(2.0);
  EXPECT_DOUBLE_EQ(s.quantile(-1.0), 1.0);
  EXPECT_DOUBLE_EQ(s.quantile(2.0), 2.0);
}

TEST(SampleSetTest, AddAfterQuantileStaysCorrect) {
  SampleSet s;
  s.add(3.0);
  s.add(1.0);
  EXPECT_DOUBLE_EQ(s.median(), 2.0);
  s.add(100.0);  // must re-sort internally
  EXPECT_DOUBLE_EQ(s.median(), 3.0);
  EXPECT_DOUBLE_EQ(s.max(), 100.0);
}

TEST(SampleSetTest, MeanAndStddev) {
  SampleSet s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 2.0);
}

TEST(SampleSetTest, EmptyIsSafe) {
  SampleSet s;
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.quantile(0.5), 0.0);
  EXPECT_EQ(s.min(), 0.0);
}

TEST(HistogramTest, BinningAndClamping) {
  Histogram h(0.0, 10.0, 5);
  h.add(0.5);   // bin 0
  h.add(9.9);   // bin 4
  h.add(-3.0);  // clamps to bin 0
  h.add(42.0);  // clamps to bin 4
  h.add(5.0);   // bin 2 (exactly at the boundary -> upper bin)
  EXPECT_EQ(h.bin_count(0), 2u);
  EXPECT_EQ(h.bin_count(2), 1u);
  EXPECT_EQ(h.bin_count(4), 2u);
  EXPECT_EQ(h.total(), 5u);
}

TEST(HistogramTest, BinEdges) {
  Histogram h(0.0, 10.0, 5);
  EXPECT_DOUBLE_EQ(h.bin_low(0), 0.0);
  EXPECT_DOUBLE_EQ(h.bin_high(0), 2.0);
  EXPECT_DOUBLE_EQ(h.bin_low(4), 8.0);
  EXPECT_DOUBLE_EQ(h.bin_high(4), 10.0);
}

TEST(HistogramTest, RejectsBadConstruction) {
  EXPECT_THROW(Histogram(0.0, 1.0, 0), std::invalid_argument);
  EXPECT_THROW(Histogram(1.0, 1.0, 4), std::invalid_argument);
  EXPECT_THROW(Histogram(2.0, 1.0, 4), std::invalid_argument);
}

TEST(EwmaTest, FirstSampleTaken) {
  Ewma e(0.5);
  EXPECT_TRUE(e.empty());
  e.add(10.0);
  EXPECT_FALSE(e.empty());
  EXPECT_DOUBLE_EQ(e.value(), 10.0);
}

TEST(EwmaTest, SmoothingMath) {
  Ewma e(0.25);
  e.add(0.0);
  e.add(8.0);
  EXPECT_DOUBLE_EQ(e.value(), 2.0);
  e.add(2.0);
  EXPECT_DOUBLE_EQ(e.value(), 2.0);
}

TEST(EwmaTest, AlphaOneTracksInput) {
  Ewma e(1.0);
  e.add(3.0);
  e.add(7.0);
  EXPECT_DOUBLE_EQ(e.value(), 7.0);
}

TEST(EwmaTest, RejectsBadAlpha) {
  EXPECT_THROW(Ewma(0.0), std::invalid_argument);
  EXPECT_THROW(Ewma(1.5), std::invalid_argument);
  EXPECT_THROW(Ewma(-0.1), std::invalid_argument);
}

TEST(CorrelationTest, PerfectAndInverse) {
  std::vector<double> a = {1, 2, 3, 4, 5};
  std::vector<double> up = {2, 4, 6, 8, 10};
  std::vector<double> down = {5, 4, 3, 2, 1};
  EXPECT_NEAR(pearson_correlation(a, up), 1.0, 1e-12);
  EXPECT_NEAR(pearson_correlation(a, down), -1.0, 1e-12);
}

TEST(CorrelationTest, ConstantSeriesIsZero) {
  std::vector<double> a = {1, 2, 3};
  std::vector<double> flat = {4, 4, 4};
  EXPECT_EQ(pearson_correlation(a, flat), 0.0);
}

TEST(MeanHelpersTest, MeanAndGeomean) {
  EXPECT_DOUBLE_EQ(mean_of({1.0, 2.0, 3.0}), 2.0);
  EXPECT_DOUBLE_EQ(mean_of({}), 0.0);
  EXPECT_NEAR(geomean_of({1.0, 4.0, 16.0}), 4.0, 1e-12);
  EXPECT_EQ(geomean_of({-1.0, 0.0}), 0.0);  // non-positive entries skipped
}

}  // namespace
}  // namespace pmrl
