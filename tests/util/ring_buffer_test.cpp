#include "util/ring_buffer.hpp"

#include <gtest/gtest.h>

namespace pmrl {
namespace {

TEST(RingBufferTest, StartsEmpty) {
  RingBuffer<int> rb(4);
  EXPECT_TRUE(rb.empty());
  EXPECT_FALSE(rb.full());
  EXPECT_EQ(rb.size(), 0u);
  EXPECT_EQ(rb.capacity(), 4u);
}

TEST(RingBufferTest, RejectsZeroCapacity) {
  EXPECT_THROW(RingBuffer<int>(0), std::invalid_argument);
}

TEST(RingBufferTest, PushAndIndexOldestFirst) {
  RingBuffer<int> rb(4);
  rb.push(10);
  rb.push(20);
  rb.push(30);
  EXPECT_EQ(rb.size(), 3u);
  EXPECT_EQ(rb[0], 10);
  EXPECT_EQ(rb[1], 20);
  EXPECT_EQ(rb[2], 30);
  EXPECT_EQ(rb.front(), 10);
  EXPECT_EQ(rb.back(), 30);
}

TEST(RingBufferTest, OverwritesOldestWhenFull) {
  RingBuffer<int> rb(3);
  for (int i = 1; i <= 5; ++i) rb.push(i);
  EXPECT_TRUE(rb.full());
  EXPECT_EQ(rb.size(), 3u);
  EXPECT_EQ(rb[0], 3);
  EXPECT_EQ(rb[1], 4);
  EXPECT_EQ(rb[2], 5);
}

TEST(RingBufferTest, WrapsRepeatedly) {
  RingBuffer<int> rb(2);
  for (int i = 0; i < 100; ++i) rb.push(i);
  EXPECT_EQ(rb[0], 98);
  EXPECT_EQ(rb[1], 99);
}

TEST(RingBufferTest, OutOfRangeThrows) {
  RingBuffer<int> rb(3);
  rb.push(1);
  EXPECT_THROW(rb[1], std::out_of_range);
  EXPECT_THROW(rb[100], std::out_of_range);
}

TEST(RingBufferTest, ClearResets) {
  RingBuffer<int> rb(3);
  rb.push(1);
  rb.push(2);
  rb.clear();
  EXPECT_TRUE(rb.empty());
  rb.push(9);
  EXPECT_EQ(rb.front(), 9);
  EXPECT_EQ(rb.size(), 1u);
}

TEST(RingBufferTest, WorksWithNonTrivialTypes) {
  RingBuffer<std::string> rb(2);
  rb.push("alpha");
  rb.push("beta");
  rb.push("gamma");
  EXPECT_EQ(rb[0], "beta");
  EXPECT_EQ(rb[1], "gamma");
}

}  // namespace
}  // namespace pmrl
