#include "util/fixed_point.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/rng.hpp"

namespace pmrl {
namespace {

TEST(FixedFormatTest, BasicProperties) {
  const FixedFormat q610(16, 10);
  EXPECT_EQ(q610.total_bits(), 16u);
  EXPECT_EQ(q610.frac_bits(), 10u);
  EXPECT_EQ(q610.int_bits(), 5u);
  EXPECT_EQ(q610.raw_max(), 32767);
  EXPECT_EQ(q610.raw_min(), -32768);
  EXPECT_DOUBLE_EQ(q610.lsb(), 1.0 / 1024.0);
  EXPECT_NEAR(q610.value_max(), 31.999, 0.001);
  EXPECT_NEAR(q610.value_min(), -32.0, 1e-9);
}

TEST(FixedFormatTest, RejectsInvalidFormats) {
  EXPECT_THROW(FixedFormat(1, 0), std::invalid_argument);
  EXPECT_THROW(FixedFormat(16, 16), std::invalid_argument);
  EXPECT_THROW(FixedFormat(64, 10), std::invalid_argument);
}

TEST(FixedFormatTest, RoundTripExactValues) {
  const FixedFormat fmt(16, 8);
  for (double v : {0.0, 1.0, -1.0, 0.5, -0.25, 63.5, -64.0}) {
    EXPECT_DOUBLE_EQ(fmt.to_double(fmt.from_double(v)), v) << v;
  }
}

TEST(FixedFormatTest, QuantizationRoundsToNearest) {
  const FixedFormat fmt(16, 8);  // lsb = 1/256
  // 0.0015 is closer to 0/256 than 1/256? 0.0015*256 = 0.384 -> rounds to 0.
  EXPECT_EQ(fmt.from_double(0.0015), 0);
  // 0.002*256 = 0.512 -> rounds to 1.
  EXPECT_EQ(fmt.from_double(0.002), 1);
  // Negative: round half away from zero.
  EXPECT_EQ(fmt.from_double(-0.002), -1);
}

TEST(FixedFormatTest, SaturatesOnOverflow) {
  const FixedFormat fmt(8, 4);  // range [-8, 7.9375]
  EXPECT_EQ(fmt.from_double(100.0), fmt.raw_max());
  EXPECT_EQ(fmt.from_double(-100.0), fmt.raw_min());
  EXPECT_EQ(fmt.add(fmt.raw_max(), fmt.raw_max()), fmt.raw_max());
  EXPECT_EQ(fmt.sub(fmt.raw_min(), fmt.raw_max()), fmt.raw_min());
}

TEST(FixedFormatTest, MultiplicationMatchesDoubleWithinLsb) {
  const FixedFormat fmt(16, 10);
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    const double a = rng.uniform(-5.0, 5.0);
    const double b = rng.uniform(-5.0, 5.0);
    const std::int64_t ra = fmt.from_double(a);
    const std::int64_t rb = fmt.from_double(b);
    const double product = fmt.to_double(fmt.mul(ra, rb));
    // Error budget: quantization of both inputs plus the truncation.
    const double tolerance =
        (std::abs(a) + std::abs(b) + 2.0) * fmt.lsb();
    EXPECT_NEAR(product, a * b, tolerance) << a << " * " << b;
  }
}

TEST(FixedFormatTest, MultiplicationTruncatesTowardNegInfinity) {
  const FixedFormat fmt(16, 4);  // lsb 1/16
  // 0.5 * 0.125: raws 8 * 2 = 16 >> 4 = 1 -> 1/16 (exact result 1/16).
  EXPECT_EQ(fmt.mul(8, 2), 1);
  // 0.0625 * 0.0625 = 1/256 -> raw product 1 >> 4 = 0 (truncated).
  EXPECT_EQ(fmt.mul(1, 1), 0);
  // Negative truncation: -1/16 * 1/16 = -1/256 -> (-1) >> 4 = -1 (toward
  // negative infinity, as RTL arithmetic shift does).
  EXPECT_EQ(fmt.mul(-1, 1), -1);
}

TEST(FixedFormatTest, MulSaturatesExtremes) {
  const FixedFormat fmt(16, 10);
  const std::int64_t big = fmt.raw_max();
  EXPECT_EQ(fmt.mul(big, big), fmt.raw_max());
  EXPECT_EQ(fmt.mul(big, fmt.raw_min()), fmt.raw_min());
}

TEST(FixedFormatTest, WideFormat48Bits) {
  const FixedFormat fmt(48, 20);
  const double v = 12345.678901;
  EXPECT_NEAR(fmt.to_double(fmt.from_double(v)), v, fmt.lsb());
  // Product of two large values saturates instead of wrapping.
  const std::int64_t near_max = fmt.from_double(1e5);
  EXPECT_EQ(fmt.mul(near_max, near_max), fmt.raw_max());
}

TEST(FixedTest, WrapperArithmetic) {
  const FixedFormat fmt(16, 8);
  const Fixed a(fmt, 2.5);
  const Fixed b(fmt, 1.25);
  EXPECT_DOUBLE_EQ((a + b).value(), 3.75);
  EXPECT_DOUBLE_EQ((a - b).value(), 1.25);
  EXPECT_DOUBLE_EQ((a * b).value(), 3.125);
  EXPECT_TRUE(b < a);
  EXPECT_TRUE(a > b);
  EXPECT_TRUE(a == Fixed(fmt, 2.5));
}

TEST(FixedTest, FromRawSaturates) {
  const FixedFormat fmt(8, 4);
  const Fixed f = Fixed::from_raw(fmt, 1 << 20);
  EXPECT_EQ(f.raw(), fmt.raw_max());
}

// Property sweep: add/sub never leave the representable range for any
// format in the sweep.
class FixedFormatSweep : public ::testing::TestWithParam<unsigned> {};

TEST_P(FixedFormatSweep, ArithmeticStaysInRange) {
  const unsigned frac = GetParam();
  const FixedFormat fmt(16, frac);
  Rng rng(frac);
  for (int i = 0; i < 500; ++i) {
    const std::int64_t a = fmt.from_double(
        rng.uniform(fmt.value_min() * 2, fmt.value_max() * 2));
    const std::int64_t b = fmt.from_double(
        rng.uniform(fmt.value_min() * 2, fmt.value_max() * 2));
    for (const std::int64_t r : {fmt.add(a, b), fmt.sub(a, b),
                                 fmt.mul(a, b)}) {
      EXPECT_GE(r, fmt.raw_min());
      EXPECT_LE(r, fmt.raw_max());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(FracBits, FixedFormatSweep,
                         ::testing::Values(2u, 4u, 6u, 8u, 10u, 12u, 14u));

}  // namespace
}  // namespace pmrl
