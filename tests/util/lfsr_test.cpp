#include "util/lfsr.hpp"

#include <gtest/gtest.h>

#include <set>
#include <vector>

namespace pmrl {
namespace {

TEST(Lfsr16Test, ZeroSeedRemapped) {
  Lfsr16 lfsr(0);
  EXPECT_EQ(lfsr.state(), 0xACE1u);
}

TEST(Lfsr16Test, NeverEmitsZero) {
  Lfsr16 lfsr(0xACE1);
  for (int i = 0; i < 70000; ++i) EXPECT_NE(lfsr.next(), 0u);
}

TEST(Lfsr16Test, MaximalPeriod) {
  Lfsr16 lfsr(1);
  const std::uint16_t start = lfsr.state();
  std::size_t period = 0;
  do {
    lfsr.next();
    ++period;
  } while (lfsr.state() != start && period <= 70000);
  EXPECT_EQ(period, 65535u);
}

TEST(Lfsr16Test, DeterministicAcrossInstances) {
  Lfsr16 a(0x1234);
  Lfsr16 b(0x1234);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Lfsr16Test, NextModInRange) {
  Lfsr16 lfsr(0x42);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(lfsr.next_mod(9), 9u);
  }
  EXPECT_EQ(lfsr.next_mod(0), 0u);
  EXPECT_EQ(lfsr.next_mod(1), 0u);
}

TEST(Lfsr16Test, NextModCoversAllResidues) {
  Lfsr16 lfsr(0x77);
  std::set<std::uint32_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(lfsr.next_mod(9));
  EXPECT_EQ(seen.size(), 9u);
}

TEST(Lfsr16Test, BelowThresholdFrequency) {
  Lfsr16 lfsr(0xBEEF);
  // threshold/65536 probability; sweep the whole period for exactness.
  const std::uint32_t threshold = 6554;  // ~10%
  std::size_t hits = 0;
  for (int i = 0; i < 65535; ++i) hits += lfsr.below(threshold) ? 1 : 0;
  // Over the full period every value 1..65535 appears exactly once:
  // values below 6554 are 1..6553 -> 6553 hits.
  EXPECT_EQ(hits, 6553u);
}

TEST(Lfsr16Test, BelowZeroNeverTrue) {
  Lfsr16 lfsr(0xBEEF);
  for (int i = 0; i < 1000; ++i) EXPECT_FALSE(lfsr.below(0));
}

TEST(Lfsr16Test, Below65536AlwaysTrue) {
  Lfsr16 lfsr(0xBEEF);
  for (int i = 0; i < 1000; ++i) EXPECT_TRUE(lfsr.below(65536));
}

}  // namespace
}  // namespace pmrl
