#include "util/table.hpp"

#include <gtest/gtest.h>

namespace pmrl {
namespace {

TEST(TextTableTest, RendersAlignedColumns) {
  TextTable table({"name", "v"});
  table.add_row({"x", "1"});
  table.add_row({"longer", "22"});
  const std::string out = table.render();
  EXPECT_EQ(out,
            "| name   | v  |\n"
            "|--------|----|\n"
            "| x      | 1  |\n"
            "| longer | 22 |\n");
}

TEST(TextTableTest, HeaderWiderThanContent) {
  TextTable table({"wide-header"});
  table.add_row({"x"});
  const std::string out = table.render();
  EXPECT_NE(out.find("| wide-header |"), std::string::npos);
  EXPECT_NE(out.find("| x           |"), std::string::npos);
}

TEST(TextTableTest, RowWidthMismatchThrows) {
  TextTable table({"a", "b"});
  EXPECT_THROW(table.add_row({"only-one"}), std::invalid_argument);
  EXPECT_THROW(table.add_row({"1", "2", "3"}), std::invalid_argument);
}

TEST(TextTableTest, EmptyHeaderThrows) {
  EXPECT_THROW(TextTable({}), std::invalid_argument);
}

TEST(TextTableTest, NumFormatting) {
  EXPECT_EQ(TextTable::num(3.14159, 2), "3.14");
  EXPECT_EQ(TextTable::num(3.0, 0), "3");
  EXPECT_EQ(TextTable::num(-1.5, 1), "-1.5");
}

TEST(TextTableTest, PercentFormatting) {
  EXPECT_EQ(TextTable::percent(0.3166), "31.66%");
  EXPECT_EQ(TextTable::percent(1.0, 0), "100%");
  EXPECT_EQ(TextTable::percent(0.005, 1), "0.5%");
}

TEST(TextTableTest, RowsCount) {
  TextTable table({"a"});
  EXPECT_EQ(table.rows(), 0u);
  table.add_row({"1"});
  table.add_row({"2"});
  EXPECT_EQ(table.rows(), 2u);
}

}  // namespace
}  // namespace pmrl
