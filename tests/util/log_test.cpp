#include "util/log.hpp"

#include <gtest/gtest.h>

namespace pmrl {
namespace {

class LogTest : public ::testing::Test {
 protected:
  void TearDown() override { Log::set_level(LogLevel::Warn); }
};

TEST_F(LogTest, LevelNames) {
  EXPECT_STREQ(log_level_name(LogLevel::Trace), "TRACE");
  EXPECT_STREQ(log_level_name(LogLevel::Debug), "DEBUG");
  EXPECT_STREQ(log_level_name(LogLevel::Info), "INFO");
  EXPECT_STREQ(log_level_name(LogLevel::Warn), "WARN");
  EXPECT_STREQ(log_level_name(LogLevel::Error), "ERROR");
}

TEST_F(LogTest, ThresholdFiltering) {
  Log::set_level(LogLevel::Warn);
  EXPECT_FALSE(Log::enabled(LogLevel::Debug));
  EXPECT_FALSE(Log::enabled(LogLevel::Info));
  EXPECT_TRUE(Log::enabled(LogLevel::Warn));
  EXPECT_TRUE(Log::enabled(LogLevel::Error));
}

TEST_F(LogTest, OffDisablesEverything) {
  Log::set_level(LogLevel::Off);
  EXPECT_FALSE(Log::enabled(LogLevel::Error));
  EXPECT_FALSE(Log::enabled(LogLevel::Off));
}

TEST_F(LogTest, SetAndGetLevel) {
  Log::set_level(LogLevel::Debug);
  EXPECT_EQ(Log::level(), LogLevel::Debug);
  EXPECT_TRUE(Log::enabled(LogLevel::Debug));
}

TEST_F(LogTest, MacroDoesNotEvaluateWhenDisabled) {
  Log::set_level(LogLevel::Error);
  int evaluations = 0;
  auto expensive = [&] {
    ++evaluations;
    return 42;
  };
  PMRL_DEBUG("test") << expensive();
  EXPECT_EQ(evaluations, 0);
  PMRL_ERROR("test") << expensive();
  EXPECT_EQ(evaluations, 1);
}

}  // namespace
}  // namespace pmrl
