#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

namespace pmrl {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += a() == b() ? 1 : 0;
  EXPECT_LT(same, 3);
}

TEST(RngTest, NearbySeedsAreDecorrelated) {
  // SplitMix64 seeding: consecutive seeds must not give similar streams.
  Rng a(1000);
  Rng b(1001);
  std::vector<double> xs;
  std::vector<double> ys;
  for (int i = 0; i < 1000; ++i) {
    xs.push_back(a.uniform());
    ys.push_back(b.uniform());
  }
  double corr = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    corr += (xs[i] - 0.5) * (ys[i] - 0.5);
  }
  corr /= xs.size() * (1.0 / 12.0);  // normalize by uniform variance
  EXPECT_LT(std::abs(corr), 0.15);
}

TEST(RngTest, UniformInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, UniformRangeRespectsBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-3.0, 5.5);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 5.5);
  }
}

TEST(RngTest, UniformMeanIsHalf) {
  Rng rng(42);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(RngTest, UniformIntInclusiveBounds) {
  Rng rng(9);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.uniform_int(3, 7);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 7);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);  // all 5 values hit in 1000 draws
}

TEST(RngTest, UniformIntDegenerateRange) {
  Rng rng(9);
  EXPECT_EQ(rng.uniform_int(4, 4), 4);
  EXPECT_EQ(rng.uniform_int(5, 4), 5);  // inverted range returns lo
}

TEST(RngTest, NormalMoments) {
  Rng rng(11);
  const int n = 200000;
  double sum = 0.0;
  double sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sq / n, 1.0, 0.03);
}

TEST(RngTest, NormalScaled) {
  Rng rng(12);
  const int n = 100000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += rng.normal(10.0, 2.0);
  EXPECT_NEAR(sum / n, 10.0, 0.05);
}

TEST(RngTest, ExponentialMeanMatchesRate) {
  Rng rng(13);
  const int n = 100000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.exponential(4.0);
    EXPECT_GT(x, 0.0);
    sum += x;
  }
  EXPECT_NEAR(sum / n, 0.25, 0.01);
}

TEST(RngTest, BernoulliEdgesAndProbability) {
  Rng rng(14);
  EXPECT_FALSE(rng.bernoulli(0.0));
  EXPECT_TRUE(rng.bernoulli(1.0));
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += rng.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(RngTest, PoissonMeanSmallAndLarge) {
  Rng rng(15);
  const int n = 50000;
  double small_sum = 0.0;
  double large_sum = 0.0;
  for (int i = 0; i < n; ++i) {
    small_sum += static_cast<double>(rng.poisson(2.5));
    large_sum += static_cast<double>(rng.poisson(100.0));
  }
  EXPECT_NEAR(small_sum / n, 2.5, 0.05);
  EXPECT_NEAR(large_sum / n, 100.0, 0.5);
  EXPECT_EQ(rng.poisson(0.0), 0u);
}

TEST(RngTest, LognormalMean) {
  Rng rng(16);
  const int n = 200000;
  double sum = 0.0;
  const double mu = 1.0;
  const double sigma = 0.4;
  for (int i = 0; i < n; ++i) sum += rng.lognormal(mu, sigma);
  // E[X] = exp(mu + sigma^2/2)
  EXPECT_NEAR(sum / n, std::exp(mu + sigma * sigma / 2.0), 0.05);
}

TEST(RngTest, WeightedChoiceProportions) {
  Rng rng(17);
  std::vector<double> weights = {1.0, 3.0, 0.0, 6.0};
  std::vector<int> counts(4, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[rng.weighted_choice(weights)];
  EXPECT_NEAR(counts[0] / static_cast<double>(n), 0.1, 0.01);
  EXPECT_NEAR(counts[1] / static_cast<double>(n), 0.3, 0.01);
  EXPECT_EQ(counts[2], 0);
  EXPECT_NEAR(counts[3] / static_cast<double>(n), 0.6, 0.01);
}

TEST(RngTest, WeightedChoiceAllZeroFallsBackToUniform) {
  Rng rng(18);
  std::vector<double> weights = {0.0, 0.0, 0.0};
  std::set<std::size_t> seen;
  for (int i = 0; i < 200; ++i) seen.insert(rng.weighted_choice(weights));
  EXPECT_EQ(seen.size(), 3u);
}

TEST(RngTest, WeightedChoiceNegativeTreatedAsZero) {
  Rng rng(19);
  std::vector<double> weights = {-5.0, 1.0};
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(rng.weighted_choice(weights), 1u);
  }
}

TEST(RngTest, SplitProducesIndependentStream) {
  Rng parent(21);
  Rng child = parent.split();
  int same = 0;
  for (int i = 0; i < 100; ++i) same += parent() == child() ? 1 : 0;
  EXPECT_LT(same, 3);
}

}  // namespace
}  // namespace pmrl
