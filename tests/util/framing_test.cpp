// util/framing.hpp: the CRC-32 integrity framing shared by the policy
// checkpoint footer and the serve wire protocol. Round trips, incremental
// decode, and exhaustive single-bit corruption.

#include "util/framing.hpp"

#include <gtest/gtest.h>

#include <string>

#include "util/crc32.hpp"

namespace pmrl {
namespace {

// ---- text footer ----------------------------------------------------------

TEST(Framing, FooterLineRoundTrips) {
  const std::uint32_t digest = crc32("the payload above the footer");
  const std::string line = util::crc32_footer_line(digest);
  ASSERT_FALSE(line.empty());
  EXPECT_EQ(line.back(), '\n');
  std::uint32_t parsed = 0;
  ASSERT_TRUE(util::parse_crc32_footer_line(
      std::string_view(line).substr(0, line.size() - 1), parsed));
  EXPECT_EQ(parsed, digest);
}

TEST(Framing, FooterLineFormat) {
  EXPECT_EQ(util::crc32_footer_line(0xDEADBEEFu), "crc32,deadbeef\n");
  EXPECT_EQ(util::crc32_footer_line(0x00000001u), "crc32,00000001\n");
}

TEST(Framing, FooterParsesUppercaseHex) {
  std::uint32_t parsed = 0;
  ASSERT_TRUE(util::parse_crc32_footer_line("crc32,DEADBEEF", parsed));
  EXPECT_EQ(parsed, 0xDEADBEEFu);
}

TEST(Framing, FooterRejectsMalformed) {
  std::uint32_t parsed = 0;
  EXPECT_FALSE(util::parse_crc32_footer_line("", parsed));
  EXPECT_FALSE(util::parse_crc32_footer_line("crc32,deadbee", parsed));
  EXPECT_FALSE(util::parse_crc32_footer_line("crc32,deadbeef0", parsed));
  EXPECT_FALSE(util::parse_crc32_footer_line("crc33,deadbeef", parsed));
  EXPECT_FALSE(util::parse_crc32_footer_line("crc32;deadbeef", parsed));
  EXPECT_FALSE(util::parse_crc32_footer_line("crc32,deadbeeg", parsed));
  EXPECT_FALSE(util::parse_crc32_footer_line("crc32,dead beef", parsed));
}

// ---- binary frames --------------------------------------------------------

std::string one_frame(std::uint8_t type, std::uint16_t flags,
                      std::string_view payload) {
  std::string out;
  util::append_frame(out, type, flags, payload);
  return out;
}

TEST(Framing, FrameRoundTrips) {
  for (const std::string& payload :
       {std::string(), std::string("x"), std::string("hello frame"),
        std::string(1000, '\xAB')}) {
    const std::string bytes = one_frame(7, 0x1234, payload);
    EXPECT_EQ(bytes.size(), util::kFrameHeaderSize + payload.size());
    std::size_t offset = 0;
    util::Frame frame;
    ASSERT_EQ(util::decode_frame(bytes, offset, frame),
              util::FrameStatus::Ok);
    EXPECT_EQ(offset, bytes.size());
    EXPECT_EQ(frame.version, util::kFrameVersion);
    EXPECT_EQ(frame.type, 7);
    EXPECT_EQ(frame.flags, 0x1234);
    EXPECT_EQ(frame.payload, payload);
  }
}

TEST(Framing, BackToBackFramesDecodeInOrder) {
  std::string bytes;
  util::append_frame(bytes, 1, 0, "first");
  util::append_frame(bytes, 2, 0, "second");
  util::append_frame(bytes, 3, 0, "");
  std::size_t offset = 0;
  util::Frame frame;
  ASSERT_EQ(util::decode_frame(bytes, offset, frame), util::FrameStatus::Ok);
  EXPECT_EQ(frame.type, 1);
  EXPECT_EQ(frame.payload, "first");
  ASSERT_EQ(util::decode_frame(bytes, offset, frame), util::FrameStatus::Ok);
  EXPECT_EQ(frame.type, 2);
  EXPECT_EQ(frame.payload, "second");
  ASSERT_EQ(util::decode_frame(bytes, offset, frame), util::FrameStatus::Ok);
  EXPECT_EQ(frame.type, 3);
  EXPECT_TRUE(frame.payload.empty());
  EXPECT_EQ(util::decode_frame(bytes, offset, frame),
            util::FrameStatus::NeedMore);
}

TEST(Framing, EveryTruncationReportsNeedMore) {
  const std::string bytes = one_frame(5, 9, "truncate me anywhere");
  for (std::size_t len = 0; len < bytes.size(); ++len) {
    std::size_t offset = 0;
    util::Frame frame;
    EXPECT_EQ(util::decode_frame(std::string_view(bytes).substr(0, len),
                                 offset, frame),
              util::FrameStatus::NeedMore)
        << "prefix length " << len;
    EXPECT_EQ(offset, 0u);
  }
}

TEST(Framing, BadMagicDetected) {
  std::string bytes = one_frame(1, 0, "payload");
  bytes[0] = 'X';
  std::size_t offset = 0;
  util::Frame frame;
  EXPECT_EQ(util::decode_frame(bytes, offset, frame),
            util::FrameStatus::BadMagic);
}

TEST(Framing, BadVersionDetected) {
  std::string bytes = one_frame(1, 0, "payload");
  bytes[4] = static_cast<char>(util::kFrameVersion + 1);
  std::size_t offset = 0;
  util::Frame frame;
  EXPECT_EQ(util::decode_frame(bytes, offset, frame),
            util::FrameStatus::BadVersion);
}

TEST(Framing, OversizedLengthRejectedBeforeBuffering) {
  std::string bytes = one_frame(1, 0, "payload");
  // Announce a payload far beyond kMaxFramePayload.
  bytes[8] = '\xFF';
  bytes[9] = '\xFF';
  bytes[10] = '\xFF';
  bytes[11] = '\x7F';
  std::size_t offset = 0;
  util::Frame frame;
  EXPECT_EQ(util::decode_frame(bytes, offset, frame),
            util::FrameStatus::BadLength);
}

TEST(Framing, PayloadBitFlipFailsCrc) {
  std::string bytes = one_frame(1, 0, "sensitive payload");
  bytes[util::kFrameHeaderSize + 3] ^= 0x10;
  std::size_t offset = 0;
  util::Frame frame;
  EXPECT_EQ(util::decode_frame(bytes, offset, frame),
            util::FrameStatus::BadCrc);
}

// Exhaustive single-bit corruption: no flipped bit anywhere in the frame
// may yield a successfully decoded frame (CRC-32 detects all single-bit
// errors; header-field flips are caught by the magic/version/length checks
// first). Length-growing flips legitimately report NeedMore — completing
// them with filler must then fail the CRC.
TEST(Framing, AnySingleBitFlipNeverDecodesOk) {
  const std::string bytes = one_frame(3, 0x00AA, "fuzz target payload");
  for (std::size_t byte = 0; byte < bytes.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      std::string corrupt = bytes;
      corrupt[byte] = static_cast<char>(corrupt[byte] ^ (1 << bit));
      std::size_t offset = 0;
      util::Frame frame;
      auto status = util::decode_frame(corrupt, offset, frame);
      if (status == util::FrameStatus::NeedMore) {
        corrupt.append(util::kMaxFramePayload, '\0');
        offset = 0;
        status = util::decode_frame(corrupt, offset, frame);
      }
      EXPECT_NE(status, util::FrameStatus::Ok)
          << "flip at byte " << byte << " bit " << bit;
    }
  }
}

}  // namespace
}  // namespace pmrl
