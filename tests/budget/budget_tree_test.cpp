// Unit tests for the budget tree: spec validation, the cap schedule, the
// group mapping, and the shape of each apportionment policy's split. The
// randomized invariant battery lives in budget_property_test.cpp.

#include <gtest/gtest.h>

#include <numeric>
#include <stdexcept>
#include <vector>

#include "budget/apportion.hpp"
#include "budget/budget_tree.hpp"

namespace budget = pmrl::budget;

namespace {

budget::BudgetSpec base_spec(double cap_w) {
  budget::BudgetSpec spec;
  spec.global_cap_w = cap_w;
  spec.floor_w = 0.05;
  spec.groups = 4;
  spec.policy = "demand";
  spec.seed = 7;
  return spec;
}

double sum(const std::vector<double>& v) {
  return std::accumulate(v.begin(), v.end(), 0.0);
}

TEST(ApportionPolicy, FactoryKnowsTheRegisteredNames) {
  EXPECT_TRUE(budget::is_policy_name("uniform"));
  EXPECT_TRUE(budget::is_policy_name("demand"));
  EXPECT_TRUE(budget::is_policy_name("rl"));
  EXPECT_FALSE(budget::is_policy_name("bogus"));
  EXPECT_NE(budget::make_policy("uniform", 1), nullptr);
  EXPECT_THROW(budget::make_policy("bogus", 1), std::invalid_argument);
}

TEST(BudgetTree, RejectsInvalidSpecs) {
  EXPECT_THROW(budget::BudgetTree(base_spec(0.0), 8), std::invalid_argument);
  EXPECT_THROW(budget::BudgetTree(base_spec(10.0), 0), std::invalid_argument);
  auto bad_floor = base_spec(10.0);
  bad_floor.floor_w = -1.0;
  EXPECT_THROW(budget::BudgetTree(bad_floor, 8), std::invalid_argument);
  auto bad_groups = base_spec(10.0);
  bad_groups.groups = 0;
  EXPECT_THROW(budget::BudgetTree(bad_groups, 8), std::invalid_argument);
  auto bad_policy = base_spec(10.0);
  bad_policy.policy = "bogus";
  EXPECT_THROW(budget::BudgetTree(bad_policy, 8), std::invalid_argument);
  auto bad_step = base_spec(10.0);
  bad_step.schedule.push_back({-1.0, 5.0});
  EXPECT_THROW(budget::BudgetTree(bad_step, 8), std::invalid_argument);
}

TEST(BudgetTree, GroupMappingCoversAllDevicesContiguously) {
  auto spec = base_spec(10.0);
  spec.groups = 3;
  budget::BudgetTree tree(spec, 10);  // 3 does not divide 10
  EXPECT_EQ(tree.groups(), 3u);
  std::size_t covered = 0;
  for (std::size_t g = 0; g < tree.groups(); ++g) {
    EXPECT_EQ(tree.group_first(g), covered);
    EXPECT_GT(tree.group_last(g), tree.group_first(g));
    for (std::size_t d = tree.group_first(g); d < tree.group_last(g); ++d) {
      EXPECT_EQ(tree.group_of(d), g);
    }
    covered = tree.group_last(g);
  }
  EXPECT_EQ(covered, 10u);
}

TEST(BudgetTree, ClampsGroupsToDeviceCount) {
  auto spec = base_spec(10.0);
  spec.groups = 64;
  budget::BudgetTree tree(spec, 5);
  EXPECT_EQ(tree.groups(), 5u);
}

TEST(BudgetTree, ScheduleLatestArrivedStepWins) {
  auto spec = base_spec(100.0);
  spec.schedule = {{1.0, 50.0}, {2.0, 25.0}};
  budget::BudgetTree tree(spec, 8);
  EXPECT_FALSE(tree.begin_epoch(0.0));
  EXPECT_DOUBLE_EQ(tree.requested_cap_w(), 100.0);
  EXPECT_TRUE(tree.begin_epoch(1.0));
  EXPECT_DOUBLE_EQ(tree.requested_cap_w(), 50.0);
  EXPECT_FALSE(tree.begin_epoch(1.5));  // no change until the next step
  EXPECT_TRUE(tree.begin_epoch(2.5));
  EXPECT_DOUBLE_EQ(tree.requested_cap_w(), 25.0);
  EXPECT_EQ(tree.steps_fired(), 2u);
  tree.reset();
  EXPECT_EQ(tree.steps_fired(), 0u);
  EXPECT_DOUBLE_EQ(tree.requested_cap_w(), 100.0);
}

TEST(BudgetTree, EffectiveCapRefusesToStarveBelowTheFloorTotal) {
  auto spec = base_spec(100.0);
  spec.floor_w = 0.5;
  spec.schedule = {{1.0, 1.0}};  // requests less than 8 * 0.5 = 4 W
  budget::BudgetTree tree(spec, 8);
  EXPECT_TRUE(tree.begin_epoch(1.0));
  EXPECT_DOUBLE_EQ(tree.requested_cap_w(), 1.0);
  EXPECT_DOUBLE_EQ(tree.effective_cap_w(), 4.0);
  std::vector<double> demand(8, 2.0);
  std::vector<double> caps;
  tree.apportion(demand, caps);
  for (double c : caps) EXPECT_GE(c, 0.5);
  EXPECT_TRUE(tree.audit_error().empty()) << tree.audit_error();
}

TEST(BudgetTree, ZeroDemandSplitsUniformly) {
  budget::BudgetTree tree(base_spec(8.0), 8);
  std::vector<double> demand(8, 0.0);
  std::vector<double> caps;
  tree.apportion(demand, caps);
  ASSERT_EQ(caps.size(), 8u);
  for (double c : caps) EXPECT_NEAR(c, 1.0, 1e-9);
  EXPECT_NEAR(sum(tree.group_caps_w()), 8.0, 1e-9);
}

TEST(BudgetTree, DemandPolicyFollowsTheDemandColumn) {
  auto spec = base_spec(8.0);
  spec.groups = 2;
  budget::BudgetTree tree(spec, 8);
  // Group 0 (devices 0-3) draws 3x what group 1 draws.
  std::vector<double> demand{3.0, 3.0, 3.0, 3.0, 1.0, 1.0, 1.0, 1.0};
  std::vector<double> caps;
  tree.apportion(demand, caps);
  const auto& group_caps = tree.group_caps_w();
  ASSERT_EQ(group_caps.size(), 2u);
  EXPECT_GT(group_caps[0], 2.0 * group_caps[1] * 0.9);
  // Within a group the split follows per-device demand the same way.
  std::vector<double> uneven{6.0, 2.0, 2.0, 2.0, 1.0, 1.0, 1.0, 1.0};
  tree.apportion(uneven, caps);
  EXPECT_GT(caps[0], caps[1]);
  EXPECT_TRUE(tree.audit_error().empty()) << tree.audit_error();
}

TEST(BudgetTree, UniformPolicyIgnoresDemandSkew) {
  auto spec = base_spec(8.0);
  spec.policy = "uniform";
  spec.groups = 2;
  budget::BudgetTree tree(spec, 8);
  std::vector<double> demand{9.0, 9.0, 9.0, 9.0, 1.0, 1.0, 1.0, 1.0};
  std::vector<double> caps;
  tree.apportion(demand, caps);
  const auto& group_caps = tree.group_caps_w();
  EXPECT_NEAR(group_caps[0], group_caps[1], 1e-9);
}

TEST(BudgetTree, RlPolicyApportionsCleanlyOverManyEpochs) {
  auto spec = base_spec(16.0);
  spec.policy = "rl";
  spec.groups = 4;
  budget::BudgetTree tree(spec, 16);
  std::vector<double> demand(16, 0.0);
  std::vector<double> caps;
  for (int e = 0; e < 50; ++e) {
    // Rotating hotspot so the agent sees several states.
    for (std::size_t d = 0; d < demand.size(); ++d) {
      demand[d] = (d / 4 == static_cast<std::size_t>(e) % 4) ? 2.0 : 0.3;
    }
    tree.begin_epoch(0.1 * e);
    tree.apportion(demand, caps);
    EXPECT_LE(sum(caps), 16.0 + 1e-6);
  }
  EXPECT_TRUE(tree.audit_error().empty()) << tree.audit_error();
}

TEST(BudgetTree, RlPolicyIsDeterministicPerSeed) {
  auto make = [](std::uint64_t seed) {
    auto spec = base_spec(16.0);
    spec.policy = "rl";
    spec.seed = seed;
    return budget::BudgetTree(spec, 16);
  };
  auto run = [](budget::BudgetTree& tree) {
    std::vector<double> demand(16), caps;
    std::vector<double> all;
    for (int e = 0; e < 30; ++e) {
      for (std::size_t d = 0; d < demand.size(); ++d) {
        demand[d] = 0.2 + 0.1 * static_cast<double>((d + e) % 5);
      }
      tree.apportion(demand, caps);
      all.insert(all.end(), caps.begin(), caps.end());
    }
    return all;
  };
  auto a = make(11);
  auto b = make(11);
  auto c = make(12);
  const auto caps_a = run(a);
  const auto caps_b = run(b);
  const auto caps_c = run(c);
  EXPECT_EQ(caps_a, caps_b);  // bit-identical for equal seeds
  EXPECT_NE(caps_a, caps_c);  // exploration differs across seeds
}

}  // namespace
