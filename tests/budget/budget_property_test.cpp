// Property-based budget-invariant battery: randomized (devices, groups,
// floor, cap, demand column, policy) draws from one seeded generator; for
// every draw the apportionment must satisfy the three budget invariants
// regardless of the inputs:
//   conservation      sum of child caps <= parent cap at every node
//   no-starvation     every device cap >= floor_w
//   cap-monotonicity  lowering the global cap never raises any leaf cap
// Failures print the master seed and the draw so any counterexample
// replays exactly:
//   PMRL_PROPERTY_SEED=<seed> ./build/tests/test_budget

#include <gtest/gtest.h>

#include <cstdlib>
#include <numeric>
#include <sstream>
#include <string>
#include <vector>

#include "budget/apportion.hpp"
#include "budget/budget_tree.hpp"
#include "util/rng.hpp"

namespace budget = pmrl::budget;
using pmrl::Rng;

namespace {

std::uint64_t master_seed() {
  if (const char* env = std::getenv("PMRL_PROPERTY_SEED")) {
    return std::strtoull(env, nullptr, 10);
  }
  return 20260806;  // fixed default: CI runs are reproducible
}

// fp slack for re-summation of caps the scheme produced exactly-conserving
// in real arithmetic (matches the tree's own audit tolerance).
double tol(double cap_w) { return 1e-9 * std::max(1.0, cap_w); }

struct Draw {
  std::size_t devices = 1;
  std::size_t groups = 1;
  double floor_w = 0.0;
  double cap_w = 1.0;
  std::string policy;
  std::vector<double> demand;

  std::string describe(std::uint64_t seed, int iteration) const {
    std::ostringstream out;
    out << "master_seed=" << seed << " iteration=" << iteration
        << " devices=" << devices << " groups=" << groups
        << " floor=" << floor_w << " cap=" << cap_w << " policy=" << policy;
    return out.str();
  }
};

Draw random_draw(Rng& rng) {
  Draw draw;
  draw.devices = static_cast<std::size_t>(rng.uniform_int(1, 300));
  draw.groups = static_cast<std::size_t>(rng.uniform_int(1, 17));
  draw.floor_w = rng.bernoulli(0.3) ? 0.0 : rng.uniform(0.0, 0.2);
  // Sometimes request less than the floors require: the tree must hold the
  // effective cap at the floor total rather than starve.
  const double floors = static_cast<double>(draw.devices) * draw.floor_w;
  draw.cap_w = rng.bernoulli(0.25)
                   ? rng.uniform(0.01, std::max(0.02, 0.5 * floors))
                   : rng.uniform(0.1, 4.0) * (floors + 1.0);
  static const char* kPolicies[] = {"uniform", "demand", "rl"};
  draw.policy = kPolicies[rng.uniform_int(0, 2)];
  draw.demand.resize(draw.devices);
  for (double& d : draw.demand) {
    if (rng.bernoulli(0.2)) {
      d = 0.0;  // idle devices
    } else if (rng.bernoulli(0.1)) {
      d = rng.uniform(5.0, 50.0);  // hotspots
    } else {
      d = rng.uniform(0.0, 2.0);
    }
  }
  return draw;
}

budget::BudgetTree make_tree(const Draw& draw, std::uint64_t seed) {
  budget::BudgetSpec spec;
  spec.global_cap_w = draw.cap_w;
  spec.floor_w = draw.floor_w;
  spec.groups = draw.groups;
  spec.policy = draw.policy;
  spec.seed = seed;
  return budget::BudgetTree(spec, draw.devices);
}

void check_conservation_and_floor(const budget::BudgetTree& tree,
                                  const std::vector<double>& caps,
                                  double effective_cap,
                                  const std::string& context) {
  const double slack = tol(effective_cap);
  double group_sum = 0.0;
  for (double c : tree.group_caps_w()) group_sum += c;
  EXPECT_LE(group_sum, effective_cap + slack) << context;
  for (std::size_t g = 0; g < tree.groups(); ++g) {
    double leaf_sum = 0.0;
    for (std::size_t d = tree.group_first(g); d < tree.group_last(g); ++d) {
      leaf_sum += caps[d];
      EXPECT_GE(caps[d], tree.spec().floor_w - slack)
          << context << " device=" << d;
    }
    EXPECT_LE(leaf_sum, tree.group_caps_w()[g] + slack)
        << context << " group=" << g;
  }
}

TEST(BudgetProperty, ConservationAndNoStarvationHoldForEveryDraw) {
  const std::uint64_t seed = master_seed();
  Rng rng(seed);
  for (int iteration = 0; iteration < 200; ++iteration) {
    const Draw draw = random_draw(rng);
    const std::string context = draw.describe(seed, iteration);
    SCOPED_TRACE(context);
    budget::BudgetTree tree = make_tree(draw, seed ^ 0x51u);
    std::vector<double> caps;
    // Several epochs so learning policies move through their state.
    for (int e = 0; e < 4; ++e) {
      tree.apportion(draw.demand, caps);
      ASSERT_EQ(caps.size(), draw.devices);
      check_conservation_and_floor(tree, caps, tree.effective_cap_w(),
                                   context);
    }
    EXPECT_TRUE(tree.audit_error().empty())
        << context << "\naudit: " << tree.audit_error();
  }
}

TEST(BudgetProperty, LoweringTheGlobalCapNeverRaisesALeafCap) {
  const std::uint64_t seed = master_seed() ^ 0xcab0;
  Rng rng(seed);
  for (int iteration = 0; iteration < 200; ++iteration) {
    const Draw draw = random_draw(rng);
    const std::string context = draw.describe(seed, iteration);
    SCOPED_TRACE(context);
    budget::BudgetTree tree = make_tree(draw, seed ^ 0x52u);
    const double lower = draw.cap_w * rng.uniform(0.05, 0.95);
    std::vector<double> caps_high;
    std::vector<double> caps_low;
    // preview() never advances schedule/learning state, so the two calls
    // see the identical policy weights — the comparison isolates the cap.
    tree.preview(draw.demand, draw.cap_w, caps_high);
    tree.preview(draw.demand, lower, caps_low);
    const double slack = tol(draw.cap_w);
    for (std::size_t d = 0; d < draw.devices; ++d) {
      EXPECT_LE(caps_low[d], caps_high[d] + slack)
          << context << " device=" << d << " lower_cap=" << lower;
    }
  }
}

TEST(BudgetProperty, PreviewIsIdempotent) {
  const std::uint64_t seed = master_seed() ^ 0xd00d;
  Rng rng(seed);
  for (int iteration = 0; iteration < 50; ++iteration) {
    const Draw draw = random_draw(rng);
    SCOPED_TRACE(draw.describe(seed, iteration));
    budget::BudgetTree tree = make_tree(draw, seed ^ 0x53u);
    std::vector<double> once;
    std::vector<double> twice;
    tree.preview(draw.demand, draw.cap_w, once);
    tree.preview(draw.demand, draw.cap_w, twice);
    EXPECT_EQ(once, twice);  // bit-identical: preview mutates nothing
  }
}

TEST(BudgetProperty, RawApportionmentHoldsUnderAdversarialWeights) {
  const std::uint64_t seed = master_seed() ^ 0xbeef;
  Rng rng(seed);
  for (int iteration = 0; iteration < 300; ++iteration) {
    const std::size_t n = static_cast<std::size_t>(rng.uniform_int(1, 64));
    std::vector<double> floors(n);
    std::vector<double> weights(n);
    double floor_sum = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      floors[i] = rng.bernoulli(0.3) ? 0.0 : rng.uniform(0.0, 1.0);
      floor_sum += floors[i];
      // Adversarial: zero weights, huge spreads, all-zero vectors.
      weights[i] = rng.bernoulli(0.4) ? 0.0 : rng.uniform(0.0, 1e6);
    }
    const double parent = floor_sum + rng.uniform(0.0, 100.0);
    std::vector<double> caps(n);
    budget::apportion_caps(parent, floors.data(), weights.data(), n,
                           caps.data());
    SCOPED_TRACE("master_seed=" + std::to_string(seed) +
                 " iteration=" + std::to_string(iteration) +
                 " n=" + std::to_string(n));
    double cap_sum = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      cap_sum += caps[i];
      EXPECT_GE(caps[i], floors[i] - tol(parent)) << "child=" << i;
    }
    EXPECT_LE(cap_sum, parent + tol(parent));
  }
}

}  // namespace
