// Budgeted-fleet behavior: determinism of the caps and aggregates across
// --jobs and --block (matching the unbudgeted identity-test pattern),
// cap-step propagation through a 10^5-device fleet within a bounded epoch
// count, and the mask-then-argmax cap enforcement actually holding the
// fleet under the cap.

#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "fleet/fleet_engine.hpp"

namespace fleet = pmrl::fleet;

namespace {

fleet::FleetConfig small_budgeted_config() {
  fleet::FleetConfig config;
  config.devices = 512;
  config.seed = 17;
  config.archetypes = 8;
  config.duration_s = 2.0;
  config.block_size = 64;
  config.jobs = 1;
  config.record_devices = true;
  config.record_epochs = true;
  config.budget.global_cap_w = 4000.0;  // unconstraining at t = 0
  config.budget.policy = "demand";
  config.budget.groups = 8;
  config.budget.schedule = {{1.0, 400.0}};  // 10x step mid-run
  return config;
}

void expect_identical(const fleet::FleetResult& a,
                      const fleet::FleetResult& b,
                      const std::string& what) {
  SCOPED_TRACE(what);
  // Bitwise: these are fixed-order reductions, not approximations.
  EXPECT_EQ(a.energy_j, b.energy_j);
  EXPECT_EQ(a.served, b.served);
  EXPECT_EQ(a.demand, b.demand);
  EXPECT_EQ(a.violation_epochs, b.violation_epochs);
  EXPECT_EQ(a.battery_depleted, b.battery_depleted);
  EXPECT_EQ(a.budget.over_cap_device_epochs, b.budget.over_cap_device_epochs);
  EXPECT_EQ(a.budget.settle_epochs, b.budget.settle_epochs);
  EXPECT_EQ(a.device_caps_w, b.device_caps_w);
  ASSERT_EQ(a.epoch_series.size(), b.epoch_series.size());
  for (std::size_t e = 0; e < a.epoch_series.size(); ++e) {
    EXPECT_EQ(a.epoch_series[e].energy_j, b.epoch_series[e].energy_j)
        << "epoch " << e;
    EXPECT_EQ(a.epoch_series[e].served, b.epoch_series[e].served);
    EXPECT_EQ(a.epoch_series[e].violations, b.epoch_series[e].violations);
    EXPECT_EQ(a.epoch_series[e].cap_w, b.epoch_series[e].cap_w);
    EXPECT_EQ(a.epoch_series[e].over_cap, b.epoch_series[e].over_cap);
  }
}

TEST(BudgetFleet, AggregatesAndCapsAreBitIdenticalAcrossJobs) {
  fleet::FleetConfig serial = small_budgeted_config();
  fleet::FleetConfig farmed = small_budgeted_config();
  farmed.jobs = 4;
  const fleet::FleetResult a = fleet::FleetEngine(serial).run();
  const fleet::FleetResult b = fleet::FleetEngine(farmed).run();
  expect_identical(a, b, "jobs 1 vs 4");
  EXPECT_TRUE(a.budget.audit_error.empty()) << a.budget.audit_error;
}

TEST(BudgetFleet, RlPolicyCapsAreBitIdenticalAcrossJobs) {
  fleet::FleetConfig serial = small_budgeted_config();
  serial.budget.policy = "rl";
  fleet::FleetConfig farmed = serial;
  farmed.jobs = 4;
  const fleet::FleetResult a = fleet::FleetEngine(serial).run();
  const fleet::FleetResult b = fleet::FleetEngine(farmed).run();
  expect_identical(a, b, "rl policy, jobs 1 vs 4");
}

TEST(BudgetFleet, CapsAndDeviceOutcomesAreBitIdenticalAcrossBlockSizes) {
  fleet::FleetConfig small_blocks = small_budgeted_config();
  fleet::FleetConfig big_blocks = small_budgeted_config();
  big_blocks.block_size = 512;
  const fleet::FleetResult a = fleet::FleetEngine(small_blocks).run();
  const fleet::FleetResult b = fleet::FleetEngine(big_blocks).run();
  // Per-device state is partition-independent: the demand column is written
  // per device and the apportionment is a serial pass over it.
  ASSERT_EQ(a.device_caps_w.size(), b.device_caps_w.size());
  EXPECT_EQ(a.device_caps_w, b.device_caps_w);
  ASSERT_EQ(a.device_outcomes.size(), b.device_outcomes.size());
  for (std::size_t d = 0; d < a.device_outcomes.size(); ++d) {
    EXPECT_EQ(a.device_outcomes[d].energy_j, b.device_outcomes[d].energy_j)
        << "device " << d;
    EXPECT_EQ(a.device_outcomes[d].served, b.device_outcomes[d].served);
    EXPECT_EQ(a.device_outcomes[d].violations,
              b.device_outcomes[d].violations);
  }
  // Counting aggregates are exact; fp sums regroup across block partials.
  EXPECT_EQ(a.violation_epochs, b.violation_epochs);
  EXPECT_EQ(a.budget.over_cap_device_epochs, b.budget.over_cap_device_epochs);
  EXPECT_EQ(a.budget.settle_epochs, b.budget.settle_epochs);
  EXPECT_NEAR(a.energy_j, b.energy_j, 1e-9 * a.energy_j);
  EXPECT_NEAR(a.served, b.served, 1e-9 * a.served);
}

TEST(BudgetFleet, RepeatedRunsAreIdentical) {
  fleet::FleetEngine engine(small_budgeted_config());
  const fleet::FleetResult a = engine.run();
  const fleet::FleetResult b = engine.run();
  expect_identical(a, b, "run twice on one engine");
}

TEST(BudgetFleet, EpochSeriesTracksTheCapSchedule) {
  fleet::FleetConfig config = small_budgeted_config();
  const fleet::FleetResult r = fleet::FleetEngine(config).run();
  ASSERT_EQ(r.epoch_series.size(), 20u);
  // Step at t = 1.0 s lands on epoch 10 (epochs start at e * 0.1 s).
  for (std::size_t e = 0; e < 10; ++e) {
    EXPECT_DOUBLE_EQ(r.epoch_series[e].cap_w, 4000.0) << "epoch " << e;
  }
  for (std::size_t e = 10; e < 20; ++e) {
    EXPECT_DOUBLE_EQ(r.epoch_series[e].cap_w, 400.0) << "epoch " << e;
  }
  EXPECT_EQ(r.budget.cap_steps, 1u);
  EXPECT_EQ(r.budget.last_step_epoch, 10u);
  EXPECT_DOUBLE_EQ(r.budget.requested_cap_w, 400.0);
}

TEST(BudgetFleet, FleetSettlesUnderTheSteppedCap) {
  fleet::FleetConfig config = small_budgeted_config();
  config.duration_s = 4.0;
  const fleet::FleetResult r = fleet::FleetEngine(config).run();
  ASSERT_GE(r.budget.settle_epochs, 0);
  // The governor can only descend one OPP per epoch, so the bound is the
  // OPP table depth plus slack — not a tuning constant.
  EXPECT_LE(r.budget.settle_epochs, 25);
  // Once settled, epoch power stays at or under the effective cap.
  const std::size_t settled = r.budget.last_step_epoch +
                              static_cast<std::size_t>(r.budget.settle_epochs);
  for (std::size_t e = settled; e < r.epoch_series.size(); ++e) {
    const double power_w = r.epoch_series[e].energy_j / 0.1;
    EXPECT_LE(power_w, r.epoch_series[e].cap_w * 1.02) << "epoch " << e;
  }
  EXPECT_TRUE(r.budget.audit_error.empty()) << r.budget.audit_error;
}

// The acceptance-scale scenario: a 10x global-cap step-change propagating
// through a 10^5-device fleet must settle within a bounded number of
// epochs and must not collapse QoS.
TEST(BudgetFleet, CapStepPropagatesThroughAHundredThousandDevices) {
  fleet::FleetConfig config;
  config.devices = 100000;
  config.seed = 1;
  config.duration_s = 3.0;
  config.jobs = 4;
  config.record_epochs = true;
  config.budget.global_cap_w = 800000.0;  // 8 W/device: unconstraining
  config.budget.policy = "demand";
  config.budget.groups = 8;
  config.budget.schedule = {{1.0, 80000.0}};  // 10x step at t = 1 s
  const fleet::FleetResult r = fleet::FleetEngine(config).run();

  EXPECT_TRUE(r.budget.audit_error.empty()) << r.budget.audit_error;
  EXPECT_EQ(r.budget.cap_steps, 1u);
  ASSERT_GE(r.budget.settle_epochs, 0) << "fleet never got under the cap";
  EXPECT_LE(r.budget.settle_epochs, 25);
  // No QoS collapse: the capped fleet still serves a substantial fraction
  // of demand (the free fleet serves ~0.94; a hard 10x clamp costs real
  // throughput but must not zero it out).
  EXPECT_GT(r.served / r.demand, 0.4);
  EXPECT_LT(r.violation_rate, 0.9);
}

TEST(BudgetFleet, UnbudgetedRunsAreUntouchedByTheBudgetPlumbing) {
  fleet::FleetConfig config = small_budgeted_config();
  config.budget = pmrl::budget::BudgetSpec{};  // disabled
  const fleet::FleetResult r = fleet::FleetEngine(config).run();
  EXPECT_FALSE(r.budget.enabled);
  EXPECT_EQ(r.budget.settle_epochs, -1);
  EXPECT_TRUE(r.device_caps_w.empty());
  for (const auto& p : r.epoch_series) {
    EXPECT_EQ(p.cap_w, 0.0);
    EXPECT_EQ(p.over_cap, 0u);
  }
}

}  // namespace
