#include "rl/reward.hpp"

#include <gtest/gtest.h>

#include <set>

#include "../helpers/observation.hpp"

namespace pmrl::rl {
namespace {

using test::ClusterSpec;
using test::make_observation;

governors::PolicyObservation feedback_obs(double energy_j, double quality,
                                          std::size_t releases,
                                          double duration = 0.02) {
  auto obs = test::single_cluster(0.5, 9);
  obs.epoch_duration_s = duration;
  obs.epoch_energy_j = energy_j;
  obs.epoch_quality = quality;
  obs.epoch_releases = releases;
  return obs;
}

TEST(RewardTest, RejectsBadConfig) {
  RewardConfig bad_power;
  bad_power.power_ref_w = 0.0;
  EXPECT_THROW(RewardFunction{bad_power}, std::invalid_argument);
  RewardConfig bad_lambda;
  bad_lambda.lambda_qos = -1.0;
  EXPECT_THROW(RewardFunction{bad_lambda}, std::invalid_argument);
}

TEST(RewardTest, EnergyTermNormalization) {
  RewardConfig config;
  config.power_ref_w = 2.0;
  const RewardFunction reward(config);
  // 0.04 J over 20 ms = 2 W = exactly the reference -> term = -1.
  EXPECT_DOUBLE_EQ(reward.energy_term(feedback_obs(0.04, 5, 5)), -1.0);
  // Half the power -> -0.5.
  EXPECT_DOUBLE_EQ(reward.energy_term(feedback_obs(0.02, 5, 5)), -0.5);
}

TEST(RewardTest, EnergyTermClipped) {
  RewardConfig config;
  config.power_ref_w = 1.0;
  const RewardFunction reward(config);
  EXPECT_DOUBLE_EQ(reward.energy_term(feedback_obs(100.0, 5, 5)), -2.0);
}

TEST(RewardTest, QosDeficitFraction) {
  const RewardFunction reward{RewardConfig{}};
  // 10 owed, 7.5 delivered -> deficit 0.25.
  EXPECT_DOUBLE_EQ(reward.qos_deficit(feedback_obs(0.0, 7.5, 10)), 0.25);
  // Full delivery -> 0.
  EXPECT_DOUBLE_EQ(reward.qos_deficit(feedback_obs(0.0, 10.0, 10)), 0.0);
  // Over-delivery (backlog draining) clamps at 0.
  EXPECT_DOUBLE_EQ(reward.qos_deficit(feedback_obs(0.0, 15.0, 10)), 0.0);
  // No releases -> no deficit.
  EXPECT_DOUBLE_EQ(reward.qos_deficit(feedback_obs(0.0, 0.0, 0)), 0.0);
}

TEST(RewardTest, CombinedRewardAndTransitionPenalty) {
  RewardConfig config;
  config.power_ref_w = 2.0;
  config.lambda_qos = 2.0;
  config.transition_penalty = 0.05;
  const RewardFunction reward(config);
  const auto obs = feedback_obs(0.02, 7.5, 10);  // energy -0.5, deficit .25
  EXPECT_DOUBLE_EQ(reward(obs, false), -0.5 - 2.0 * 0.25);
  EXPECT_DOUBLE_EQ(reward(obs, true), -0.5 - 2.0 * 0.25 - 0.05);
}

TEST(RewardTest, MoreEnergyIsWorse) {
  const RewardFunction reward{RewardConfig{}};
  EXPECT_GT(reward(feedback_obs(0.01, 10, 10), false),
            reward(feedback_obs(0.03, 10, 10), false));
}

TEST(RewardTest, MoreViolationsIsWorse) {
  const RewardFunction reward{RewardConfig{}};
  EXPECT_GT(reward(feedback_obs(0.02, 10, 10), false),
            reward(feedback_obs(0.02, 6, 10), false));
}

TEST(RewardTest, ZeroDurationIsNeutralEnergy) {
  const RewardFunction reward{RewardConfig{}};
  EXPECT_DOUBLE_EQ(reward.energy_term(feedback_obs(0.5, 5, 5, 0.0)), 0.0);
}

// ---- per-cluster reward ----------------------------------------------------

governors::PolicyObservation cluster_obs() {
  auto obs = make_observation(
      {ClusterSpec{5, 13, 1.4e9, 0.5, 0.5, 0, /*max_power=*/0.8},
       ClusterSpec{9, 19, 2.0e9, 0.5, 0.5, 0, /*max_power=*/6.8}});
  obs.epoch_duration_s = 0.02;
  return obs;
}

TEST(ClusterRewardTest, EnergyNormalizedByOwnMaxPower) {
  const RewardFunction reward{RewardConfig{}};
  auto obs = cluster_obs();
  // Cluster 0: 0.8 W max; 0.008 J / 20 ms = 0.4 W -> 50% of max -> -0.5.
  obs.cluster_feedback[0].epoch_energy_j = 0.008;
  // Cluster 1: 6.8 W max; 0.0136 J / 20 ms = 0.68 W -> 10% -> -0.1.
  obs.cluster_feedback[1].epoch_energy_j = 0.0136;
  EXPECT_NEAR(reward.cluster_energy_term(obs, 0), -0.5, 1e-12);
  EXPECT_NEAR(reward.cluster_energy_term(obs, 1), -0.1, 1e-12);
}

TEST(ClusterRewardTest, DeficitFromOwnCompletions) {
  const RewardFunction reward{RewardConfig{}};
  auto obs = cluster_obs();
  obs.cluster_feedback[0].epoch_deadline_completed = 4;
  obs.cluster_feedback[0].epoch_deadline_quality = 3.0;
  EXPECT_DOUBLE_EQ(reward.cluster_qos_deficit(obs, 0), 0.25);
  EXPECT_DOUBLE_EQ(reward.cluster_qos_deficit(obs, 1), 0.0);
}

TEST(ClusterRewardTest, OverdueCountsAsFullDeficitWeight) {
  const RewardFunction reward{RewardConfig{}};
  auto obs = cluster_obs();
  // Nothing completed but 3 jobs drowning: deficit = 1.
  obs.soc.clusters[0].overdue_jobs = 3;
  EXPECT_DOUBLE_EQ(reward.cluster_qos_deficit(obs, 0), 1.0);
  // 3 perfect completions + 3 overdue: deficit = 0.5.
  obs.cluster_feedback[0].epoch_deadline_completed = 3;
  obs.cluster_feedback[0].epoch_deadline_quality = 3.0;
  EXPECT_DOUBLE_EQ(reward.cluster_qos_deficit(obs, 0), 0.5);
}

TEST(ClusterRewardTest, IndependentAcrossClusters) {
  // A violation on cluster 1 must not change cluster 0's reward.
  RewardConfig config;
  config.lambda_qos = 2.0;
  const RewardFunction reward(config);
  auto clean = cluster_obs();
  auto dirty = cluster_obs();
  dirty.cluster_feedback[1].epoch_deadline_completed = 5;
  dirty.cluster_feedback[1].epoch_violations = 5;
  EXPECT_DOUBLE_EQ(reward.cluster_reward(clean, 0, false),
                   reward.cluster_reward(dirty, 0, false));
  EXPECT_LE(reward.cluster_reward(dirty, 1, false),
            reward.cluster_reward(clean, 1, false));
}

TEST(ClusterRewardTest, OutOfRangeClusterIsNeutral) {
  const RewardFunction reward{RewardConfig{}};
  const auto obs = cluster_obs();
  EXPECT_DOUBLE_EQ(reward.cluster_energy_term(obs, 7), 0.0);
  EXPECT_DOUBLE_EQ(reward.cluster_qos_deficit(obs, 7), 0.0);
}

}  // namespace
}  // namespace pmrl::rl
