#include "rl/watchdog.hpp"

#include <gtest/gtest.h>

#include <limits>

#include "../helpers/observation.hpp"
#include "core/engine.hpp"
#include "governors/registry.hpp"
#include "workload/scenarios.hpp"

namespace pmrl::rl {
namespace {

RlGovernorConfig quiet() {
  RlGovernorConfig config;
  config.learning.epsilon_start = 0.0;
  config.learning.epsilon_end = 0.0;
  config.warmup_decisions = 0;
  return config;
}

governors::PolicyObservation healthy_obs() {
  auto o = test::make_observation(
      {test::ClusterSpec{6, 13, 1.4e9, 0.4, 0.4, 0, 0.8},
       test::ClusterSpec{9, 19, 2.0e9, 0.6, 0.6, 0, 6.8}});
  o.epoch_duration_s = 0.02;
  o.cluster_feedback[0].epoch_energy_j = 0.004;
  o.cluster_feedback[1].epoch_energy_j = 0.02;
  return o;
}

void poison(RlGovernor& governor) {
  for (std::size_t i = 0; i < governor.agent_count(); ++i) {
    auto& agent = governor.agent(i);
    for (std::size_t s = 0; s < agent.state_count(); s += 2) {
      for (std::size_t a = 0; a < agent.action_count(); ++a) {
        agent.set_q_value(s, a, std::numeric_limits<double>::quiet_NaN());
      }
    }
  }
}

TEST(PolicyWatchdogTest, RequiresAFallbackGovernor) {
  RlGovernor primary(quiet(), 2);
  EXPECT_THROW(PolicyWatchdog(primary, nullptr), std::invalid_argument);
}

TEST(PolicyWatchdogTest, NamesBothLayers) {
  RlGovernor primary(quiet(), 2);
  PolicyWatchdog watchdog(primary,
                          governors::make_governor("conservative"));
  EXPECT_NE(watchdog.name().find("+watchdog(conservative)"),
            std::string::npos);
}

TEST(PolicyWatchdogTest, NanPoisonTripsOnTheFirstDecision) {
  RlGovernor primary(quiet(), 2);
  poison(primary);
  PolicyWatchdog watchdog(primary,
                          governors::make_governor("conservative"));
  EXPECT_FALSE(watchdog.q_healthy());

  const auto obs = healthy_obs();
  watchdog.reset(obs);
  governors::OppRequest request(2);
  watchdog.decide(obs, request);
  EXPECT_TRUE(watchdog.engaged());
  EXPECT_EQ(watchdog.last_trip(), WatchdogTrip::UnhealthyQ);
  EXPECT_EQ(watchdog.engagements(), 1u);

  // A NaN-poisoned table never scans clean, so the trip is permanent.
  for (int i = 0; i < 200; ++i) watchdog.decide(obs, request);
  EXPECT_TRUE(watchdog.engaged());
  EXPECT_EQ(watchdog.fallback_epochs(), watchdog.total_epochs());
}

TEST(PolicyWatchdogTest, QosStreakTripsAndHysteresisReengages) {
  RlGovernor primary(quiet(), 2);
  primary.set_frozen(true);
  WatchdogConfig config;
  config.qos_streak_epochs = 3;
  config.hold_epochs = 5;
  config.clean_epochs = 2;
  PolicyWatchdog watchdog(primary,
                          governors::make_governor("conservative"), config);

  auto pressured = healthy_obs();
  pressured.epoch_releases = 10;
  pressured.epoch_violations = 8;  // pressure 0.8 >= 0.5 threshold
  auto clean = healthy_obs();
  clean.epoch_releases = 10;
  clean.epoch_violations = 0;

  watchdog.reset(clean);
  governors::OppRequest request(2);
  watchdog.decide(clean, request);
  EXPECT_FALSE(watchdog.engaged());

  for (int i = 0; i < 3; ++i) watchdog.decide(pressured, request);
  EXPECT_TRUE(watchdog.engaged());
  EXPECT_EQ(watchdog.last_trip(), WatchdogTrip::QosStreak);
  EXPECT_EQ(watchdog.engagements(), 1u);

  // Hysteresis: clean epochs alone do not release the hold early.
  for (int i = 0; i < 4; ++i) {
    watchdog.decide(clean, request);
    EXPECT_TRUE(watchdog.engaged()) << "hold epoch " << i;
  }
  // Hold elapsed and the clean streak is long enough: re-engage.
  watchdog.decide(clean, request);
  EXPECT_FALSE(watchdog.engaged());
  EXPECT_EQ(watchdog.engagements(), 1u);

  // A second pressured streak trips again — counters accumulate.
  for (int i = 0; i < 3; ++i) watchdog.decide(pressured, request);
  EXPECT_TRUE(watchdog.engaged());
  EXPECT_EQ(watchdog.engagements(), 2u);
}

TEST(PolicyWatchdogTest, OscillationTrips) {
  // An always-exploring policy flips OPP direction at random; with a tight
  // window the flip counter must catch it.
  RlGovernorConfig config = quiet();
  config.learning.epsilon_start = 1.0;
  config.learning.epsilon_end = 1.0;
  RlGovernor primary(config, 2);
  WatchdogConfig wd;
  wd.oscillation_window = 8;
  wd.oscillation_flips = 4;
  wd.qos_streak_epochs = 1000000;  // isolate the oscillation trip
  PolicyWatchdog watchdog(primary,
                          governors::make_governor("conservative"), wd);

  const auto obs = healthy_obs();
  watchdog.reset(obs);
  governors::OppRequest request(2);
  bool tripped = false;
  for (int i = 0; i < 2000 && !tripped; ++i) {
    watchdog.decide(obs, request);
    tripped = watchdog.engaged();
  }
  EXPECT_TRUE(tripped);
  EXPECT_EQ(watchdog.last_trip(), WatchdogTrip::Oscillation);
}

TEST(PolicyWatchdogTest, PoisonedPolicyUnderWatchdogMeetsPowersaveFloor) {
  core::EngineConfig engine_config;
  engine_config.duration_s = 10.0;
  core::SimEngine engine(soc::default_mobile_soc_config(), engine_config);

  auto powersave = governors::make_governor("powersave");
  auto scenario = workload::make_scenario(workload::ScenarioKind::Gaming, 5);
  const auto floor_run = engine.run(*scenario, *powersave);

  RlGovernor poisoned(RlGovernorConfig{},
                      engine.soc_config().clusters.size());
  poison(poisoned);
  PolicyWatchdog guarded(poisoned,
                         governors::make_governor("conservative"));
  scenario = workload::make_scenario(workload::ScenarioKind::Gaming, 5);
  const auto guarded_run = engine.run(*scenario, guarded);

  EXPECT_TRUE(guarded.engaged());
  EXPECT_EQ(guarded.last_trip(), WatchdogTrip::UnhealthyQ);
  // The fallback must keep QoS at least at the powersave level — the
  // weakest acceptable operating point of the stock governor set.
  EXPECT_LE(guarded_run.violation_rate,
            std::max(floor_run.violation_rate, 0.02));
}

}  // namespace
}  // namespace pmrl::rl
