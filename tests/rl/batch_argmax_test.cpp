// rl/batch_argmax.hpp: the SIMD micro-batch argmax must be bit-identical
// to the scalar per-state scan (QTable::argmax / the agents'
// greedy_action) on every input — exhaustive ties, negative and
// fixed-point extreme values, saturating bias, and every batch remainder
// the 4-lane kernel can see.

#include "rl/batch_argmax.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>
#include <random>
#include <vector>

#include "rl/agent.hpp"
#include "rl/fixed_agent.hpp"
#include "rl/q_table.hpp"
#include "util/fixed_point.hpp"

namespace pmrl {
namespace {

std::vector<std::uint64_t> all_states(std::size_t states) {
  std::vector<std::uint64_t> out(states);
  for (std::size_t s = 0; s < states; ++s) out[s] = s;
  return out;
}

TEST(BatchArgmaxF64, MatchesQTableArgmaxOnRandomTables) {
  std::mt19937_64 rng(42);
  std::uniform_real_distribution<double> dist(-5.0, 5.0);
  for (const std::size_t actions : {2u, 3u, 5u, 7u, 8u}) {
    rl::QTable table(64, actions);
    for (std::size_t s = 0; s < 64; ++s) {
      for (std::size_t a = 0; a < actions; ++a) {
        table.set(s, a, dist(rng));
      }
    }
    const auto states = all_states(64);
    std::vector<std::uint32_t> got(states.size());
    rl::batch_argmax_f64(table.data(), actions, nullptr, states.data(),
                         states.size(), got.data());
    for (std::size_t s = 0; s < 64; ++s) {
      EXPECT_EQ(got[s], static_cast<std::uint32_t>(table.argmax(s)))
          << "actions=" << actions << " state=" << s;
    }
  }
}

// Quantizing values to a handful of levels makes ties the common case;
// the kernel must resolve every one to the lowest action index, exactly
// like the scalar strictly-greater scan.
TEST(BatchArgmaxF64, TieBreaksToLowestIndexExhaustively) {
  constexpr std::size_t kActions = 4;
  // All 3^4 rows over the value set {-1, 0, 1}: every tie pattern.
  std::vector<double> values;
  std::size_t rows = 1;
  for (std::size_t a = 0; a < kActions; ++a) rows *= 3;
  for (std::size_t r = 0; r < rows; ++r) {
    std::size_t x = r;
    for (std::size_t a = 0; a < kActions; ++a) {
      values.push_back(static_cast<double>(static_cast<int>(x % 3) - 1));
      x /= 3;
    }
  }
  const auto states = all_states(rows);
  std::vector<std::uint32_t> simd(rows);
  std::vector<std::uint32_t> scalar(rows);
  rl::batch_argmax_f64(values.data(), kActions, nullptr, states.data(), rows,
                       simd.data());
  rl::batch_argmax_f64_scalar(values.data(), kActions, nullptr, states.data(),
                              rows, scalar.data());
  for (std::size_t r = 0; r < rows; ++r) {
    EXPECT_EQ(simd[r], scalar[r]) << "row=" << r;
    // Independent check of the tie rule itself.
    const double* row = values.data() + r * kActions;
    std::uint32_t expect = 0;
    for (std::uint32_t a = 1; a < kActions; ++a) {
      if (row[a] > row[expect]) expect = a;
    }
    EXPECT_EQ(simd[r], expect) << "row=" << r;
  }
}

TEST(BatchArgmaxF64, SignedZeroAndExtremesMatchScalar) {
  constexpr std::size_t kActions = 3;
  const double inf = std::numeric_limits<double>::infinity();
  const std::vector<double> values = {
      -0.0, 0.0,  -0.0,                // all compare equal -> index 0
      0.0,  -0.0, 0.0,                 //
      -inf, -1e300, 1e300,             //
      1e300, inf,  inf,                //
      -inf, -inf, -inf,                //
      5e-324, 0.0, -5e-324,            // subnormals
  };
  const std::size_t rows = values.size() / kActions;
  const auto states = all_states(rows);
  std::vector<std::uint32_t> simd(rows);
  std::vector<std::uint32_t> scalar(rows);
  const double bias[kActions] = {0.05, 0.0, 0.0};
  for (const double* b : {static_cast<const double*>(nullptr), bias}) {
    rl::batch_argmax_f64(values.data(), kActions, b, states.data(), rows,
                         simd.data());
    rl::batch_argmax_f64_scalar(values.data(), kActions, b, states.data(),
                                rows, scalar.data());
    for (std::size_t r = 0; r < rows; ++r) {
      EXPECT_EQ(simd[r], scalar[r]) << "row=" << r << " bias=" << (b != nullptr);
    }
  }
}

// The 4-lane kernel has a scalar tail; every remainder (and the
// empty batch) must agree with the all-scalar reference.
TEST(BatchArgmaxF64, EveryBatchRemainderMatchesScalar) {
  std::mt19937_64 rng(7);
  std::uniform_real_distribution<double> dist(-1.0, 1.0);
  constexpr std::size_t kActions = 3;
  constexpr std::size_t kStates = 240;
  std::vector<double> values(kStates * kActions);
  for (auto& v : values) v = dist(rng);
  const double bias[kActions] = {0.05, 0.0, 0.0};
  std::vector<std::uint64_t> states;
  std::uniform_int_distribution<std::uint64_t> pick(0, kStates - 1);
  for (std::size_t n = 0; n <= 19; ++n) {
    states.resize(n);
    for (auto& s : states) s = pick(rng);
    std::vector<std::uint32_t> simd(n, 0xAAu);
    std::vector<std::uint32_t> scalar(n, 0xBBu);
    rl::batch_argmax_f64(values.data(), kActions, bias, states.data(), n,
                         simd.data());
    rl::batch_argmax_f64_scalar(values.data(), kActions, bias, states.data(),
                                n, scalar.data());
    EXPECT_EQ(simd, scalar) << "count=" << n;
  }
}

TEST(BatchArgmaxI64, MatchesScalarWithSaturatingBias) {
  const FixedFormat format(16, 10);
  const std::int64_t raw_min = format.raw_min();
  const std::int64_t raw_max = format.raw_max();
  std::mt19937_64 rng(9);
  std::uniform_int_distribution<std::int64_t> dist(raw_min, raw_max);
  constexpr std::size_t kActions = 3;
  constexpr std::size_t kStates = 96;
  std::vector<std::int64_t> values(kStates * kActions);
  for (auto& v : values) v = dist(rng);
  // Rows of extremes: bias pushes past a bound -> the saturating add must
  // clamp before comparing, exactly as FixedFormat::add does.
  for (std::size_t a = 0; a < kActions; ++a) {
    values[0 * kActions + a] = raw_max;
    values[1 * kActions + a] = raw_min;
    values[2 * kActions + a] = (a % 2) ? raw_max : raw_min;
  }
  const std::int64_t bias[kActions] = {51, 0, -51};  // ~0.05 in Q5.10
  const std::int64_t big_bias[kActions] = {raw_max, 0, raw_min};
  const auto states = all_states(kStates);
  std::vector<std::uint32_t> simd(kStates);
  std::vector<std::uint32_t> scalar(kStates);
  for (const std::int64_t* b :
       {static_cast<const std::int64_t*>(nullptr), bias, big_bias}) {
    rl::batch_argmax_i64(values.data(), kActions, b, raw_min, raw_max,
                         states.data(), kStates, simd.data());
    rl::batch_argmax_i64_scalar(values.data(), kActions, b, raw_min, raw_max,
                                states.data(), kStates, scalar.data());
    EXPECT_EQ(simd, scalar) << "bias set=" << (b == bias ? 1 : (b ? 2 : 0));
  }
}

TEST(BatchArgmaxI64, EveryBatchRemainderMatchesScalar) {
  const FixedFormat format(16, 10);
  std::mt19937_64 rng(11);
  std::uniform_int_distribution<std::int64_t> dist(format.raw_min(),
                                                   format.raw_max());
  constexpr std::size_t kActions = 5;
  constexpr std::size_t kStates = 64;
  std::vector<std::int64_t> values(kStates * kActions);
  for (auto& v : values) v = dist(rng);
  std::vector<std::uint64_t> states;
  std::uniform_int_distribution<std::uint64_t> pick(0, kStates - 1);
  for (std::size_t n = 0; n <= 19; ++n) {
    states.resize(n);
    for (auto& s : states) s = pick(rng);
    std::vector<std::uint32_t> simd(n, 0xAAu);
    std::vector<std::uint32_t> scalar(n, 0xBBu);
    rl::batch_argmax_i64(values.data(), kActions, nullptr, format.raw_min(),
                         format.raw_max(), states.data(), n, simd.data());
    rl::batch_argmax_i64_scalar(values.data(), kActions, nullptr,
                                format.raw_min(), format.raw_max(),
                                states.data(), n, scalar.data());
    EXPECT_EQ(simd, scalar) << "count=" << n;
  }
}

// Agent-level contract: greedy_actions must equal greedy_action per state,
// bias and tie-break included, for both agent families.
TEST(BatchArgmax, FloatAgentBatchedMatchesPerState) {
  rl::QLearningConfig config;
  config.seed = 3;
  rl::QLearningAgent agent(config, 240, 3);
  std::mt19937_64 rng(13);
  std::uniform_real_distribution<double> dist(-2.0, 2.0);
  std::uniform_int_distribution<int> level(0, 3);
  for (std::size_t s = 0; s < 240; ++s) {
    for (std::size_t a = 0; a < 3; ++a) {
      // Mix continuous values and coarse levels so ties occur.
      agent.set_q_value(s, a, (s % 2) ? dist(rng) : 0.5 * level(rng));
    }
  }
  agent.set_action_bias({0.05, 0.0, 0.0});
  const auto states = all_states(240);
  std::vector<std::uint32_t> batched(states.size());
  agent.greedy_actions(states.data(), states.size(), batched.data());
  for (std::size_t s = 0; s < 240; ++s) {
    EXPECT_EQ(batched[s], static_cast<std::uint32_t>(agent.greedy_action(s)))
        << "state=" << s;
  }
}

TEST(BatchArgmax, FixedAgentBatchedMatchesPerState) {
  rl::FixedAgentConfig config;
  rl::FixedPointQAgent agent(config, 240, 3);
  std::mt19937_64 rng(17);
  std::uniform_real_distribution<double> dist(-30.0, 30.0);  // saturates some
  for (std::size_t s = 0; s < 240; ++s) {
    for (std::size_t a = 0; a < 3; ++a) {
      agent.set_q_value(s, a, dist(rng));
    }
  }
  agent.set_action_bias({0.05, 0.0, 0.0});
  const auto states = all_states(240);
  std::vector<std::uint32_t> batched(states.size());
  agent.greedy_actions(states.data(), states.size(), batched.data());
  for (std::size_t s = 0; s < 240; ++s) {
    EXPECT_EQ(batched[s], static_cast<std::uint32_t>(agent.greedy_action(s)))
        << "state=" << s;
  }
}

// Double Q selection scores 0.5*(A+B)+bias; the two-table-mean kernel must
// reproduce the scalar combined-Q scan bit-for-bit even when the tables
// disagree about the best action.
TEST(BatchArgmaxF64Mean2, MatchesScalarAndCombinedScan) {
  std::mt19937_64 rng(23);
  std::uniform_real_distribution<double> dist(-3.0, 3.0);
  std::uniform_int_distribution<int> level(0, 3);
  for (const std::size_t actions : {2u, 3u, 5u, 8u}) {
    const std::size_t rows = 96;
    std::vector<double> a(rows * actions);
    std::vector<double> b(rows * actions);
    // Mix continuous values with coarse levels so mean ties occur.
    for (auto& v : a) v = dist(rng);
    for (auto& v : b) v = (level(rng) == 0) ? 0.5 * level(rng) : dist(rng);
    std::vector<double> bias(actions, 0.0);
    bias[0] = 0.05;
    const auto states = all_states(rows);
    std::vector<std::uint32_t> simd(rows);
    std::vector<std::uint32_t> scalar(rows);
    const double* bias_cases[] = {nullptr, bias.data()};
    for (const double* bp : bias_cases) {
      rl::batch_argmax_f64_mean2(a.data(), b.data(), actions, bp,
                                 states.data(), rows, simd.data());
      rl::batch_argmax_f64_mean2_scalar(a.data(), b.data(), actions, bp,
                                        states.data(), rows, scalar.data());
      for (std::size_t s = 0; s < rows; ++s) {
        EXPECT_EQ(simd[s], scalar[s])
            << "actions=" << actions << " state=" << s;
        // Independent reference: the agent's combined-Q evaluation order.
        std::uint32_t expect = 0;
        double best = 0.5 * (a[s * actions] + b[s * actions]) +
                      (bp ? bp[0] : 0.0);
        for (std::uint32_t act = 1; act < actions; ++act) {
          const double v = 0.5 * (a[s * actions + act] + b[s * actions + act]) +
                           (bp ? bp[act] : 0.0);
          if (v > best) {
            best = v;
            expect = act;
          }
        }
        EXPECT_EQ(simd[s], expect) << "actions=" << actions << " state=" << s;
      }
    }
  }
}

TEST(BatchArgmaxF64Mean2, EveryBatchRemainderMatchesScalar) {
  std::mt19937_64 rng(29);
  std::uniform_real_distribution<double> dist(-1.0, 1.0);
  constexpr std::size_t kActions = 3;
  constexpr std::size_t kStates = 200;
  std::vector<double> a(kStates * kActions);
  std::vector<double> b(kStates * kActions);
  for (auto& v : a) v = dist(rng);
  for (auto& v : b) v = dist(rng);
  const double bias[kActions] = {0.05, 0.0, 0.0};
  std::uniform_int_distribution<std::uint64_t> pick(0, kStates - 1);
  std::vector<std::uint64_t> states;
  for (std::size_t n = 0; n <= 19; ++n) {
    states.resize(n);
    for (auto& s : states) s = pick(rng);
    std::vector<std::uint32_t> simd(n, 0xAAu);
    std::vector<std::uint32_t> scalar(n, 0xBBu);
    rl::batch_argmax_f64_mean2(a.data(), b.data(), kActions, bias,
                               states.data(), n, simd.data());
    rl::batch_argmax_f64_mean2_scalar(a.data(), b.data(), kActions, bias,
                                      states.data(), n, scalar.data());
    EXPECT_EQ(simd, scalar) << "count=" << n;
  }
}

// Agent-level: the Double Q branch of greedy_actions now routes through the
// two-table-mean kernel and must still equal greedy_action per state even
// when the two tables diverge.
TEST(BatchArgmax, DoubleQBatchedMatchesPerState) {
  rl::QLearningConfig config;
  config.algorithm = rl::TdAlgorithm::DoubleQ;
  rl::QLearningAgent agent(config, 120, 3);
  std::mt19937_64 rng(19);
  std::uniform_real_distribution<double> dist(-1.0, 1.0);
  std::uniform_int_distribution<int> level(0, 2);
  for (std::size_t s = 0; s < 120; ++s) {
    for (std::size_t a = 0; a < 3; ++a) {
      agent.set_q_value(s, a, (s % 2) ? dist(rng) : 0.5 * level(rng));
      // Desynchronize table A from table B so the mean really matters.
      agent.table().set(s, a, (s % 3) ? dist(rng) : 0.5 * level(rng));
    }
  }
  for (const std::vector<double>& bias :
       {std::vector<double>{}, std::vector<double>{0.05, 0.0, 0.0}}) {
    agent.set_action_bias(bias);
    const auto states = all_states(120);
    std::vector<std::uint32_t> batched(states.size());
    agent.greedy_actions(states.data(), states.size(), batched.data());
    for (std::size_t s = 0; s < 120; ++s) {
      EXPECT_EQ(batched[s], static_cast<std::uint32_t>(agent.greedy_action(s)))
          << "state=" << s << " bias=" << !bias.empty();
    }
  }
}

TEST(BatchArgmax, BackendNameIsKnown) {
  const std::string backend = rl::batch_argmax_backend();
  EXPECT_TRUE(backend == "avx2" || backend == "scalar") << backend;
}

}  // namespace
}  // namespace pmrl
