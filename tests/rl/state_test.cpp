#include "rl/state.hpp"

#include <gtest/gtest.h>

#include <set>

#include "../helpers/observation.hpp"

namespace pmrl::rl {
namespace {

using test::ClusterSpec;
using test::make_observation;

TEST(StateEncoderTest, RejectsDegenerateConfig) {
  EXPECT_THROW(StateEncoder(StateConfig{0, 4, 4}, 2), std::invalid_argument);
  EXPECT_THROW(StateEncoder(StateConfig{4, 0, 4}, 2), std::invalid_argument);
  EXPECT_THROW(StateEncoder(StateConfig{4, 4, 0}, 2), std::invalid_argument);
  EXPECT_THROW(StateEncoder(StateConfig{4, 4, 4}, 0), std::invalid_argument);
}

TEST(StateEncoderTest, StateCountFormula) {
  const StateEncoder enc(StateConfig{4, 4, 4}, 2);
  EXPECT_EQ(enc.state_count(), 1024u);  // 4 * (4*4)^2
  EXPECT_EQ(enc.cluster_state_count(), 64u);
  const StateEncoder enc1(StateConfig{4, 20, 3}, 1);
  EXPECT_EQ(enc1.cluster_state_count(), 240u);
}

TEST(StateEncoderTest, UtilBinning) {
  const StateEncoder enc(StateConfig{4, 4, 4}, 2);
  EXPECT_EQ(enc.util_bin(0.0), 0u);
  EXPECT_EQ(enc.util_bin(0.24), 0u);
  EXPECT_EQ(enc.util_bin(0.25), 1u);
  EXPECT_EQ(enc.util_bin(0.74), 2u);
  EXPECT_EQ(enc.util_bin(0.99), 3u);
  EXPECT_EQ(enc.util_bin(1.0), 3u);   // saturates
  EXPECT_EQ(enc.util_bin(5.0), 3u);   // clamps
  EXPECT_EQ(enc.util_bin(-1.0), 0u);  // clamps
}

TEST(StateEncoderTest, OppBinExactWhenTableFits) {
  const StateEncoder enc(StateConfig{4, 20, 3}, 2);
  for (std::size_t i = 0; i < 19; ++i) {
    EXPECT_EQ(enc.opp_bin(i, 19), i);
  }
}

TEST(StateEncoderTest, OppBinProportionalWhenTableLarger) {
  const StateEncoder enc(StateConfig{4, 4, 3}, 2);
  EXPECT_EQ(enc.opp_bin(0, 19), 0u);
  EXPECT_EQ(enc.opp_bin(18, 19), 3u);
  EXPECT_EQ(enc.opp_bin(9, 19), 2u);
  EXPECT_EQ(enc.opp_bin(4, 19), 0u);
}

TEST(StateEncoderTest, SingleOppTableAlwaysBinZero) {
  const StateEncoder enc(StateConfig{4, 4, 3}, 1);
  EXPECT_EQ(enc.opp_bin(0, 1), 0u);
}

TEST(StateEncoderTest, QosBinFromGlobalPressure) {
  StateConfig config{4, 4, 4};
  config.qos_pressure_cap = 0.30;
  const StateEncoder enc(config, 1);
  auto obs = test::single_cluster(0.5, 5);
  obs.epoch_releases = 10;
  obs.epoch_violations = 0;
  EXPECT_EQ(enc.qos_bin(obs), 0u);
  obs.epoch_violations = 1;  // pressure 0.1 / cap 0.3 -> bin 1
  EXPECT_EQ(enc.qos_bin(obs), 1u);
  obs.epoch_violations = 3;  // saturates at cap -> top bin
  EXPECT_EQ(enc.qos_bin(obs), 3u);
  obs.epoch_violations = 10;
  EXPECT_EQ(enc.qos_bin(obs), 3u);
}

TEST(StateEncoderTest, QosBinNoReleasesIsZero) {
  const StateEncoder enc(StateConfig{4, 4, 4}, 1);
  auto obs = test::single_cluster(0.5, 5);
  obs.epoch_releases = 0;
  obs.epoch_violations = 0;
  EXPECT_EQ(enc.qos_bin(obs), 0u);
}

TEST(StateEncoderTest, ClusterQosBinUsesOwnFeedbackAndOverdue) {
  const StateEncoder enc(StateConfig{4, 20, 3}, 2);
  auto obs = make_observation({ClusterSpec{}, ClusterSpec{}});
  obs.cluster_feedback[0].epoch_deadline_completed = 10;
  obs.cluster_feedback[0].epoch_violations = 0;
  obs.cluster_feedback[1].epoch_deadline_completed = 10;
  obs.cluster_feedback[1].epoch_violations = 5;
  EXPECT_EQ(enc.cluster_qos_bin(obs, 0), 0u);
  EXPECT_EQ(enc.cluster_qos_bin(obs, 1), 2u);  // 0.5 > cap -> top of 3
}

TEST(StateEncoderTest, OverdueJobsCountAsPressure) {
  // A drowning cluster with NO completions must still reach the top
  // pressure bin via the overdue-queued signal.
  const StateEncoder enc(StateConfig{4, 20, 3}, 1);
  auto obs = make_observation({ClusterSpec{0, 19, 2.0e9, 1.0, 1.0, 5}});
  obs.cluster_feedback[0].epoch_deadline_completed = 0;
  EXPECT_EQ(enc.cluster_qos_bin(obs, 0), 2u);
}

TEST(StateEncoderTest, EncodeIsInjectiveOverFeatureGrid) {
  // Every distinct (qos, util0, opp0, util1, opp1) combination maps to a
  // distinct joint state index.
  const StateEncoder enc(StateConfig{2, 2, 2}, 2);
  std::set<std::size_t> seen;
  for (std::size_t viol : {0u, 9u}) {
    for (double u0 : {0.1, 0.9}) {
      for (std::size_t o0 : {0u, 18u}) {
        for (double u1 : {0.1, 0.9}) {
          for (std::size_t o1 : {0u, 18u}) {
            auto obs = make_observation(
                {ClusterSpec{o0, 19, 1.4e9, u0},
                 ClusterSpec{o1, 19, 2.0e9, u1}});
            obs.epoch_releases = 10;
            obs.epoch_violations = viol;
            seen.insert(enc.encode(obs));
          }
        }
      }
    }
  }
  EXPECT_EQ(seen.size(), 32u);
  EXPECT_EQ(enc.state_count(), 32u);
}

TEST(StateEncoderTest, EncodeInRange) {
  const StateEncoder enc(StateConfig{}, 2);
  for (std::size_t o = 0; o < 19; ++o) {
    for (double u = 0.0; u <= 1.0; u += 0.19) {
      auto obs = make_observation({ClusterSpec{o, 13, 1.4e9, u},
                                   ClusterSpec{o, 19, 2.0e9, 1.0 - u}});
      EXPECT_LT(enc.encode(obs), enc.state_count());
      EXPECT_LT(enc.encode_cluster(obs, 0), enc.cluster_state_count());
      EXPECT_LT(enc.encode_cluster(obs, 1), enc.cluster_state_count());
    }
  }
}

TEST(StateEncoderTest, ClusterCountMismatchThrows) {
  const StateEncoder enc(StateConfig{}, 2);
  const auto obs = test::single_cluster(0.5, 5);
  EXPECT_THROW(enc.encode(obs), std::invalid_argument);
  EXPECT_THROW(enc.encode_cluster(obs, 5), std::invalid_argument);
}

}  // namespace
}  // namespace pmrl::rl
