#include "rl/rl_governor.hpp"

#include <gtest/gtest.h>

#include <cstdlib>

#include "../helpers/observation.hpp"

namespace pmrl::rl {
namespace {

using test::ClusterSpec;
using test::make_observation;

RlGovernorConfig quiet_config() {
  RlGovernorConfig config;
  config.learning.epsilon_start = 0.0;
  config.learning.epsilon_end = 0.0;
  config.warmup_decisions = 0;
  return config;
}

governors::PolicyObservation two_cluster_obs(std::size_t opp0 = 6,
                                             std::size_t opp1 = 9) {
  auto obs = make_observation(
      {ClusterSpec{opp0, 13, 1.4e9, 0.4, 0.4, 0, 0.8},
       ClusterSpec{opp1, 19, 2.0e9, 0.4, 0.4, 0, 6.8}});
  obs.epoch_duration_s = 0.02;
  obs.epoch_energy_j = 0.02;
  obs.cluster_feedback[0].epoch_energy_j = 0.004;
  obs.cluster_feedback[1].epoch_energy_j = 0.016;
  return obs;
}

TEST(RlGovernorTest, FactoredCreatesOneAgentPerCluster) {
  RlGovernor governor(quiet_config(), 2);
  EXPECT_EQ(governor.agent_count(), 2u);
  EXPECT_EQ(governor.agent(0).state_count(),
            governor.encoder().cluster_state_count());
  EXPECT_EQ(governor.agent(0).action_count(),
            governor.actions().moves_per_cluster());
}

TEST(RlGovernorTest, JointCreatesSingleAgent) {
  RlGovernorConfig config = quiet_config();
  config.structure = PolicyStructure::Joint;
  config.action.jump = 0;
  RlGovernor governor(config, 2);
  EXPECT_EQ(governor.agent_count(), 1u);
  EXPECT_EQ(governor.agent().state_count(),
            governor.encoder().state_count());
  EXPECT_EQ(governor.agent().action_count(), 9u);
}

TEST(RlGovernorTest, NameReflectsBackend) {
  RlGovernor float_gov(quiet_config(), 2);
  EXPECT_EQ(float_gov.name(), "rl");
  RlGovernorConfig fixed = quiet_config();
  fixed.backend = AgentBackend::Fixed;
  RlGovernor fixed_gov(fixed, 2);
  EXPECT_EQ(fixed_gov.name(), "rl-fixed");
}

TEST(RlGovernorTest, DecideFillsValidRequest) {
  RlGovernor governor(quiet_config(), 2);
  const auto obs = two_cluster_obs();
  governor.reset(obs);
  governors::OppRequest request(2);
  for (int i = 0; i < 50; ++i) {
    governor.decide(obs, request);
    EXPECT_LT(request[0], 13u);
    EXPECT_LT(request[1], 19u);
  }
  EXPECT_EQ(governor.run_decisions(), 50u);
}

TEST(RlGovernorTest, RequestsAreOneStepFromCurrent) {
  // Without a jump move, every request differs from the current OPP by at
  // most the step size (or is guard-boosted, which needs QoS pressure).
  RlGovernorConfig config = quiet_config();
  config.action.jump = 0;
  RlGovernor governor(config, 2);
  const auto obs = two_cluster_obs(6, 9);
  governor.reset(obs);
  governors::OppRequest request(2);
  governor.decide(obs, request);
  EXPECT_LE(std::abs(static_cast<int>(request[0]) - 6), 1);
  EXPECT_LE(std::abs(static_cast<int>(request[1]) - 9), 1);
}

TEST(RlGovernorTest, DownBiasDescendsFromColdStart) {
  // With zero epsilon and an untouched Q-table, the down-bias prior makes
  // the greedy policy walk toward OPP 0.
  RlGovernor governor(quiet_config(), 2);
  auto obs = two_cluster_obs(6, 9);
  governor.reset(obs);
  governors::OppRequest request(2);
  governor.decide(obs, request);
  EXPECT_EQ(request[0], 5u);
  EXPECT_EQ(request[1], 8u);
}

TEST(RlGovernorTest, QosGuardBoostsUnderPressure) {
  RlGovernorConfig config = quiet_config();
  config.qos_guard_fraction = 0.8;
  RlGovernor governor(config, 2);
  auto obs = two_cluster_obs(2, 2);
  // Cluster 1 is drowning: pressure hits the top bin.
  obs.soc.clusters[1].overdue_jobs = 10;
  governor.reset(obs);
  governors::OppRequest request(2);
  governor.decide(obs, request);
  EXPECT_LE(request[0], 2u);   // unaffected cluster keeps descending
  EXPECT_EQ(request[1], 14u);  // guard floor = round(0.8 * 18)
}

TEST(RlGovernorTest, QosGuardDisabledByZeroFraction) {
  RlGovernorConfig config = quiet_config();
  config.qos_guard_fraction = 0.0;
  RlGovernor governor(config, 2);
  auto obs = two_cluster_obs(2, 2);
  obs.soc.clusters[1].overdue_jobs = 10;
  governor.reset(obs);
  governors::OppRequest request(2);
  governor.decide(obs, request);
  EXPECT_LE(request[1], 3u);
}

TEST(RlGovernorTest, LearnsFromRewardFeedback) {
  RlGovernorConfig config = quiet_config();
  config.learning.epsilon_start = 0.3;
  config.learning.epsilon_end = 0.3;
  RlGovernor governor(config, 2);
  auto obs = two_cluster_obs();
  governor.reset(obs);
  governors::OppRequest request(2);
  for (int i = 0; i < 200; ++i) governor.decide(obs, request);
  // Q-tables received updates (visited pairs > 0 for the float agent).
  double nonzero = 0;
  for (std::size_t s = 0; s < governor.agent(0).state_count(); ++s) {
    for (std::size_t a = 0; a < governor.agent(0).action_count(); ++a) {
      nonzero += governor.agent(0).q_value(s, a) != 0.0 ? 1 : 0;
    }
  }
  EXPECT_GT(nonzero, 0);
  EXPECT_NE(governor.run_reward(), 0.0);
}

TEST(RlGovernorTest, WarmupSkipsEarlyLearning) {
  RlGovernorConfig config = quiet_config();
  config.warmup_decisions = 10;
  config.learning.epsilon_start = 0.0;
  RlGovernor governor(config, 2);
  auto obs = two_cluster_obs();
  governor.reset(obs);
  governors::OppRequest request(2);
  for (int i = 0; i < 10; ++i) governor.decide(obs, request);
  double nonzero = 0;
  for (std::size_t s = 0; s < governor.agent(0).state_count(); ++s) {
    for (std::size_t a = 0; a < governor.agent(0).action_count(); ++a) {
      nonzero += governor.agent(0).q_value(s, a) != 0.0 ? 1 : 0;
    }
  }
  EXPECT_EQ(nonzero, 0);
}

TEST(RlGovernorTest, ResetClearsRunStatsButKeepsQ) {
  RlGovernorConfig config = quiet_config();
  RlGovernor governor(config, 2);
  auto obs = two_cluster_obs();
  governor.reset(obs);
  governors::OppRequest request(2);
  for (int i = 0; i < 50; ++i) governor.decide(obs, request);
  const double q_before = governor.agent(1).q_value(
      governor.encoder().encode_cluster(obs, 1), 1);
  governor.reset(obs);
  EXPECT_EQ(governor.run_decisions(), 0u);
  EXPECT_EQ(governor.run_reward(), 0.0);
  EXPECT_DOUBLE_EQ(governor.agent(1).q_value(
                       governor.encoder().encode_cluster(obs, 1), 1),
                   q_before);
}

TEST(RlGovernorTest, SetFrozenPropagatesToAllAgents) {
  RlGovernor governor(quiet_config(), 2);
  governor.set_frozen(true);
  EXPECT_TRUE(governor.frozen());
  EXPECT_TRUE(governor.agent(0).frozen());
  EXPECT_TRUE(governor.agent(1).frozen());
  governor.set_frozen(false);
  EXPECT_FALSE(governor.frozen());
}

TEST(RlGovernorTest, FixedBackendBehavesLikeGovernor) {
  RlGovernorConfig config = quiet_config();
  config.backend = AgentBackend::Fixed;
  RlGovernor governor(config, 2);
  auto obs = two_cluster_obs();
  governor.reset(obs);
  governors::OppRequest request(2);
  for (int i = 0; i < 100; ++i) {
    governor.decide(obs, request);
    EXPECT_LT(request[0], 13u);
    EXPECT_LT(request[1], 19u);
  }
}

}  // namespace
}  // namespace pmrl::rl
