#include "rl/agent.hpp"

#include <gtest/gtest.h>

namespace pmrl::rl {
namespace {

QLearningConfig greedy_config() {
  QLearningConfig config;
  config.epsilon_start = 0.0;
  config.epsilon_end = 0.0;
  return config;
}

TEST(QLearningAgentTest, RejectsBadHyperparameters) {
  QLearningConfig config;
  config.alpha = 0.0;
  EXPECT_THROW(QLearningAgent(config, 4, 2), std::invalid_argument);
  config = QLearningConfig{};
  config.gamma = 1.0;
  EXPECT_THROW(QLearningAgent(config, 4, 2), std::invalid_argument);
  config = QLearningConfig{};
  config.epsilon_end = 0.9;  // end > start
  EXPECT_THROW(QLearningAgent(config, 4, 2), std::invalid_argument);
}

TEST(QLearningAgentTest, TdUpdateFormula) {
  QLearningConfig config = greedy_config();
  config.alpha = 0.5;
  config.gamma = 0.5;
  QLearningAgent agent(config, 3, 2);
  agent.table().set(1, 0, 4.0);  // max Q(s'=1) = 4
  agent.learn(/*s=*/0, /*a=*/1, /*r=*/2.0, /*s'=*/1);
  // target = 2 + 0.5*4 = 4; Q = 0 + 0.5*(4-0) = 2.
  EXPECT_DOUBLE_EQ(agent.q_value(0, 1), 2.0);
  EXPECT_EQ(agent.table().visits(0, 1), 1u);
}

TEST(QLearningAgentTest, ConvergesToImmediateRewardBandit) {
  // Single state, gamma small: Q(a) -> r(a)/(1-gamma) under repeated play.
  QLearningConfig config = greedy_config();
  config.alpha = 0.2;
  config.gamma = 0.0;
  QLearningAgent agent(config, 1, 2);
  for (int i = 0; i < 500; ++i) {
    agent.learn(0, 0, -1.0, 0);
    agent.learn(0, 1, -0.2, 0);
  }
  EXPECT_NEAR(agent.q_value(0, 0), -1.0, 1e-6);
  EXPECT_NEAR(agent.q_value(0, 1), -0.2, 1e-6);
  EXPECT_EQ(agent.greedy_action(0), 1u);
}

TEST(QLearningAgentTest, ValuePropagatesAlongChain) {
  // Chain s0 -> s1 -> terminal-ish loop. Reward only at the end; the value
  // must flow back through gamma.
  QLearningConfig config = greedy_config();
  config.alpha = 0.5;
  config.gamma = 0.8;
  QLearningAgent agent(config, 3, 1);
  for (int i = 0; i < 200; ++i) {
    agent.learn(0, 0, 0.0, 1);
    agent.learn(1, 0, 0.0, 2);
    agent.learn(2, 0, 1.0, 2);
  }
  // V(2) = 1/(1-0.8) = 5; V(1) = 0.8*5 = 4; V(0) = 0.8*4 = 3.2.
  EXPECT_NEAR(agent.q_value(2, 0), 5.0, 0.01);
  EXPECT_NEAR(agent.q_value(1, 0), 4.0, 0.01);
  EXPECT_NEAR(agent.q_value(0, 0), 3.2, 0.01);
}

TEST(QLearningAgentTest, GreedyWhenEpsilonZero) {
  QLearningAgent agent(greedy_config(), 2, 3);
  agent.table().set(0, 2, 1.0);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(agent.select_action(0), 2u);
}

TEST(QLearningAgentTest, ExploresWhenEpsilonOne) {
  QLearningConfig config;
  config.epsilon_start = 1.0;
  config.epsilon_end = 1.0;
  QLearningAgent agent(config, 1, 4);
  agent.table().set(0, 3, 100.0);
  std::vector<int> counts(4, 0);
  for (int i = 0; i < 4000; ++i) ++counts[agent.select_action(0)];
  // Uniform exploration: each action ~1000.
  for (int c : counts) EXPECT_NEAR(c, 1000, 150);
}

TEST(QLearningAgentTest, EpsilonDecaysLinearly) {
  QLearningConfig config;
  config.epsilon_start = 0.6;
  config.epsilon_end = 0.1;
  config.epsilon_decay_episodes = 5;
  QLearningAgent agent(config, 1, 2);
  EXPECT_DOUBLE_EQ(agent.epsilon(), 0.6);
  agent.begin_episode();
  EXPECT_NEAR(agent.epsilon(), 0.5, 1e-12);
  for (int i = 0; i < 10; ++i) agent.begin_episode();
  EXPECT_DOUBLE_EQ(agent.epsilon(), 0.1);  // clamps at end
}

TEST(QLearningAgentTest, FrozenNeitherLearnsNorExplores) {
  QLearningConfig config;
  config.epsilon_start = 1.0;
  config.epsilon_end = 1.0;
  QLearningAgent agent(config, 2, 3);
  agent.table().set(0, 1, 5.0);
  agent.set_frozen(true);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(agent.select_action(0), 1u);
  agent.learn(0, 0, 10.0, 1);
  EXPECT_DOUBLE_EQ(agent.q_value(0, 0), 0.0);
  agent.set_frozen(false);
  agent.learn(0, 0, 10.0, 1);
  EXPECT_GT(agent.q_value(0, 0), 0.0);
}

TEST(QLearningAgentTest, ActionBiasSteersGreedyOnly) {
  QLearningAgent agent(greedy_config(), 2, 3);
  agent.table().set(0, 0, 0.10);
  agent.table().set(0, 1, 0.12);
  EXPECT_EQ(agent.greedy_action(0), 1u);
  // Bias of +0.05 on action 0 flips the near-tie...
  agent.set_action_bias({0.05, 0.0, 0.0});
  EXPECT_EQ(agent.greedy_action(0), 0u);
  // ...but cannot override a decisive gap.
  agent.table().set(0, 1, 1.0);
  EXPECT_EQ(agent.greedy_action(0), 1u);
  // And the TD target stays unbiased: learn toward max Q(s')=1.0, not
  // max(Q+bias).
  QLearningConfig config = greedy_config();
  config.alpha = 1.0;
  config.gamma = 0.5;
  QLearningAgent learner(config, 2, 2);
  learner.table().set(1, 0, 2.0);
  learner.set_action_bias({0.0, 100.0});  // biased argmax would pick a1=0
  learner.learn(0, 0, 0.0, 1);
  EXPECT_DOUBLE_EQ(learner.q_value(0, 0), 1.0);  // 0.5 * max(2.0, 0.0)
}

TEST(QLearningAgentTest, ActionBiasSizeMismatchThrows) {
  QLearningAgent agent(greedy_config(), 2, 3);
  EXPECT_THROW(agent.set_action_bias({1.0}), std::invalid_argument);
  EXPECT_NO_THROW(agent.set_action_bias({}));  // empty disables
}

TEST(QLearningAgentTest, DeterministicWithSameSeed) {
  QLearningConfig config;
  config.epsilon_start = 0.5;
  config.epsilon_end = 0.5;
  config.seed = 99;
  QLearningAgent a(config, 4, 3);
  QLearningAgent b(config, 4, 3);
  for (int i = 0; i < 200; ++i) {
    EXPECT_EQ(a.select_action(i % 4), b.select_action(i % 4));
  }
}

}  // namespace
}  // namespace pmrl::rl
