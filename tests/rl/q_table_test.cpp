#include "rl/q_table.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace pmrl::rl {
namespace {

TEST(QTableTest, RejectsZeroDimensions) {
  EXPECT_THROW(QTable(0, 3), std::invalid_argument);
  EXPECT_THROW(QTable(3, 0), std::invalid_argument);
}

TEST(QTableTest, InitialValueFills) {
  const QTable table(4, 3, -1.5);
  for (std::size_t s = 0; s < 4; ++s) {
    for (std::size_t a = 0; a < 3; ++a) {
      EXPECT_DOUBLE_EQ(table.get(s, a), -1.5);
    }
  }
}

TEST(QTableTest, SetGetRoundTrip) {
  QTable table(4, 3);
  table.set(2, 1, 3.25);
  EXPECT_DOUBLE_EQ(table.get(2, 1), 3.25);
  EXPECT_DOUBLE_EQ(table.get(2, 0), 0.0);
}

TEST(QTableTest, OutOfRangeThrows) {
  QTable table(4, 3);
  EXPECT_THROW(table.get(4, 0), std::out_of_range);
  EXPECT_THROW(table.get(0, 3), std::out_of_range);
  EXPECT_THROW(table.set(9, 9, 1.0), std::out_of_range);
}

TEST(QTableTest, ArgmaxAndTieBreakLowest) {
  QTable table(2, 4);
  table.set(0, 2, 5.0);
  EXPECT_EQ(table.argmax(0), 2u);
  EXPECT_DOUBLE_EQ(table.max_value(0), 5.0);
  // All equal -> lowest index wins (hardware comparator-tree convention).
  EXPECT_EQ(table.argmax(1), 0u);
  table.set(1, 1, 7.0);
  table.set(1, 3, 7.0);
  EXPECT_EQ(table.argmax(1), 1u);
}

TEST(QTableTest, ArgmaxWithNegativeValues) {
  QTable table(1, 3, -10.0);
  table.set(0, 2, -3.0);
  EXPECT_EQ(table.argmax(0), 2u);
}

TEST(QTableTest, VisitBookkeeping) {
  QTable table(3, 2);
  EXPECT_EQ(table.visited_pairs(), 0u);
  table.record_visit(0, 1);
  table.record_visit(0, 1);
  table.record_visit(2, 0);
  EXPECT_EQ(table.visits(0, 1), 2u);
  EXPECT_EQ(table.visits(0, 0), 0u);
  EXPECT_EQ(table.visited_pairs(), 2u);
  EXPECT_EQ(table.visited_states(), 2u);
}

TEST(QTableTest, FillOverwrites) {
  QTable table(2, 2);
  table.set(0, 0, 9.0);
  table.fill(1.0);
  EXPECT_DOUBLE_EQ(table.get(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(table.get(1, 1), 1.0);
}

TEST(QTableTest, SaveLoadRoundTrip) {
  QTable table(3, 2);
  table.set(0, 0, 1.5);
  table.set(1, 1, -2.25);
  table.set(2, 0, 1e-7);
  std::stringstream io;
  table.save(io);
  const QTable loaded = QTable::load(io);
  ASSERT_EQ(loaded.states(), 3u);
  ASSERT_EQ(loaded.actions(), 2u);
  for (std::size_t s = 0; s < 3; ++s) {
    for (std::size_t a = 0; a < 2; ++a) {
      EXPECT_DOUBLE_EQ(loaded.get(s, a), table.get(s, a));
    }
  }
}

TEST(QTableTest, LoadRejectsBadInput) {
  {
    std::stringstream io("");
    EXPECT_THROW(QTable::load(io), std::runtime_error);
  }
  {
    std::stringstream io("1,2\n3\n");  // ragged
    EXPECT_THROW(QTable::load(io), std::runtime_error);
  }
}

}  // namespace
}  // namespace pmrl::rl
