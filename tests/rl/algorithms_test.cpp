// TD-control algorithm variants of the float agent.

#include <gtest/gtest.h>

#include <algorithm>

#include "rl/agent.hpp"

namespace pmrl::rl {
namespace {

QLearningConfig variant(TdAlgorithm algorithm, double eps = 0.0) {
  QLearningConfig config;
  config.algorithm = algorithm;
  config.epsilon_start = eps;
  config.epsilon_end = eps;
  return config;
}

TEST(TdAlgorithmTest, Names) {
  EXPECT_STREQ(td_algorithm_name(TdAlgorithm::QLearning), "q-learning");
  EXPECT_STREQ(td_algorithm_name(TdAlgorithm::DoubleQ), "double-q");
  EXPECT_STREQ(td_algorithm_name(TdAlgorithm::ExpectedSarsa),
               "expected-sarsa");
}

TEST(DoubleQTest, SecondTableOnlyForDoubleQ) {
  QLearningAgent plain(variant(TdAlgorithm::QLearning), 4, 2);
  EXPECT_EQ(plain.table_b(), nullptr);
  QLearningAgent dbl(variant(TdAlgorithm::DoubleQ), 4, 2);
  EXPECT_NE(dbl.table_b(), nullptr);
}

TEST(DoubleQTest, ConvergesToBanditValues) {
  QLearningConfig config = variant(TdAlgorithm::DoubleQ);
  config.alpha = 0.2;
  config.gamma = 0.0;
  QLearningAgent agent(config, 1, 2);
  for (int i = 0; i < 2000; ++i) {
    agent.learn(0, 0, -1.0, 0);
    agent.learn(0, 1, -0.2, 0);
  }
  EXPECT_NEAR(agent.q_value(0, 0), -1.0, 1e-3);
  EXPECT_NEAR(agent.q_value(0, 1), -0.2, 1e-3);
  EXPECT_EQ(agent.greedy_action(0), 1u);
}

TEST(DoubleQTest, QValueIsMeanOfTables) {
  QLearningAgent agent(variant(TdAlgorithm::DoubleQ), 2, 2);
  agent.table().set(0, 0, 4.0);
  // table_b stays 0 -> combined = 2.0.
  EXPECT_DOUBLE_EQ(agent.q_value(0, 0), 2.0);
}

TEST(DoubleQTest, SetQValueWritesBothTables) {
  QLearningAgent agent(variant(TdAlgorithm::DoubleQ), 2, 2);
  agent.set_q_value(1, 1, 3.0);
  EXPECT_DOUBLE_EQ(agent.q_value(1, 1), 3.0);
  EXPECT_DOUBLE_EQ(agent.table().get(1, 1), 3.0);
  EXPECT_DOUBLE_EQ(agent.table_b()->get(1, 1), 3.0);
}

TEST(DoubleQTest, LessOverestimationThanQLearning) {
  // Classic overestimation setup: one state, many actions whose true value
  // is 0 but whose sampled rewards are noisy. Q-learning's max operator
  // inflates the state value; Double Q stays closer to 0.
  auto run = [](TdAlgorithm algorithm) {
    QLearningConfig config = variant(algorithm);
    config.alpha = 0.1;
    config.gamma = 0.9;
    config.seed = 5;
    QLearningAgent agent(config, 1, 8);
    Rng noise(42);
    for (int i = 0; i < 5000; ++i) {
      const auto a = static_cast<std::size_t>(i % 8);
      agent.learn(0, a, noise.normal(0.0, 1.0), 0);
    }
    double v = -1e9;
    for (std::size_t a = 0; a < 8; ++a) v = std::max(v, agent.q_value(0, a));
    return v;
  };
  const double q_value = run(TdAlgorithm::QLearning);
  const double double_q_value = run(TdAlgorithm::DoubleQ);
  EXPECT_GT(q_value, double_q_value);
  EXPECT_GT(q_value, 0.5);  // visibly inflated
}

TEST(ExpectedSarsaTest, MatchesQLearningAtZeroEpsilon) {
  // With eps = 0 the expectation collapses to the max: identical updates.
  QLearningConfig cfg_q = variant(TdAlgorithm::QLearning);
  QLearningConfig cfg_es = variant(TdAlgorithm::ExpectedSarsa);
  QLearningAgent q(cfg_q, 3, 2);
  QLearningAgent es(cfg_es, 3, 2);
  for (int i = 0; i < 100; ++i) {
    const std::size_t s = static_cast<std::size_t>(i) % 3;
    q.learn(s, i % 2, -0.5, (s + 1) % 3);
    es.learn(s, i % 2, -0.5, (s + 1) % 3);
  }
  for (std::size_t s = 0; s < 3; ++s) {
    for (std::size_t a = 0; a < 2; ++a) {
      EXPECT_DOUBLE_EQ(q.q_value(s, a), es.q_value(s, a));
    }
  }
}

TEST(ExpectedSarsaTest, TargetBlendsMaxAndMean) {
  QLearningConfig config = variant(TdAlgorithm::ExpectedSarsa, /*eps=*/0.5);
  config.alpha = 1.0;
  config.gamma = 0.5;
  QLearningAgent agent(config, 2, 2);
  agent.table().set(1, 0, 4.0);
  agent.table().set(1, 1, 0.0);
  agent.learn(0, 0, 0.0, 1);
  // expectation = 0.5*max(4) + 0.5*mean(2) = 3; target = 0.5*3 = 1.5.
  EXPECT_DOUBLE_EQ(agent.q_value(0, 0), 1.5);
}

}  // namespace
}  // namespace pmrl::rl
