#include "rl/action.hpp"

#include <gtest/gtest.h>

#include "../helpers/observation.hpp"

namespace pmrl::rl {
namespace {

using test::ClusterSpec;
using test::make_observation;

ActionConfig no_jump() {
  ActionConfig config;
  config.jump = 0;
  return config;
}

TEST(ActionSpaceTest, RejectsDegenerateConfig) {
  EXPECT_THROW(ActionSpace(ActionConfig{}, 0), std::invalid_argument);
  ActionConfig zero_step;
  zero_step.step = 0;
  EXPECT_THROW(ActionSpace(zero_step, 2), std::invalid_argument);
}

TEST(ActionSpaceTest, JointCountWithoutJump) {
  const ActionSpace space(no_jump(), 2);
  EXPECT_EQ(space.moves_per_cluster(), 3u);
  EXPECT_EQ(space.action_count(), 9u);
  const ActionSpace three(no_jump(), 3);
  EXPECT_EQ(three.action_count(), 27u);
}

TEST(ActionSpaceTest, JumpAddsUpwardMove) {
  ActionConfig config;
  config.jump = 4;
  const ActionSpace space(config, 2);
  EXPECT_EQ(space.moves_per_cluster(), 4u);
  EXPECT_EQ(space.action_count(), 16u);
  // The move set contains exactly one move of +jump and none of -jump.
  int plus_jump = 0;
  int minus_jump = 0;
  for (std::size_t m = 0; m < space.moves_per_cluster(); ++m) {
    if (space.move_value(m) == 4) ++plus_jump;
    if (space.move_value(m) == -4) ++minus_jump;
  }
  EXPECT_EQ(plus_jump, 1);
  EXPECT_EQ(minus_jump, 0);
}

TEST(ActionSpaceTest, ActionZeroIsJointHold) {
  const ActionSpace space(no_jump(), 2);
  EXPECT_EQ(space.hold_action(), 0u);
  EXPECT_EQ(space.delta(0, 0), 0);
  EXPECT_EQ(space.delta(0, 1), 0);
}

TEST(ActionSpaceTest, MixedRadixDecodeCoversAllCombinations) {
  const ActionSpace space(no_jump(), 2);
  std::set<std::pair<int, int>> combos;
  for (std::size_t a = 0; a < space.action_count(); ++a) {
    combos.insert({space.delta(a, 0), space.delta(a, 1)});
  }
  EXPECT_EQ(combos.size(), 9u);
  for (int d0 : {-1, 0, 1}) {
    for (int d1 : {-1, 0, 1}) {
      EXPECT_TRUE(combos.count({d0, d1}));
    }
  }
}

TEST(ActionSpaceTest, StepScalesDeltas) {
  ActionConfig config = no_jump();
  config.step = 2;
  const ActionSpace space(config, 1);
  std::set<int> values;
  for (std::size_t m = 0; m < space.moves_per_cluster(); ++m) {
    values.insert(space.move_value(m));
  }
  EXPECT_EQ(values, (std::set<int>{-2, 0, 2}));
}

TEST(ActionSpaceTest, ApplyClampsAtTableEnds) {
  const ActionSpace space(no_jump(), 2);
  const auto obs = make_observation(
      {ClusterSpec{0, 13, 1.4e9, 0.5}, ClusterSpec{18, 19, 2.0e9, 0.5}});
  governors::OppRequest request(2);
  // Find the joint action (down, up).
  for (std::size_t a = 0; a < space.action_count(); ++a) {
    if (space.delta(a, 0) == -1 && space.delta(a, 1) == 1) {
      space.apply(a, obs, request);
      EXPECT_EQ(request[0], 0u);   // clamped at bottom
      EXPECT_EQ(request[1], 18u);  // clamped at top
      return;
    }
  }
  FAIL() << "joint action (down, up) not found";
}

TEST(ActionSpaceTest, ApplyMovesRelativeToCurrent) {
  const ActionSpace space(no_jump(), 1);
  const auto obs = test::single_cluster(0.5, 9);
  governors::OppRequest request(1);
  for (std::size_t m = 0; m < space.moves_per_cluster(); ++m) {
    space.apply_move(m, obs, 0, request);
    EXPECT_EQ(static_cast<int>(request[0]), 9 + space.move_value(m));
  }
}

TEST(ActionSpaceTest, ApplyMoveJumpClamps) {
  ActionConfig config;
  config.jump = 10;
  const ActionSpace space(config, 1);
  const auto obs = test::single_cluster(0.5, 12);
  governors::OppRequest request(1);
  for (std::size_t m = 0; m < space.moves_per_cluster(); ++m) {
    if (space.move_value(m) == 10) {
      space.apply_move(m, obs, 0, request);
      EXPECT_EQ(request[0], 18u);
      return;
    }
  }
  FAIL() << "jump move not found";
}

TEST(ActionSpaceTest, OutOfRangeQueriesThrow) {
  const ActionSpace space(no_jump(), 2);
  EXPECT_THROW(space.delta(99, 0), std::out_of_range);
  EXPECT_THROW(space.delta(0, 9), std::out_of_range);
  EXPECT_THROW(space.move_value(17), std::out_of_range);
  const auto obs = test::single_cluster(0.5, 9);
  governors::OppRequest request(1);
  EXPECT_THROW(space.apply_move(0, obs, 3, request), std::out_of_range);
}

TEST(ActionSpaceTest, ApplyClusterCountMismatchThrows) {
  const ActionSpace space(no_jump(), 2);
  const auto obs = test::single_cluster(0.5, 9);  // one cluster only
  governors::OppRequest request(2);
  EXPECT_THROW(space.apply(0, obs, request), std::invalid_argument);
}

}  // namespace
}  // namespace pmrl::rl
