#include "rl/policy_io.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "../helpers/observation.hpp"

namespace pmrl::rl {
namespace {

RlGovernorConfig quiet() {
  RlGovernorConfig config;
  config.learning.epsilon_start = 0.3;
  config.learning.epsilon_end = 0.3;
  config.warmup_decisions = 0;
  return config;
}

governors::PolicyObservation obs() {
  auto o = test::make_observation(
      {test::ClusterSpec{6, 13, 1.4e9, 0.4, 0.4, 0, 0.8},
       test::ClusterSpec{9, 19, 2.0e9, 0.6, 0.6, 0, 6.8}});
  o.epoch_duration_s = 0.02;
  o.cluster_feedback[0].epoch_energy_j = 0.004;
  o.cluster_feedback[1].epoch_energy_j = 0.02;
  return o;
}

void exercise(RlGovernor& governor, int decisions = 300) {
  const auto observation = obs();
  governor.reset(observation);
  governors::OppRequest request(2);
  for (int i = 0; i < decisions; ++i) governor.decide(observation, request);
}

TEST(PolicyIoTest, RoundTripPreservesAllQValues) {
  RlGovernor original(quiet(), 2);
  exercise(original);
  std::stringstream checkpoint;
  save_policy(original, checkpoint);

  RlGovernor restored(quiet(), 2);
  load_policy(restored, checkpoint);
  for (std::size_t i = 0; i < original.agent_count(); ++i) {
    for (std::size_t s = 0; s < original.agent(i).state_count(); ++s) {
      for (std::size_t a = 0; a < original.agent(i).action_count(); ++a) {
        ASSERT_DOUBLE_EQ(restored.agent(i).q_value(s, a),
                         original.agent(i).q_value(s, a));
      }
    }
  }
}

TEST(PolicyIoTest, RestoredPolicyDecidesIdentically) {
  RlGovernor original(quiet(), 2);
  exercise(original);
  original.set_frozen(true);
  std::stringstream checkpoint;
  save_policy(original, checkpoint);

  RlGovernor restored(quiet(), 2);
  load_policy(restored, checkpoint);
  restored.set_frozen(true);

  const auto observation = obs();
  original.reset(observation);
  restored.reset(observation);
  governors::OppRequest a(2);
  governors::OppRequest b(2);
  for (int i = 0; i < 100; ++i) {
    original.decide(observation, a);
    restored.decide(observation, b);
    ASSERT_EQ(a, b);
  }
}

TEST(PolicyIoTest, FixedBackendRoundTripsLosslessly) {
  RlGovernorConfig config = quiet();
  config.backend = AgentBackend::Fixed;
  RlGovernor original(config, 2);
  exercise(original);
  std::stringstream checkpoint;
  save_policy(original, checkpoint);

  RlGovernor restored(config, 2);
  load_policy(restored, checkpoint);
  // Dequantize -> %.17g -> requantize must be exact.
  const auto& orig_agent =
      dynamic_cast<const FixedPointQAgent&>(original.agent(0));
  const auto& rest_agent =
      dynamic_cast<const FixedPointQAgent&>(restored.agent(0));
  for (std::size_t s = 0; s < orig_agent.state_count(); ++s) {
    for (std::size_t a = 0; a < orig_agent.action_count(); ++a) {
      ASSERT_EQ(rest_agent.q_raw(s, a), orig_agent.q_raw(s, a));
    }
  }
}

std::string checkpoint_text(const RlGovernor& governor) {
  std::stringstream out;
  save_policy(governor, out);
  return out.str();
}

/// Loads `text` expecting rejection; returns the typed kind.
PolicyLoadErrorKind load_kind(RlGovernor& governor, const std::string& text) {
  std::stringstream in(text);
  try {
    load_policy(governor, in);
  } catch (const PolicyLoadError& e) {
    return e.kind();
  }
  ADD_FAILURE() << "load unexpectedly succeeded";
  return PolicyLoadErrorKind::BadHeader;
}

TEST(PolicyIoTest, RejectsBadHeader) {
  RlGovernor governor(quiet(), 2);
  std::stringstream bad("not-a-policy\n");
  EXPECT_THROW(load_policy(governor, bad), std::runtime_error);
}

TEST(PolicyIoTest, TypedErrorKinds) {
  RlGovernor governor(quiet(), 2);
  const std::string valid = checkpoint_text(governor);
  const std::size_t header_end = valid.find('\n');
  const std::size_t row_end = valid.find('\n', header_end + 1);
  const std::string first_row =
      valid.substr(header_end + 1, row_end - header_end - 1);

  EXPECT_EQ(load_kind(governor, ""), PolicyLoadErrorKind::BadHeader);
  EXPECT_EQ(load_kind(governor, "garbage\n"), PolicyLoadErrorKind::BadHeader);

  std::string version99 = valid;
  version99.replace(0, header_end, "pmrl-policy,99,2,240,3");
  EXPECT_EQ(load_kind(governor, version99),
            PolicyLoadErrorKind::UnsupportedVersion);

  EXPECT_EQ(load_kind(governor, "pmrl-policy,2,two,240,3\n"),
            PolicyLoadErrorKind::BadField);

  std::string bad_value = valid;
  bad_value.replace(header_end + 1, first_row.size(), "zap,0,0");
  EXPECT_EQ(load_kind(governor, bad_value), PolicyLoadErrorKind::BadField);

  std::string nan_value = valid;
  nan_value.replace(header_end + 1, first_row.size(), "nan,0,0");
  EXPECT_EQ(load_kind(governor, nan_value), PolicyLoadErrorKind::NonFinite);

  std::string huge_value = valid;
  huge_value.replace(header_end + 1, first_row.size(), "1e300,0,0");
  EXPECT_EQ(load_kind(governor, huge_value), PolicyLoadErrorKind::NonFinite);

  std::string truncated = valid;
  truncated.resize(truncated.size() / 2);
  EXPECT_EQ(load_kind(governor, truncated), PolicyLoadErrorKind::Truncated);
}

TEST(PolicyIoTest, ChecksumCatchesSilentValueCorruption) {
  RlGovernor original(quiet(), 2);
  exercise(original);
  std::string text = checkpoint_text(original);

  // Corrupt one digit of one Q-value: the row still parses as a valid
  // finite number, so only the CRC can catch it.
  const std::size_t row_begin = text.find('\n') + 1;
  std::size_t digit = row_begin;
  while (text[digit] < '1' || text[digit] > '8') ++digit;
  ++text[digit];

  RlGovernor target(quiet(), 2);
  EXPECT_EQ(load_kind(target, text), PolicyLoadErrorKind::ChecksumMismatch);

  // A tampered footer is equally fatal.
  std::string bad_footer = checkpoint_text(original);
  bad_footer[bad_footer.size() - 2] =
      bad_footer[bad_footer.size() - 2] == '0' ? '1' : '0';
  EXPECT_EQ(load_kind(target, bad_footer),
            PolicyLoadErrorKind::ChecksumMismatch);
}

TEST(PolicyIoTest, LegacyV1CheckpointStillLoads) {
  RlGovernor original(quiet(), 2);
  exercise(original);
  std::string text = checkpoint_text(original);

  // Rewrite as a v1 file: version field 1, no crc32 footer.
  ASSERT_EQ(text.rfind("pmrl-policy,2,", 0), 0u);
  text.replace(0, 14, "pmrl-policy,1,");
  const std::size_t footer = text.rfind("crc32,");
  ASSERT_NE(footer, std::string::npos);
  text.erase(footer);

  RlGovernor restored(quiet(), 2);
  std::stringstream in(text);
  load_policy(restored, in);
  for (std::size_t i = 0; i < original.agent_count(); ++i) {
    for (std::size_t s = 0; s < original.agent(i).state_count(); ++s) {
      for (std::size_t a = 0; a < original.agent(i).action_count(); ++a) {
        ASSERT_DOUBLE_EQ(restored.agent(i).q_value(s, a),
                         original.agent(i).q_value(s, a));
      }
    }
  }
}

TEST(PolicyIoTest, TryLoadLeavesGovernorFreshOnRejection) {
  RlGovernor trained(quiet(), 2);
  exercise(trained);
  std::string text = checkpoint_text(trained);
  text.resize(text.size() - text.size() / 3);  // truncate mid-payload

  RlGovernor target(quiet(), 2);
  const RlGovernor fresh(quiet(), 2);
  std::stringstream in(text);
  std::string error;
  EXPECT_FALSE(try_load_policy(target, in, &error));
  EXPECT_NE(error.find("truncated"), std::string::npos);

  // Transactional load: the rejected checkpoint must not have leaked any
  // values into the governor — it still decides as a fresh init.
  for (std::size_t i = 0; i < target.agent_count(); ++i) {
    for (std::size_t s = 0; s < target.agent(i).state_count(); ++s) {
      for (std::size_t a = 0; a < target.agent(i).action_count(); ++a) {
        ASSERT_DOUBLE_EQ(target.agent(i).q_value(s, a),
                         fresh.agent(i).q_value(s, a));
      }
    }
  }

  std::stringstream good(checkpoint_text(trained));
  EXPECT_TRUE(try_load_policy(target, good, &error));
}

TEST(PolicyIoTest, RejectsShapeMismatch) {
  RlGovernor big(quiet(), 2);
  std::stringstream checkpoint;
  save_policy(big, checkpoint);
  RlGovernorConfig small_config = quiet();
  small_config.state.util_bins = 2;
  RlGovernor small(small_config, 2);
  EXPECT_THROW(load_policy(small, checkpoint), std::runtime_error);
}

TEST(PolicyIoTest, RejectsTruncatedCheckpoint) {
  RlGovernor governor(quiet(), 2);
  std::stringstream checkpoint;
  save_policy(governor, checkpoint);
  std::string text = checkpoint.str();
  text.resize(text.size() / 2);
  std::stringstream truncated(text);
  RlGovernor target(quiet(), 2);
  EXPECT_THROW(load_policy(target, truncated), std::runtime_error);
}

}  // namespace
}  // namespace pmrl::rl
