#include "rl/policy_io.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "../helpers/observation.hpp"

namespace pmrl::rl {
namespace {

RlGovernorConfig quiet() {
  RlGovernorConfig config;
  config.learning.epsilon_start = 0.3;
  config.learning.epsilon_end = 0.3;
  config.warmup_decisions = 0;
  return config;
}

governors::PolicyObservation obs() {
  auto o = test::make_observation(
      {test::ClusterSpec{6, 13, 1.4e9, 0.4, 0.4, 0, 0.8},
       test::ClusterSpec{9, 19, 2.0e9, 0.6, 0.6, 0, 6.8}});
  o.epoch_duration_s = 0.02;
  o.cluster_feedback[0].epoch_energy_j = 0.004;
  o.cluster_feedback[1].epoch_energy_j = 0.02;
  return o;
}

void exercise(RlGovernor& governor, int decisions = 300) {
  const auto observation = obs();
  governor.reset(observation);
  governors::OppRequest request(2);
  for (int i = 0; i < decisions; ++i) governor.decide(observation, request);
}

TEST(PolicyIoTest, RoundTripPreservesAllQValues) {
  RlGovernor original(quiet(), 2);
  exercise(original);
  std::stringstream checkpoint;
  save_policy(original, checkpoint);

  RlGovernor restored(quiet(), 2);
  load_policy(restored, checkpoint);
  for (std::size_t i = 0; i < original.agent_count(); ++i) {
    for (std::size_t s = 0; s < original.agent(i).state_count(); ++s) {
      for (std::size_t a = 0; a < original.agent(i).action_count(); ++a) {
        ASSERT_DOUBLE_EQ(restored.agent(i).q_value(s, a),
                         original.agent(i).q_value(s, a));
      }
    }
  }
}

TEST(PolicyIoTest, RestoredPolicyDecidesIdentically) {
  RlGovernor original(quiet(), 2);
  exercise(original);
  original.set_frozen(true);
  std::stringstream checkpoint;
  save_policy(original, checkpoint);

  RlGovernor restored(quiet(), 2);
  load_policy(restored, checkpoint);
  restored.set_frozen(true);

  const auto observation = obs();
  original.reset(observation);
  restored.reset(observation);
  governors::OppRequest a(2);
  governors::OppRequest b(2);
  for (int i = 0; i < 100; ++i) {
    original.decide(observation, a);
    restored.decide(observation, b);
    ASSERT_EQ(a, b);
  }
}

TEST(PolicyIoTest, FixedBackendRoundTripsLosslessly) {
  RlGovernorConfig config = quiet();
  config.backend = AgentBackend::Fixed;
  RlGovernor original(config, 2);
  exercise(original);
  std::stringstream checkpoint;
  save_policy(original, checkpoint);

  RlGovernor restored(config, 2);
  load_policy(restored, checkpoint);
  // Dequantize -> %.17g -> requantize must be exact.
  const auto& orig_agent =
      dynamic_cast<const FixedPointQAgent&>(original.agent(0));
  const auto& rest_agent =
      dynamic_cast<const FixedPointQAgent&>(restored.agent(0));
  for (std::size_t s = 0; s < orig_agent.state_count(); ++s) {
    for (std::size_t a = 0; a < orig_agent.action_count(); ++a) {
      ASSERT_EQ(rest_agent.q_raw(s, a), orig_agent.q_raw(s, a));
    }
  }
}

TEST(PolicyIoTest, RejectsBadHeader) {
  RlGovernor governor(quiet(), 2);
  std::stringstream bad("not-a-policy\n");
  EXPECT_THROW(load_policy(governor, bad), std::runtime_error);
}

TEST(PolicyIoTest, RejectsShapeMismatch) {
  RlGovernor big(quiet(), 2);
  std::stringstream checkpoint;
  save_policy(big, checkpoint);
  RlGovernorConfig small_config = quiet();
  small_config.state.util_bins = 2;
  RlGovernor small(small_config, 2);
  EXPECT_THROW(load_policy(small, checkpoint), std::runtime_error);
}

TEST(PolicyIoTest, RejectsTruncatedCheckpoint) {
  RlGovernor governor(quiet(), 2);
  std::stringstream checkpoint;
  save_policy(governor, checkpoint);
  std::string text = checkpoint.str();
  text.resize(text.size() / 2);
  std::stringstream truncated(text);
  RlGovernor target(quiet(), 2);
  EXPECT_THROW(load_policy(target, truncated), std::runtime_error);
}

}  // namespace
}  // namespace pmrl::rl
