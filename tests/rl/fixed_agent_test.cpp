#include "rl/fixed_agent.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace pmrl::rl {
namespace {

FixedAgentConfig greedy_fixed(unsigned frac = 10) {
  FixedAgentConfig config;
  config.frac_bits = frac;
  config.learning.epsilon_start = 0.0;
  config.learning.epsilon_end = 0.0;
  return config;
}

TEST(FixedAgentTest, RejectsDegenerateDimensions) {
  EXPECT_THROW(FixedPointQAgent(greedy_fixed(), 0, 3),
               std::invalid_argument);
  EXPECT_THROW(FixedPointQAgent(greedy_fixed(), 3, 0),
               std::invalid_argument);
}

TEST(FixedAgentTest, RejectsAlphaQuantizingToZero) {
  FixedAgentConfig config = greedy_fixed(/*frac=*/2);  // lsb 0.25
  config.learning.alpha = 0.05;                        // rounds to 0
  EXPECT_THROW(FixedPointQAgent(config, 4, 2), std::invalid_argument);
}

TEST(FixedAgentTest, ConstantsQuantized) {
  FixedAgentConfig config = greedy_fixed(10);
  config.learning.alpha = 0.15;
  config.learning.gamma = 0.5;
  FixedPointQAgent agent(config, 4, 2);
  EXPECT_EQ(agent.alpha_raw(), agent.format().from_double(0.15));
  EXPECT_EQ(agent.gamma_raw(), agent.format().from_double(0.5));
}

TEST(FixedAgentTest, TdUpdateMatchesFixedArithmetic) {
  FixedAgentConfig config = greedy_fixed(10);
  config.learning.alpha = 0.5;
  config.learning.gamma = 0.5;
  FixedPointQAgent agent(config, 3, 2);
  agent.learn(0, 1, 2.0, 1);  // next-state Q all zero
  // target = 2 + 0.5*0 = 2; delta = 0.5 * 2 = 1.
  EXPECT_NEAR(agent.q_value(0, 1), 1.0, agent.format().lsb() * 2);
}

TEST(FixedAgentTest, BanditConvergesWithinQuantization) {
  FixedAgentConfig config = greedy_fixed(10);
  config.learning.alpha = 0.25;
  config.learning.gamma = 0.0;
  FixedPointQAgent agent(config, 1, 2);
  for (int i = 0; i < 300; ++i) {
    agent.learn(0, 0, -1.0, 0);
    agent.learn(0, 1, -0.25, 0);
  }
  EXPECT_NEAR(agent.q_value(0, 0), -1.0, 0.02);
  EXPECT_NEAR(agent.q_value(0, 1), -0.25, 0.02);
  EXPECT_EQ(agent.greedy_action(0), 1u);
}

TEST(FixedAgentTest, SaturatesInsteadOfWrapping) {
  FixedAgentConfig config = greedy_fixed(12);  // range ~[-8, 8)
  config.learning.alpha = 1.0;
  config.learning.gamma = 0.0;
  FixedPointQAgent agent(config, 1, 1);
  for (int i = 0; i < 10; ++i) agent.learn(0, 0, -100.0, 0);
  EXPECT_NEAR(agent.q_value(0, 0), agent.format().value_min(), 0.01);
  for (int i = 0; i < 10; ++i) agent.learn(0, 0, 100.0, 0);
  EXPECT_NEAR(agent.q_value(0, 0), agent.format().value_max(), 0.01);
}

TEST(FixedAgentTest, GreedyTieBreaksLowestLikeComparatorTree) {
  FixedPointQAgent agent(greedy_fixed(), 1, 4);
  EXPECT_EQ(agent.greedy_action(0), 0u);
}

TEST(FixedAgentTest, EpsilonThresholdTracksSchedule) {
  FixedAgentConfig config;
  config.learning.epsilon_start = 0.5;
  config.learning.epsilon_end = 0.0;
  config.learning.epsilon_decay_episodes = 2;
  FixedPointQAgent agent(config, 2, 2);
  EXPECT_EQ(agent.epsilon_threshold(), 32768u);
  agent.begin_episode();
  EXPECT_EQ(agent.epsilon_threshold(), 16384u);
  agent.begin_episode();
  EXPECT_EQ(agent.epsilon_threshold(), 0u);
}

TEST(FixedAgentTest, LfsrExplorationFrequency) {
  FixedAgentConfig config;
  config.learning.epsilon_start = 0.25;
  config.learning.epsilon_end = 0.25;
  FixedPointQAgent agent(config, 1, 4);
  // Raise action 0 so greedy picks it; exploration picks uniformly.
  agent.set_frozen(false);
  // Manually bump Q(0,0) by learning positive reward there.
  for (int i = 0; i < 50; ++i) agent.learn(0, 0, 1.0, 0);
  int non_greedy = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    if (agent.select_action(0) != 0) ++non_greedy;
  }
  // Idealized P(non-greedy) = epsilon * 3/4 ~= 0.1875. The hardware LFSR
  // draws the epsilon test and the action pick from *consecutive* shifts
  // of one register, which correlates them (a deliberate hardware
  // fidelity); assert the achieved rate stays in a sane band around the
  // ideal rather than matching it exactly.
  const double rate = non_greedy / static_cast<double>(n);
  EXPECT_GT(rate, 0.10);
  EXPECT_LT(rate, 0.25);
}

TEST(FixedAgentTest, FrozenIsGreedyAndImmutable) {
  FixedAgentConfig config;
  config.learning.epsilon_start = 1.0;
  config.learning.epsilon_end = 1.0;
  FixedPointQAgent agent(config, 2, 3);
  agent.learn(0, 2, 4.0, 1);
  const auto q_before = agent.q_raw(0, 2);
  agent.set_frozen(true);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(agent.select_action(0), 2u);
  agent.learn(0, 0, 100.0, 1);
  EXPECT_EQ(agent.q_raw(0, 2), q_before);
  EXPECT_EQ(agent.q_raw(0, 0), 0);
}

TEST(FixedAgentTest, ActionBiasQuantizedAndApplied) {
  FixedPointQAgent agent(greedy_fixed(), 1, 3);
  agent.set_action_bias({0.0, 0.05, 0.0});
  EXPECT_EQ(agent.greedy_action(0), 1u);  // bias wins on all-zero Q
  EXPECT_THROW(agent.set_action_bias({1.0}), std::invalid_argument);
}

TEST(FixedAgentTest, DeterministicAcrossRuns) {
  auto run = [] {
    FixedAgentConfig config;
    config.learning.epsilon_start = 0.3;
    config.learning.epsilon_end = 0.3;
    config.learning.seed = 0x1234;
    FixedPointQAgent agent(config, 8, 3);
    std::vector<std::size_t> actions;
    for (int i = 0; i < 500; ++i) {
      const std::size_t s = i % 8;
      const std::size_t a = agent.select_action(s);
      agent.learn(s, a, -0.1 * static_cast<double>(a), (s + 1) % 8);
      actions.push_back(a);
    }
    return actions;
  };
  EXPECT_EQ(run(), run());
}

// Precision sweep: the fixed agent's bandit solution approaches the float
// agent's as fractional bits grow.
class FixedPrecisionSweep : public ::testing::TestWithParam<unsigned> {};

TEST_P(FixedPrecisionSweep, BanditErrorBoundedByLsb) {
  const unsigned frac = GetParam();
  FixedAgentConfig config = greedy_fixed(frac);
  config.learning.alpha = 0.25;
  config.learning.gamma = 0.0;
  FixedPointQAgent agent(config, 1, 1);
  const double target = -0.8125;  // exactly representable at frac >= 4
  for (int i = 0; i < 400; ++i) agent.learn(0, 0, target, 0);
  // Steady-state error is bounded by a few LSBs (truncation bias in the
  // alpha multiply).
  EXPECT_NEAR(agent.q_value(0, 0), target, 8.0 * agent.format().lsb());
}

INSTANTIATE_TEST_SUITE_P(FracBits, FixedPrecisionSweep,
                         ::testing::Values(4u, 6u, 8u, 10u, 12u));

}  // namespace
}  // namespace pmrl::rl
