#pragma once
// Test helper: builds PolicyObservation fixtures without running a full
// simulation, so governor/agent unit tests can probe specific operating
// points directly.

#include "governors/governor.hpp"

namespace pmrl::test {

/// Parameters of one synthetic cluster observation.
struct ClusterSpec {
  std::size_t opp_index = 0;
  std::size_t opp_count = 19;
  double max_freq_hz = 2.0e9;
  double util_max = 0.0;
  double util_avg = 0.0;
  std::size_t overdue = 0;
  double max_power_w = 6.8;
};

inline governors::PolicyObservation make_observation(
    const std::vector<ClusterSpec>& specs, double time_s = 1.0) {
  governors::PolicyObservation obs;
  obs.soc.time_s = time_s;
  obs.epoch_duration_s = 0.02;
  for (std::size_t i = 0; i < specs.size(); ++i) {
    const auto& spec = specs[i];
    soc::ClusterTelemetry ct;
    ct.cluster_id = i;
    ct.opp_index = spec.opp_index;
    ct.opp_count = spec.opp_count;
    ct.max_freq_hz = spec.max_freq_hz;
    // Uniform-step table starting at 10% of f_max (Exynos-like shape).
    const double f_lo = spec.max_freq_hz * 0.1;
    ct.freq_hz = f_lo + (spec.max_freq_hz - f_lo) *
                            static_cast<double>(spec.opp_index) /
                            static_cast<double>(spec.opp_count - 1);
    ct.voltage_v = 1.0;
    ct.util_max = spec.util_max;
    ct.util_avg = spec.util_avg > 0.0 ? spec.util_avg : spec.util_max;
    ct.util_invariant = ct.util_avg * ct.freq_hz / ct.max_freq_hz;
    ct.busy_avg = ct.util_avg;
    ct.overdue_jobs = spec.overdue;
    ct.max_power_w = spec.max_power_w;
    obs.soc.clusters.push_back(ct);
    obs.cluster_feedback.emplace_back();
  }
  return obs;
}

/// Single-cluster convenience.
inline governors::PolicyObservation single_cluster(double util_max,
                                                   std::size_t opp_index,
                                                   std::size_t opp_count =
                                                       19) {
  return make_observation({ClusterSpec{opp_index, opp_count, 2.0e9,
                                       util_max, util_max, 0, 6.8}});
}

}  // namespace pmrl::test
