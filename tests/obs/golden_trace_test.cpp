// Golden-trace regression tests: short canonical runs (default SoC, 1 s)
// serialized as CSV and compared byte-for-byte against committed goldens
// under tests/data/. Any behavioural drift in the SoC model, scheduler,
// governors, reward chain, or trace schema shows up here as a diff, with
// the first diverging line/epoch reported.
//
// Regenerating (after an INTENDED behaviour change, reviewed like code):
//   PMRL_REGEN_GOLDEN=1 ./build/tests/test_obs
// then commit the rewritten tests/data/golden_*.csv files. See DESIGN.md.

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "core/engine.hpp"
#include "governors/registry.hpp"
#include "obs/trace_sink.hpp"
#include "rl/rl_governor.hpp"
#include "util/csv.hpp"
#include "workload/scenarios.hpp"

namespace obs = pmrl::obs;

namespace {

constexpr std::uint64_t kSeed = 1234;

std::string data_path(const std::string& name) {
  return std::string(PMRL_TEST_DATA_DIR) + "/" + name;
}

// One canonical run: default SoC, 1 simulated second, fixed seed. The
// governor's own Decision events (rl-greedy) interleave with the engine's
// Epoch events in the same sink.
std::string record_trace(pmrl::workload::ScenarioKind kind,
                         const std::string& governor_name) {
  pmrl::core::EngineConfig engine_config;
  engine_config.duration_s = 1.0;
  pmrl::core::SimEngine engine(pmrl::soc::default_mobile_soc_config(),
                               engine_config);
  obs::VectorTraceSink sink;
  engine.set_trace_sink(&sink);

  auto scenario = pmrl::workload::make_scenario(kind, kSeed);
  if (governor_name == "rl-greedy") {
    pmrl::rl::RlGovernor governor(pmrl::rl::RlGovernorConfig{},
                                  /*cluster_count=*/2);
    governor.set_frozen(true);  // pure greedy: no exploration, no learning
    governor.set_trace_sink(&sink);
    engine.run(*scenario, governor);
  } else {
    auto governor = pmrl::governors::make_governor(governor_name);
    engine.run(*scenario, *governor);
  }

  std::ostringstream out;
  const auto& events = sink.events();
  obs::write_csv_trace(out, events, obs::trace_cluster_count(events));
  return out.str();
}

std::vector<std::string> split_lines(const std::string& text) {
  std::vector<std::string> lines;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  return lines;
}

// On mismatch, name the first diverging line and the epoch it belongs to —
// "epoch 37 diverged" localizes a model drift far faster than a raw diff.
void compare_against_golden(const std::string& golden_name,
                            const std::string& actual) {
  const std::string path = data_path(golden_name);
  if (std::getenv("PMRL_REGEN_GOLDEN") != nullptr) {
    std::ofstream out(path, std::ios::binary);
    ASSERT_TRUE(out) << "cannot write " << path;
    out << actual;
    GTEST_SKIP() << "regenerated " << path;
  }

  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in) << "missing golden " << path
                  << " (regenerate with PMRL_REGEN_GOLDEN=1)";
  std::ostringstream golden_stream;
  golden_stream << in.rdbuf();
  const std::string golden = golden_stream.str();
  if (actual == golden) return;

  const auto actual_lines = split_lines(actual);
  const auto golden_lines = split_lines(golden);
  const std::size_t n = std::min(actual_lines.size(), golden_lines.size());
  for (std::size_t i = 0; i < n; ++i) {
    if (actual_lines[i] == golden_lines[i]) continue;
    // Row layout: kind,epoch,... (see trace_csv_header).
    const auto fields = pmrl::CsvReader::parse_string(actual_lines[i]);
    std::string kind = "?", epoch = "?";
    if (!fields.empty() && fields.front().size() >= 2) {
      kind = fields.front()[0];
      epoch = fields.front()[1];
    }
    FAIL() << golden_name << ": first divergence at line " << (i + 1)
           << " (event kind=" << kind << ", epoch=" << epoch << ")\n"
           << "  golden: " << golden_lines[i] << "\n"
           << "  actual: " << actual_lines[i];
  }
  FAIL() << golden_name << ": traces identical for " << n
         << " lines, then lengths diverge (golden " << golden_lines.size()
         << " lines, actual " << actual_lines.size() << ")";
}

}  // namespace

TEST(GoldenTrace, VideoOndemand) {
  compare_against_golden(
      "golden_video_ondemand.csv",
      record_trace(pmrl::workload::ScenarioKind::VideoPlayback, "ondemand"));
}

TEST(GoldenTrace, VideoRlGreedy) {
  compare_against_golden(
      "golden_video_rl-greedy.csv",
      record_trace(pmrl::workload::ScenarioKind::VideoPlayback, "rl-greedy"));
}

TEST(GoldenTrace, AudioIdleOndemand) {
  compare_against_golden(
      "golden_audioidle_ondemand.csv",
      record_trace(pmrl::workload::ScenarioKind::AudioIdle, "ondemand"));
}

TEST(GoldenTrace, AudioIdleRlGreedy) {
  compare_against_golden(
      "golden_audioidle_rl-greedy.csv",
      record_trace(pmrl::workload::ScenarioKind::AudioIdle, "rl-greedy"));
}
