// Trace determinism across the run farm: because events carry only
// simulation-derived values and every spec owns its sink, the serialized
// trace of a spec run on a 4-thread farm must be byte-identical to the
// serial run's. This is the acceptance gate for the observability layer —
// any wall-clock, thread-id, or shared-RNG leak into an event breaks it.

#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "core/runfarm/runfarm.hpp"
#include "governors/registry.hpp"
#include "obs/metrics.hpp"
#include "obs/trace_sink.hpp"
#include "workload/scenarios.hpp"

namespace obs = pmrl::obs;
namespace runfarm = pmrl::core::runfarm;
namespace pmrl_gov = pmrl::governors;
namespace workload = pmrl::workload;

namespace {

pmrl::core::EngineConfig short_run() {
  pmrl::core::EngineConfig config;
  config.duration_s = 1.0;
  return config;
}

std::vector<runfarm::RunSpec> trace_specs(
    std::vector<std::unique_ptr<obs::VectorTraceSink>>& sinks) {
  std::vector<runfarm::RunSpec> specs;
  const workload::ScenarioKind kinds[] = {
      workload::ScenarioKind::VideoPlayback, workload::ScenarioKind::Mixed,
      workload::ScenarioKind::AudioIdle};
  const char* names[] = {"ondemand", "schedutil"};
  std::uint64_t seed = 42;
  for (const auto kind : kinds) {
    for (const char* name : names) {
      runfarm::RunSpec spec;
      spec.kind = kind;
      spec.seed = seed++;
      const std::string governor = name;
      spec.make_governor = [governor] {
        return pmrl_gov::make_governor(governor);
      };
      sinks.push_back(std::make_unique<obs::VectorTraceSink>());
      spec.trace_sink = sinks.back().get();
      specs.push_back(std::move(spec));
    }
  }
  return specs;
}

std::string serialize(const std::vector<obs::TraceEvent>& events) {
  std::ostringstream out;
  obs::write_csv_trace(out, events, obs::trace_cluster_count(events));
  return out.str();
}

}  // namespace

TEST(FarmTrace, FourThreadFarmTraceByteIdenticalToSerial) {
  const auto soc_config = pmrl::soc::default_mobile_soc_config();

  std::vector<std::unique_ptr<obs::VectorTraceSink>> serial_sinks;
  auto serial_specs = trace_specs(serial_sinks);
  runfarm::RunFarm serial(soc_config, short_run(), 1);
  serial.run_all(serial_specs);

  std::vector<std::unique_ptr<obs::VectorTraceSink>> farm_sinks;
  auto farm_specs = trace_specs(farm_sinks);
  runfarm::RunFarm threaded(soc_config, short_run(), 4);
  threaded.run_all(farm_specs);

  ASSERT_EQ(serial_sinks.size(), farm_sinks.size());
  for (std::size_t i = 0; i < serial_sinks.size(); ++i) {
    ASSERT_FALSE(serial_sinks[i]->events().empty()) << "spec " << i;
    // Structural equality first (better failure message granularity)...
    EXPECT_EQ(serial_sinks[i]->events(), farm_sinks[i]->events())
        << "spec " << i;
    // ...then the literal byte-identity contract on the serialized form.
    EXPECT_EQ(serialize(serial_sinks[i]->events()),
              serialize(farm_sinks[i]->events()))
        << "spec " << i;
  }
}

TEST(FarmTrace, TraceShapePerRun) {
  // Each run's trace: one RunBegin, one Epoch per decision epoch, one
  // RunEnd, in that order, with monotone cumulative energy.
  std::vector<std::unique_ptr<obs::VectorTraceSink>> sinks;
  auto specs = trace_specs(sinks);
  runfarm::RunFarm farm(pmrl::soc::tiny_test_soc_config(), short_run(), 2);
  farm.run_all(specs);

  for (std::size_t i = 0; i < sinks.size(); ++i) {
    const auto& events = sinks[i]->events();
    ASSERT_GE(events.size(), 3u) << "spec " << i;
    EXPECT_EQ(events.front().kind, obs::EventKind::RunBegin);
    EXPECT_EQ(events.back().kind, obs::EventKind::RunEnd);
    double last_total = 0.0;
    for (const auto& event : events) {
      if (event.kind != obs::EventKind::Epoch) continue;
      EXPECT_GE(event.total_energy_j, last_total);
      last_total = event.total_energy_j;
    }
    EXPECT_GT(last_total, 0.0) << "spec " << i;
  }
}

TEST(FarmTrace, MetricsAggregateAcrossThreads) {
  std::vector<std::unique_ptr<obs::VectorTraceSink>> sinks;
  auto specs = trace_specs(sinks);
  obs::MetricsRegistry registry;
  runfarm::RunFarm farm(pmrl::soc::tiny_test_soc_config(), short_run(), 4);
  farm.set_metrics(&registry);
  farm.run_all(specs);

  EXPECT_EQ(registry.counter("farm.batches").value(), 1u);
  EXPECT_EQ(registry.counter("farm.runs").value(), specs.size());
  EXPECT_EQ(registry.counter("engine.runs").value(), specs.size());
  EXPECT_DOUBLE_EQ(registry.gauge("farm.jobs").value(), 4.0);
  // 1 s at 20 ms epochs = 50 epochs per run.
  EXPECT_EQ(registry.counter("engine.epochs").value(), specs.size() * 50u);
  EXPECT_EQ(registry.histogram("farm.queue_depth").count(), specs.size());
}
