// Profiler / ScopedTimer unit tests.

#include "obs/profiler.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace obs = pmrl::obs;

TEST(TimerStat, AccumulatesTimeAndCalls) {
  obs::TimerStat stat;
  stat.add(1'000'000'000, 2);
  stat.add(500'000'000);
  EXPECT_EQ(stat.total_ns(), 1'500'000'000u);
  EXPECT_EQ(stat.calls(), 3u);
  EXPECT_DOUBLE_EQ(stat.total_s(), 1.5);
  EXPECT_DOUBLE_EQ(stat.mean_s(), 0.5);
}

TEST(TimerStat, EmptyMeanIsZero) {
  obs::TimerStat stat;
  EXPECT_DOUBLE_EQ(stat.mean_s(), 0.0);
}

TEST(Profiler, TimerReferencesAreStable) {
  obs::Profiler profiler;
  obs::TimerStat& a = profiler.timer("a");
  profiler.timer("b");
  profiler.timer("c");
  EXPECT_EQ(&profiler.timer("a"), &a);
  EXPECT_EQ(profiler.names().size(), 3u);
}

TEST(Profiler, ScopedTimerChargesOnDestruction) {
  obs::Profiler profiler;
  obs::TimerStat& stat = profiler.timer("region");
  {
    obs::ScopedTimer timer(&stat);
  }
  EXPECT_EQ(stat.calls(), 1u);
}

TEST(Profiler, NullScopedTimerIsANoOp) {
  obs::ScopedTimer timer(nullptr);  // must not crash or record anything
}

TEST(Profiler, ReportAndJsonNameEveryTimer) {
  obs::Profiler profiler;
  profiler.timer("engine.ticks").add(2'000'000'000, 4);
  profiler.timer("engine.decisions").add(1'000'000'000, 4);
  std::ostringstream report;
  profiler.write_report(report);
  EXPECT_NE(report.str().find("engine.ticks"), std::string::npos);
  EXPECT_NE(report.str().find("engine.decisions"), std::string::npos);
  // Sorted by total time descending: ticks before decisions.
  EXPECT_LT(report.str().find("engine.ticks"),
            report.str().find("engine.decisions"));
  std::ostringstream json;
  profiler.write_json(json);
  EXPECT_NE(json.str().find("\"engine.ticks\""), std::string::npos);
  EXPECT_NE(json.str().find("\"total_s\""), std::string::npos);
}
