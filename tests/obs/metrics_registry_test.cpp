// MetricsRegistry unit tests plus a multi-threaded hammer: instruments
// must aggregate exactly under concurrent use (run the test binary with
// -DPMRL_SANITIZE=thread to let TSan check the locking).

#include "obs/metrics.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>
#include <thread>
#include <vector>

namespace obs = pmrl::obs;

TEST(MetricsRegistry, CounterAccumulates) {
  obs::MetricsRegistry registry;
  obs::Counter& c = registry.counter("epochs");
  EXPECT_EQ(c.value(), 0u);
  c.inc();
  c.inc(41);
  EXPECT_EQ(c.value(), 42u);
  // Same name resolves to the same instrument.
  EXPECT_EQ(&registry.counter("epochs"), &c);
}

TEST(MetricsRegistry, GaugeTracksValueAndMax) {
  obs::MetricsRegistry registry;
  obs::Gauge& g = registry.gauge("epsilon");
  g.set(0.6);
  g.set(0.9);
  g.set(0.1);
  EXPECT_DOUBLE_EQ(g.value(), 0.1);
  EXPECT_DOUBLE_EQ(g.max(), 0.9);
}

TEST(MetricsRegistry, HistogramBucketsAndMean) {
  obs::MetricsRegistry registry;
  obs::Histogram& h = registry.histogram("latency", {1.0, 10.0});
  h.observe(0.5);   // bucket 0 (<= 1)
  h.observe(5.0);   // bucket 1 (<= 10)
  h.observe(50.0);  // overflow bucket
  EXPECT_EQ(h.count(), 3u);
  EXPECT_DOUBLE_EQ(h.sum(), 55.5);
  EXPECT_DOUBLE_EQ(h.mean(), 18.5);
  ASSERT_EQ(h.bounds().size(), 2u);
  EXPECT_EQ(h.bucket_count(0), 1u);
  EXPECT_EQ(h.bucket_count(1), 1u);
  EXPECT_EQ(h.bucket_count(2), 1u);  // +inf overflow bucket
}

TEST(MetricsRegistry, PercentileInterpolatesWithinBucket) {
  obs::MetricsRegistry registry;
  obs::Histogram& h = registry.histogram("lat", {1.0, 2.0, 4.0});
  // 10 observations spread 4 / 4 / 2 across the finite buckets.
  for (int i = 0; i < 4; ++i) h.observe(0.5);
  for (int i = 0; i < 4; ++i) h.observe(1.5);
  for (int i = 0; i < 2; ++i) h.observe(3.0);
  // rank(0.5) = 5 lands 1 deep into the 4-wide (1.0, 2.0] bucket.
  EXPECT_NEAR(h.percentile(0.5), 1.25, 1e-9);
  // rank(0.2) = 2 is halfway through the first bucket (from 0 to 1.0).
  EXPECT_NEAR(h.percentile(0.2), 0.5, 1e-9);
  // rank(0.9) = 9 is halfway through the last finite bucket (2.0, 4.0].
  EXPECT_NEAR(h.percentile(0.9), 3.0, 1e-9);
  // Quantile extremes stay within the observed range.
  EXPECT_GE(h.percentile(0.0), 0.0);
  EXPECT_LE(h.percentile(1.0), 4.0);
}

TEST(MetricsRegistry, HistogramMergeFoldsShards) {
  obs::Histogram a({1.0, 10.0});
  obs::Histogram b({1.0, 10.0});
  a.observe(0.5);
  a.observe(5.0);
  b.observe(5.0);
  b.observe(50.0);
  a.merge(b);
  EXPECT_EQ(a.count(), 4u);
  EXPECT_DOUBLE_EQ(a.sum(), 60.5);
  EXPECT_EQ(a.bucket_count(0), 1u);
  EXPECT_EQ(a.bucket_count(1), 2u);
  EXPECT_EQ(a.bucket_count(2), 1u);
  // The merged-into histogram keeps accepting observations.
  a.observe(0.25);
  EXPECT_EQ(a.bucket_count(0), 2u);
  // b is untouched.
  EXPECT_EQ(b.count(), 2u);
}

TEST(MetricsRegistry, HistogramMergeRejectsMismatchedBounds) {
  obs::Histogram a({1.0, 10.0});
  obs::Histogram b({1.0, 20.0});
  EXPECT_THROW(a.merge(b), std::invalid_argument);
}

TEST(MetricsRegistry, PercentileEdgeCases) {
  obs::MetricsRegistry registry;
  obs::Histogram& empty = registry.histogram("empty", {1.0, 2.0});
  EXPECT_DOUBLE_EQ(empty.percentile(0.5), 0.0);

  // Ranks landing in the +inf bucket clamp to the highest finite bound.
  obs::Histogram& inf = registry.histogram("inf", {1.0, 2.0});
  for (int i = 0; i < 10; ++i) inf.observe(100.0);
  EXPECT_DOUBLE_EQ(inf.percentile(0.99), 2.0);
}

TEST(MetricsRegistry, JsonHistogramsCarryPercentiles) {
  obs::MetricsRegistry registry;
  obs::Histogram& h = registry.histogram("serve.latency", {0.001, 0.01});
  for (int i = 0; i < 100; ++i) h.observe(0.0005);
  const std::string json = registry.to_json();
  EXPECT_NE(json.find("\"p50\""), std::string::npos);
  EXPECT_NE(json.find("\"p90\""), std::string::npos);
  EXPECT_NE(json.find("\"p95\""), std::string::npos);
  EXPECT_NE(json.find("\"p99\""), std::string::npos);
}

TEST(MetricsRegistry, KindMismatchThrows) {
  obs::MetricsRegistry registry;
  registry.counter("x");
  EXPECT_THROW(registry.gauge("x"), std::invalid_argument);
  EXPECT_THROW(registry.histogram("x"), std::invalid_argument);
}

TEST(MetricsRegistry, NamesSorted) {
  obs::MetricsRegistry registry;
  registry.counter("b");
  registry.gauge("a");
  registry.histogram("c");
  const auto names = registry.names();
  ASSERT_EQ(names.size(), 3u);
  EXPECT_EQ(names[0], "a");
  EXPECT_EQ(names[1], "b");
  EXPECT_EQ(names[2], "c");
}

TEST(MetricsRegistry, JsonContainsEveryInstrument) {
  obs::MetricsRegistry registry;
  registry.counter("engine.runs").inc(3);
  registry.gauge("rl.epsilon").set(0.25);
  registry.histogram("farm.queue_depth", {1.0}).observe(0.0);
  const std::string json = registry.to_json();
  EXPECT_NE(json.find("\"engine.runs\""), std::string::npos);
  EXPECT_NE(json.find("\"rl.epsilon\""), std::string::npos);
  EXPECT_NE(json.find("\"farm.queue_depth\""), std::string::npos);
  std::ostringstream out;
  registry.write_json(out);
  EXPECT_EQ(out.str(), json);
}

// The farm hammer: many threads create/resolve instruments by name and
// bump them concurrently; totals must be exact and references stable.
TEST(MetricsRegistry, ThreadSafeUnderConcurrentUse) {
  obs::MetricsRegistry registry;
  constexpr int kThreads = 8;
  constexpr int kIters = 5000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&registry, t] {
      // Half the threads resolve the shared names every iteration (lock
      // contention path), the rest cache the reference (hot path).
      obs::Counter& cached = registry.counter("shared.counter");
      obs::Histogram& hist = registry.histogram("shared.hist", {10.0});
      for (int i = 0; i < kIters; ++i) {
        if (t % 2 == 0) {
          registry.counter("shared.counter").inc();
        } else {
          cached.inc();
        }
        registry.gauge("shared.gauge").set(static_cast<double>(i));
        hist.observe(static_cast<double>(i % 20));
        registry.counter("thread." + std::to_string(t)).inc();
      }
    });
  }
  for (auto& thread : threads) thread.join();

  EXPECT_EQ(registry.counter("shared.counter").value(),
            static_cast<std::uint64_t>(kThreads) * kIters);
  EXPECT_EQ(registry.histogram("shared.hist").count(),
            static_cast<std::uint64_t>(kThreads) * kIters);
  EXPECT_DOUBLE_EQ(registry.gauge("shared.gauge").max(),
                   static_cast<double>(kIters - 1));
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(registry.counter("thread." + std::to_string(t)).value(),
              static_cast<std::uint64_t>(kIters));
  }
  // Histogram sum: kIters/20 full cycles of 0..19 per thread.
  const double cycle_sum = 190.0;  // sum 0..19
  EXPECT_DOUBLE_EQ(
      registry.histogram("shared.hist").sum(),
      cycle_sum * (kIters / 20) * kThreads);
}
