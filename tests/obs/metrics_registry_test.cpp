// MetricsRegistry unit tests plus a multi-threaded hammer: instruments
// must aggregate exactly under concurrent use (run the test binary with
// -DPMRL_SANITIZE=thread to let TSan check the locking).

#include "obs/metrics.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <thread>
#include <vector>

namespace obs = pmrl::obs;

TEST(MetricsRegistry, CounterAccumulates) {
  obs::MetricsRegistry registry;
  obs::Counter& c = registry.counter("epochs");
  EXPECT_EQ(c.value(), 0u);
  c.inc();
  c.inc(41);
  EXPECT_EQ(c.value(), 42u);
  // Same name resolves to the same instrument.
  EXPECT_EQ(&registry.counter("epochs"), &c);
}

TEST(MetricsRegistry, GaugeTracksValueAndMax) {
  obs::MetricsRegistry registry;
  obs::Gauge& g = registry.gauge("epsilon");
  g.set(0.6);
  g.set(0.9);
  g.set(0.1);
  EXPECT_DOUBLE_EQ(g.value(), 0.1);
  EXPECT_DOUBLE_EQ(g.max(), 0.9);
}

TEST(MetricsRegistry, HistogramBucketsAndMean) {
  obs::MetricsRegistry registry;
  obs::Histogram& h = registry.histogram("latency", {1.0, 10.0});
  h.observe(0.5);   // bucket 0 (<= 1)
  h.observe(5.0);   // bucket 1 (<= 10)
  h.observe(50.0);  // overflow bucket
  EXPECT_EQ(h.count(), 3u);
  EXPECT_DOUBLE_EQ(h.sum(), 55.5);
  EXPECT_DOUBLE_EQ(h.mean(), 18.5);
  ASSERT_EQ(h.bounds().size(), 2u);
  EXPECT_EQ(h.bucket_count(0), 1u);
  EXPECT_EQ(h.bucket_count(1), 1u);
  EXPECT_EQ(h.bucket_count(2), 1u);  // +inf overflow bucket
}

TEST(MetricsRegistry, KindMismatchThrows) {
  obs::MetricsRegistry registry;
  registry.counter("x");
  EXPECT_THROW(registry.gauge("x"), std::invalid_argument);
  EXPECT_THROW(registry.histogram("x"), std::invalid_argument);
}

TEST(MetricsRegistry, NamesSorted) {
  obs::MetricsRegistry registry;
  registry.counter("b");
  registry.gauge("a");
  registry.histogram("c");
  const auto names = registry.names();
  ASSERT_EQ(names.size(), 3u);
  EXPECT_EQ(names[0], "a");
  EXPECT_EQ(names[1], "b");
  EXPECT_EQ(names[2], "c");
}

TEST(MetricsRegistry, JsonContainsEveryInstrument) {
  obs::MetricsRegistry registry;
  registry.counter("engine.runs").inc(3);
  registry.gauge("rl.epsilon").set(0.25);
  registry.histogram("farm.queue_depth", {1.0}).observe(0.0);
  const std::string json = registry.to_json();
  EXPECT_NE(json.find("\"engine.runs\""), std::string::npos);
  EXPECT_NE(json.find("\"rl.epsilon\""), std::string::npos);
  EXPECT_NE(json.find("\"farm.queue_depth\""), std::string::npos);
  std::ostringstream out;
  registry.write_json(out);
  EXPECT_EQ(out.str(), json);
}

// The farm hammer: many threads create/resolve instruments by name and
// bump them concurrently; totals must be exact and references stable.
TEST(MetricsRegistry, ThreadSafeUnderConcurrentUse) {
  obs::MetricsRegistry registry;
  constexpr int kThreads = 8;
  constexpr int kIters = 5000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&registry, t] {
      // Half the threads resolve the shared names every iteration (lock
      // contention path), the rest cache the reference (hot path).
      obs::Counter& cached = registry.counter("shared.counter");
      obs::Histogram& hist = registry.histogram("shared.hist", {10.0});
      for (int i = 0; i < kIters; ++i) {
        if (t % 2 == 0) {
          registry.counter("shared.counter").inc();
        } else {
          cached.inc();
        }
        registry.gauge("shared.gauge").set(static_cast<double>(i));
        hist.observe(static_cast<double>(i % 20));
        registry.counter("thread." + std::to_string(t)).inc();
      }
    });
  }
  for (auto& thread : threads) thread.join();

  EXPECT_EQ(registry.counter("shared.counter").value(),
            static_cast<std::uint64_t>(kThreads) * kIters);
  EXPECT_EQ(registry.histogram("shared.hist").count(),
            static_cast<std::uint64_t>(kThreads) * kIters);
  EXPECT_DOUBLE_EQ(registry.gauge("shared.gauge").max(),
                   static_cast<double>(kIters - 1));
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(registry.counter("thread." + std::to_string(t)).value(),
              static_cast<std::uint64_t>(kIters));
  }
  // Histogram sum: kIters/20 full cycles of 0..19 per thread.
  const double cycle_sum = 190.0;  // sum 0..19
  EXPECT_DOUBLE_EQ(
      registry.histogram("shared.hist").sum(),
      cycle_sum * (kIters / 20) * kThreads);
}
