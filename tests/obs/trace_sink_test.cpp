// Round-trip tests for every trace serialization (CSV, JSONL, binary) plus
// sink behaviour. The escaping edge cases (commas, quotes, newlines,
// backslashes, control bytes in `detail`) must survive a full
// write-then-parse cycle bit-identically, and the CSV output must stay
// readable by the stock pmrl::CsvReader.

#include "obs/trace_sink.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "util/csv.hpp"

namespace obs = pmrl::obs;

namespace {

obs::TraceEvent make_event(obs::EventKind kind, std::uint64_t epoch,
                           std::size_t clusters) {
  obs::TraceEvent event;
  event.kind = kind;
  event.epoch = epoch;
  event.time_s = 0.02 * static_cast<double>(epoch + 1);
  event.index = static_cast<std::uint32_t>(epoch % 3);
  event.state = 12345 + epoch;
  event.action = static_cast<std::uint32_t>(epoch % 5);
  event.reward = -0.125 + 0.001 * static_cast<double>(epoch);
  event.energy_j = 0.0123456789012345678;
  event.total_energy_j = 1.1 * static_cast<double>(epoch + 1);
  event.quality = 0.75;
  event.violations = epoch;
  event.releases = epoch * 2;
  event.power_w = 1.5;
  event.latency_s = 3.2e-6;
  event.value = 0.5;
  event.detail = "scenario/governor";
  for (std::size_t c = 0; c < clusters; ++c) {
    obs::ClusterSample sample;
    sample.opp_index = static_cast<std::uint32_t>(c + epoch);
    sample.freq_hz = 1.8e9 + 1e6 * static_cast<double>(c);
    sample.util_avg = 0.333333333333333315;
    sample.energy_j = 0.001 * static_cast<double>(c + 1);
    sample.temp_c = 45.5;
    event.clusters.push_back(sample);
  }
  return event;
}

std::vector<obs::TraceEvent> sample_trace() {
  std::vector<obs::TraceEvent> events;
  events.push_back(make_event(obs::EventKind::RunBegin, 0, 2));
  events.push_back(make_event(obs::EventKind::Epoch, 0, 2));
  events.push_back(make_event(obs::EventKind::Decision, 0, 0));
  events.push_back(make_event(obs::EventKind::Fault, 1, 0));
  events.push_back(make_event(obs::EventKind::Watchdog, 1, 0));
  events.push_back(make_event(obs::EventKind::HwInvoke, 2, 0));
  events.push_back(make_event(obs::EventKind::RunEnd, 3, 2));
  return events;
}

// Strings that stress both the RFC 4180 CSV quoting and the JSON string
// escaper.
const char* kNastyDetails[] = {
    "plain",
    "comma,separated,value",
    "double\"quote",
    "line\nbreak",
    "carriage\rreturn",
    "tab\there",
    "back\\slash",
    "quote\"and,comma\nand newline",
    "trailing space ",
    "\x01control\x1f bytes",
    "",
};

}  // namespace

TEST(TraceEventKind, NamesRoundTrip) {
  for (auto kind :
       {obs::EventKind::RunBegin, obs::EventKind::Epoch,
        obs::EventKind::Decision, obs::EventKind::Fault,
        obs::EventKind::Watchdog, obs::EventKind::HwInvoke,
        obs::EventKind::RunEnd}) {
    const auto parsed = obs::event_kind_from_name(obs::event_kind_name(kind));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, kind);
  }
  EXPECT_FALSE(obs::event_kind_from_name("bogus").has_value());
}

TEST(TraceCsv, RoundTripsBitIdentically) {
  const auto events = sample_trace();
  std::ostringstream out;
  obs::write_csv_trace(out, events, obs::trace_cluster_count(events));
  std::istringstream in(out.str());
  const auto parsed = obs::read_csv_trace(in);
  EXPECT_EQ(parsed, events);
}

TEST(TraceCsv, EscapingEdgeCasesSurvive) {
  std::vector<obs::TraceEvent> events;
  for (const char* detail : kNastyDetails) {
    auto event = make_event(obs::EventKind::Fault, events.size(), 1);
    event.detail = detail;
    events.push_back(event);
  }
  std::ostringstream out;
  obs::write_csv_trace(out, events, 1);
  std::istringstream in(out.str());
  const auto parsed = obs::read_csv_trace(in);
  EXPECT_EQ(parsed, events);
}

TEST(TraceCsv, ReadableByStockCsvReader) {
  const auto events = sample_trace();
  const std::size_t clusters = obs::trace_cluster_count(events);
  std::ostringstream out;
  obs::write_csv_trace(out, events, clusters);
  const auto rows = pmrl::CsvReader::parse_string(out.str());
  ASSERT_EQ(rows.size(), events.size() + 1);  // header + one row per event
  const auto header = obs::trace_csv_header(clusters);
  EXPECT_EQ(rows.front(), header);
  for (const auto& row : rows) EXPECT_EQ(row.size(), header.size());
}

TEST(TraceCsv, StreamingSinkMatchesBufferedWriter) {
  const auto events = sample_trace();
  const std::size_t clusters = obs::trace_cluster_count(events);
  std::ostringstream buffered;
  obs::write_csv_trace(buffered, events, clusters);

  std::ostringstream streamed;
  obs::CsvTraceSink sink(streamed, clusters);
  for (const auto& event : events) sink.record(event);
  sink.flush();
  EXPECT_EQ(streamed.str(), buffered.str());
}

TEST(TraceCsv, RejectsMalformedWidth) {
  std::istringstream in("kind,epoch\nepoch,0\n");
  EXPECT_THROW(obs::read_csv_trace(in), std::runtime_error);
}

TEST(TraceJsonl, RoundTripsBitIdentically) {
  for (const auto& event : sample_trace()) {
    const std::string line = obs::trace_jsonl_line(event);
    EXPECT_EQ(obs::trace_from_jsonl_line(line), event) << line;
  }
}

TEST(TraceJsonl, EscapingEdgeCasesSurvive) {
  for (const char* detail : kNastyDetails) {
    auto event = make_event(obs::EventKind::Watchdog, 7, 0);
    event.detail = detail;
    const std::string line = obs::trace_jsonl_line(event);
    // One event == one line: escaping must keep newlines out of the payload.
    EXPECT_EQ(line.find('\n'), std::string::npos);
    EXPECT_EQ(obs::trace_from_jsonl_line(line), event) << line;
  }
}

TEST(TraceJsonl, SinkWritesOneLinePerEvent) {
  const auto events = sample_trace();
  std::ostringstream out;
  obs::JsonlTraceSink sink(out);
  for (const auto& event : events) sink.record(event);
  sink.flush();

  std::istringstream in(out.str());
  std::string line;
  std::size_t i = 0;
  while (std::getline(in, line)) {
    ASSERT_LT(i, events.size());
    EXPECT_EQ(obs::trace_from_jsonl_line(line), events[i]);
    ++i;
  }
  EXPECT_EQ(i, events.size());
}

TEST(TraceJsonl, RejectsMalformedLine) {
  EXPECT_THROW(obs::trace_from_jsonl_line("{\"kind\":"), std::runtime_error);
  EXPECT_THROW(obs::trace_from_jsonl_line("not json"), std::runtime_error);
}

TEST(TraceBinary, RoundTripsBitIdentically) {
  auto events = sample_trace();
  events[1].detail = "comma,\"quote\"\nnewline\\";
  std::ostringstream out(std::ios::binary);
  obs::write_binary_trace(out, events);
  std::istringstream in(out.str(), std::ios::binary);
  EXPECT_EQ(obs::read_binary_trace(in), events);
}

TEST(TraceBinary, RejectsBadMagic) {
  std::istringstream in("NOTATRACE", std::ios::binary);
  EXPECT_THROW(obs::read_binary_trace(in), std::runtime_error);
}

TEST(VectorTraceSink, KeepsEventsInOrder) {
  obs::VectorTraceSink sink;
  const auto events = sample_trace();
  for (const auto& event : events) sink.record(event);
  EXPECT_EQ(sink.events(), events);
  const auto taken = sink.take();
  EXPECT_EQ(taken, events);
  EXPECT_TRUE(sink.events().empty());
}

TEST(RingTraceSink, KeepsLastNAndCountsDrops) {
  obs::RingTraceSink sink(3);
  std::vector<obs::TraceEvent> events;
  for (std::uint64_t i = 0; i < 7; ++i) {
    events.push_back(make_event(obs::EventKind::Epoch, i, 1));
    sink.record(events.back());
  }
  EXPECT_EQ(sink.size(), 3u);
  EXPECT_EQ(sink.dropped(), 4u);
  const auto window = sink.snapshot();
  ASSERT_EQ(window.size(), 3u);
  EXPECT_EQ(window[0], events[4]);
  EXPECT_EQ(window[2], events[6]);

  std::ostringstream out(std::ios::binary);
  sink.save(out);
  std::istringstream in(out.str(), std::ios::binary);
  EXPECT_EQ(obs::RingTraceSink::load(in), window);
}

TEST(TraceDouble, Exact17gFormatting) {
  const double values[] = {0.1, 1.0 / 3.0, 1e-300, -2.5e17,
                           0.0123456789012345678};
  for (double v : values) {
    const std::string text = obs::format_trace_double(v);
    EXPECT_EQ(std::stod(text), v) << text;
  }
}
