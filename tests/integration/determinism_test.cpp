// Reproducibility guarantees across the whole stack: identical seeds give
// bit-identical simulations, traces replay exactly, and component RNG
// streams are isolated from each other.

#include <gtest/gtest.h>

#include <optional>
#include <sstream>

#include "core/engine.hpp"
#include "governors/registry.hpp"
#include "rl/rl_governor.hpp"
#include "workload/scenarios.hpp"
#include "workload/trace.hpp"

namespace pmrl {
namespace {

core::EngineConfig short_config(double duration = 5.0) {
  core::EngineConfig config;
  config.duration_s = duration;
  return config;
}

class DeterminismPerScenario
    : public ::testing::TestWithParam<workload::ScenarioKind> {};

TEST_P(DeterminismPerScenario, BaselineRunsBitIdentical) {
  auto run_once = [&] {
    core::SimEngine engine(soc::default_mobile_soc_config(),
                           short_config());
    auto scenario = workload::make_scenario(GetParam(), 321);
    auto governor = governors::make_governor("interactive");
    return engine.run(*scenario, *governor);
  };
  const auto a = run_once();
  const auto b = run_once();
  EXPECT_DOUBLE_EQ(a.energy_j, b.energy_j);
  EXPECT_DOUBLE_EQ(a.quality, b.quality);
  EXPECT_EQ(a.violations, b.violations);
  EXPECT_EQ(a.released, b.released);
  EXPECT_EQ(a.dvfs_transitions, b.dvfs_transitions);
  EXPECT_EQ(a.mean_freq_hz, b.mean_freq_hz);
}

TEST_P(DeterminismPerScenario, RlRunsBitIdentical) {
  auto run_once = [&] {
    core::SimEngine engine(soc::default_mobile_soc_config(),
                           short_config());
    rl::RlGovernor governor(rl::RlGovernorConfig{}, 2);
    auto scenario = workload::make_scenario(GetParam(), 321);
    return engine.run(*scenario, governor);
  };
  const auto a = run_once();
  const auto b = run_once();
  EXPECT_DOUBLE_EQ(a.energy_j, b.energy_j);
  EXPECT_EQ(a.violations, b.violations);
}

INSTANTIATE_TEST_SUITE_P(
    AllScenarios, DeterminismPerScenario,
    ::testing::ValuesIn(workload::all_scenario_kinds()),
    [](const ::testing::TestParamInfo<workload::ScenarioKind>& param_info) {
      return workload::scenario_kind_name(param_info.param);
    });

TEST(DeterminismTest, TraceReplayMatchesOriginalRun) {
  // Record a gaming run, replay the trace under the same governor, and
  // demand bit-identical energy/QoS (the mechanism every cross-governor
  // comparison rests on).
  class RecordingScenario : public workload::Scenario {
   public:
    explicit RecordingScenario(workload::Scenario& inner) : inner_(inner) {}
    std::string name() const override { return inner_.name(); }
    void setup(workload::WorkloadHost& host) override {
      recorder_.emplace(host);
      inner_.setup(*recorder_);
    }
    void tick(workload::WorkloadHost&, double now_s, double dt_s) override {
      recorder_->set_now(now_s);
      inner_.tick(*recorder_, now_s, dt_s);
    }
    workload::Trace take_trace() { return recorder_->take_trace(); }

   private:
    workload::Scenario& inner_;
    std::optional<workload::TraceRecorder> recorder_;
  };

  core::SimEngine engine(soc::default_mobile_soc_config(), short_config());
  auto inner = workload::make_scenario(workload::ScenarioKind::Gaming, 55);
  RecordingScenario recording(*inner);
  auto governor = governors::make_governor("ondemand");
  const auto original = engine.run(recording, *governor);

  // Round-trip the trace through CSV for good measure.
  std::stringstream csv;
  workload::Trace trace = recording.take_trace();
  trace.save(csv);
  workload::TraceScenario replay(workload::Trace::load(csv));
  const auto replayed = engine.run(replay, *governor);

  EXPECT_DOUBLE_EQ(original.energy_j, replayed.energy_j);
  EXPECT_DOUBLE_EQ(original.quality, replayed.quality);
  EXPECT_EQ(original.violations, replayed.violations);
}

TEST(DeterminismTest, GovernorOrderDoesNotLeakState) {
  // Running governor A before B must give B the same result as running B
  // alone (fresh SoC per run; no hidden globals).
  core::SimEngine engine(soc::default_mobile_soc_config(), short_config());
  auto run_b = [&] {
    auto scenario =
        workload::make_scenario(workload::ScenarioKind::WebBrowsing, 88);
    auto governor = governors::make_governor("conservative");
    return engine.run(*scenario, *governor);
  };
  const auto b_alone = run_b();
  {
    auto scenario =
        workload::make_scenario(workload::ScenarioKind::WebBrowsing, 88);
    auto governor = governors::make_governor("performance");
    engine.run(*scenario, *governor);
  }
  const auto b_after_a = run_b();
  EXPECT_DOUBLE_EQ(b_alone.energy_j, b_after_a.energy_j);
  EXPECT_EQ(b_alone.violations, b_after_a.violations);
}

TEST(DeterminismTest, DifferentWorkloadSeedsDiffer) {
  core::SimEngine engine(soc::default_mobile_soc_config(), short_config());
  auto run_seed = [&](std::uint64_t seed) {
    auto scenario =
        workload::make_scenario(workload::ScenarioKind::Mixed, seed);
    auto governor = governors::make_governor("ondemand");
    return engine.run(*scenario, *governor).energy_j;
  };
  EXPECT_NE(run_seed(1), run_seed(2));
}

}  // namespace
}  // namespace pmrl
