// Bit-exactness of the hardware policy: the cycle-accurate datapath model
// and a standalone fixed-point agent fed the same invocation stream must
// produce identical actions and identical Q memories — the property that
// lets the latency experiment claim "same algorithm, different latency".

#include <gtest/gtest.h>

#include "core/engine.hpp"
#include "hw/latency.hpp"
#include "rl/trainer.hpp"
#include "rl/rl_governor.hpp"
#include "workload/scenarios.hpp"

namespace pmrl {
namespace {

rl::FixedAgentConfig exploring_agent(std::uint16_t seed = 0x5a5a) {
  rl::FixedAgentConfig config;
  config.learning.epsilon_start = 0.2;
  config.learning.epsilon_end = 0.2;
  config.learning.seed = seed;
  return config;
}

TEST(HwSwEquivalenceTest, SyntheticStreamBitExact) {
  constexpr std::size_t kStates = 256;
  constexpr std::size_t kActions = 9;
  hw::HwPolicyConfig hw_config;
  hw_config.agent = exploring_agent();
  hw::HwPolicyEngine accelerator(hw_config, kStates, kActions);
  rl::FixedPointQAgent reference(exploring_agent(), kStates, kActions);

  const auto stream = hw::synthetic_stream(kStates, 5000, 99);
  bool has_prev = false;
  std::size_t prev_state = 0;
  std::size_t prev_action = 0;
  for (const auto& record : stream) {
    hw::PolicyLatency latency;
    const auto hw_action =
        accelerator.invoke(record.state, record.reward, latency);
    if (has_prev) {
      reference.learn(prev_state, prev_action, record.reward, record.state);
    }
    const auto sw_action = reference.select_action(record.state);
    ASSERT_EQ(hw_action, sw_action);
    prev_state = record.state;
    prev_action = sw_action;
    has_prev = true;
  }
  for (std::size_t s = 0; s < kStates; ++s) {
    for (std::size_t a = 0; a < kActions; ++a) {
      ASSERT_EQ(accelerator.agent().q_raw(s, a), reference.q_raw(s, a))
          << "Q mismatch at (" << s << ", " << a << ")";
    }
  }
}

TEST(HwSwEquivalenceTest, FixedBackendGovernorsIdenticalInSimulation) {
  // Two RL governors with the fixed backend and identical seeds, run on
  // identical workloads, must produce byte-identical results — i.e. the
  // "hardware" policy is a faithful drop-in for the fixed software policy.
  auto run_once = [] {
    core::EngineConfig engine_config;
    engine_config.duration_s = 10.0;
    core::SimEngine engine(soc::default_mobile_soc_config(), engine_config);
    rl::RlGovernorConfig config;
    config.backend = rl::AgentBackend::Fixed;
    rl::RlGovernor governor(config, 2);
    auto scenario =
        workload::make_scenario(workload::ScenarioKind::Mixed, 5);
    return engine.run(*scenario, governor);
  };
  const auto a = run_once();
  const auto b = run_once();
  EXPECT_DOUBLE_EQ(a.energy_j, b.energy_j);
  EXPECT_DOUBLE_EQ(a.quality, b.quality);
  EXPECT_EQ(a.violations, b.violations);
}

TEST(HwSwEquivalenceTest, FixedTracksFloatPolicyQuality) {
  // The Q5.10 fixed-point policy must reach an energy/QoS within a few
  // percent of the float policy after identical training.
  core::EngineConfig engine_config;
  engine_config.duration_s = 20.0;
  core::SimEngine engine(soc::default_mobile_soc_config(), engine_config);

  auto train_and_eval = [&](rl::AgentBackend backend) {
    rl::RlGovernorConfig config;
    config.backend = backend;
    rl::RlGovernor governor(config, 2);
    rl::Trainer trainer(engine, governor, rl::TrainerConfig{.episodes = 30});
    trainer.train();
    double sum = 0.0;
    for (const auto kind : workload::all_scenario_kinds()) {
      auto scenario = workload::make_scenario(kind, 777);
      sum += engine.run(*scenario, governor).energy_per_qos;
    }
    return sum;
  };

  const double float_epqos = train_and_eval(rl::AgentBackend::Float);
  const double fixed_epqos = train_and_eval(rl::AgentBackend::Fixed);
  EXPECT_NEAR(fixed_epqos, float_epqos, float_epqos * 0.10);
}

TEST(HwSwEquivalenceTest, LatencyModelsShareDecisionValues) {
  // run_latency_experiment replays through HwPolicyEngine; its decisions
  // must not depend on the latency configuration (timing is observational).
  hw::LatencyExperimentConfig slow;
  slow.hw.fpga_clock_hz = 25e6;
  hw::LatencyExperimentConfig fast;
  fast.hw.fpga_clock_hz = 400e6;
  const auto stream = hw::synthetic_stream(128, 500, 3);

  hw::HwPolicyEngine slow_engine(slow.hw, 128, 9);
  hw::HwPolicyEngine fast_engine(fast.hw, 128, 9);
  for (const auto& record : stream) {
    hw::PolicyLatency l1;
    hw::PolicyLatency l2;
    EXPECT_EQ(slow_engine.invoke(record.state, record.reward, l1),
              fast_engine.invoke(record.state, record.reward, l2));
    EXPECT_GT(l1.raw_s, l2.raw_s);
  }
}

}  // namespace
}  // namespace pmrl
