// Training-loop integration: the RL policy must actually learn — improving
// over its own untrained start and landing in the baseline governors'
// energy/QoS league — and the trainer must be reproducible.

#include <gtest/gtest.h>

#include "core/engine.hpp"
#include "core/metrics.hpp"
#include "governors/registry.hpp"
#include "rl/trainer.hpp"
#include "workload/scenarios.hpp"

namespace pmrl {
namespace {

core::EngineConfig fast_engine_config() {
  core::EngineConfig config;
  config.duration_s = 20.0;  // shorter episodes keep the test quick
  return config;
}

TEST(TrainingTest, CurveHasConfiguredShape) {
  core::SimEngine engine(soc::default_mobile_soc_config(),
                         fast_engine_config());
  rl::RlGovernor governor(rl::RlGovernorConfig{}, 2);
  rl::TrainerConfig config;
  config.episodes = 12;
  rl::Trainer trainer(engine, governor, config);
  const auto curve = trainer.train();
  ASSERT_EQ(curve.size(), 12u);
  // Scenario rotation covers all six kinds in order.
  EXPECT_EQ(curve[0].scenario, "video");
  EXPECT_EQ(curve[5].scenario, "mixed");
  EXPECT_EQ(curve[6].scenario, "video");
  // Epsilon decays monotonically.
  for (std::size_t i = 1; i < curve.size(); ++i) {
    EXPECT_LE(curve[i].epsilon, curve[i - 1].epsilon + 1e-12);
  }
  for (const auto& episode : curve) {
    EXPECT_GT(episode.energy_per_qos, 0.0);
    EXPECT_GT(episode.energy_j, 0.0);
    EXPECT_LT(episode.mean_reward, 0.0);  // rewards are costs
  }
}

TEST(TrainingTest, LearningImprovesOverUntrained) {
  core::SimEngine engine(soc::default_mobile_soc_config(),
                         fast_engine_config());

  // Untrained, frozen (greedy over empty Q + down bias + guard).
  rl::RlGovernor untrained(rl::RlGovernorConfig{}, 2);
  untrained.set_frozen(true);
  auto eval_scenario =
      workload::make_scenario(workload::ScenarioKind::VideoPlayback, 900);
  const auto before = engine.run(*eval_scenario, untrained);

  // Trained on video.
  rl::RlGovernor trained(rl::RlGovernorConfig{}, 2);
  rl::TrainerConfig config;
  config.episodes = 30;
  config.scenarios = {workload::ScenarioKind::VideoPlayback};
  rl::Trainer trainer(engine, trained, config);
  trainer.train();
  trained.set_frozen(true);
  auto eval_scenario2 =
      workload::make_scenario(workload::ScenarioKind::VideoPlayback, 900);
  const auto after = engine.run(*eval_scenario2, trained);

  // Training must not be worse on E/QoS and must respect QoS far better
  // than the untrained bias-descent policy.
  EXPECT_LE(after.violation_rate, before.violation_rate + 0.01);
  EXPECT_LT(after.energy_per_qos, before.energy_per_qos * 1.10);
}

TEST(TrainingTest, TrainedPolicyCompetitiveWithOndemand) {
  core::SimEngine engine(soc::default_mobile_soc_config(),
                         fast_engine_config());
  rl::RlGovernor governor(rl::RlGovernorConfig{}, 2);
  rl::Trainer trainer(engine, governor, rl::TrainerConfig{.episodes = 40});
  trainer.train();

  auto ondemand = governors::make_governor("ondemand");
  double rl_sum = 0.0;
  double od_sum = 0.0;
  for (const auto kind : workload::all_scenario_kinds()) {
    auto s1 = workload::make_scenario(kind, 4242);
    auto s2 = workload::make_scenario(kind, 4242);
    rl_sum += engine.run(*s1, governor).energy_per_qos;
    od_sum += engine.run(*s2, *ondemand).energy_per_qos;
  }
  // Within 10% of ondemand on the mean (usually better; the full-length
  // benches show the paper-scale margins).
  EXPECT_LT(rl_sum, od_sum * 1.10);
}

TEST(TrainingTest, TrainingIsReproducible) {
  auto train_once = [] {
    core::SimEngine engine(soc::default_mobile_soc_config(),
                           fast_engine_config());
    rl::RlGovernor governor(rl::RlGovernorConfig{}, 2);
    rl::TrainerConfig config;
    config.episodes = 6;
    rl::Trainer trainer(engine, governor, config);
    std::vector<double> curve;
    for (const auto& episode : trainer.train()) {
      curve.push_back(episode.energy_per_qos);
    }
    return curve;
  };
  EXPECT_EQ(train_once(), train_once());
}

TEST(TrainingTest, SeedVariationChangesWorkloads) {
  core::SimEngine engine(soc::default_mobile_soc_config(),
                         fast_engine_config());
  rl::RlGovernor governor(rl::RlGovernorConfig{}, 2);
  rl::TrainerConfig config;
  config.episodes = 2;
  config.scenarios = {workload::ScenarioKind::VideoPlayback};
  config.vary_seed_per_episode = true;
  rl::Trainer trainer(engine, governor, config);
  const auto curve = trainer.train();
  // Different seeds -> different workloads -> different outcomes.
  EXPECT_NE(curve[0].energy_j, curve[1].energy_j);
}

TEST(TrainingTest, SingleEpisodeApi) {
  core::SimEngine engine(soc::default_mobile_soc_config(),
                         fast_engine_config());
  rl::RlGovernor governor(rl::RlGovernorConfig{}, 2);
  rl::Trainer trainer(engine, governor, rl::TrainerConfig{.episodes = 1});
  const auto episode =
      trainer.train_episode(7, workload::ScenarioKind::Gaming);
  EXPECT_EQ(episode.episode, 7u);
  EXPECT_EQ(episode.scenario, "game");
  EXPECT_GT(episode.energy_j, 0.0);
}

}  // namespace
}  // namespace pmrl
