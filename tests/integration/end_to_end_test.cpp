// End-to-end behaviour of the whole stack: scenarios -> SoC -> governors,
// checking the qualitative orderings the paper's evaluation rests on.

#include <gtest/gtest.h>

#include "core/engine.hpp"
#include "core/metrics.hpp"
#include "governors/registry.hpp"
#include "workload/scenarios.hpp"

namespace pmrl {
namespace {

core::RunResult run_policy(const std::string& governor_name,
                           workload::ScenarioKind kind, double duration,
                           std::uint64_t seed = 11) {
  core::EngineConfig config;
  config.duration_s = duration;
  core::SimEngine engine(soc::default_mobile_soc_config(), config);
  auto scenario = workload::make_scenario(kind, seed);
  auto governor = governors::make_governor(governor_name);
  return engine.run(*scenario, *governor);
}

TEST(EndToEndTest, PerformanceGovernorUsesMostEnergy) {
  const auto kind = workload::ScenarioKind::VideoPlayback;
  const auto performance = run_policy("performance", kind, 10.0);
  for (const char* other : {"powersave", "ondemand", "conservative",
                            "interactive", "userspace"}) {
    EXPECT_GT(performance.energy_j, run_policy(other, kind, 10.0).energy_j)
        << other;
  }
}

TEST(EndToEndTest, PowersaveViolatesUnderLoad) {
  const auto powersave =
      run_policy("powersave", workload::ScenarioKind::Gaming, 10.0);
  const auto performance =
      run_policy("performance", workload::ScenarioKind::Gaming, 10.0);
  EXPECT_GT(powersave.violation_rate, 0.10);
  EXPECT_LT(performance.violation_rate, 0.02);
}

TEST(EndToEndTest, OndemandTracksLoad) {
  // On the near-idle scenario ondemand's mean frequency sits near the
  // bottom; on gaming its big-cluster frequency is far higher.
  const auto idle =
      run_policy("ondemand", workload::ScenarioKind::AudioIdle, 10.0);
  const auto game =
      run_policy("ondemand", workload::ScenarioKind::Gaming, 10.0);
  EXPECT_LT(idle.mean_freq_hz[1], 0.35e9);
  EXPECT_GT(game.mean_freq_hz[1], 0.7e9);
}

TEST(EndToEndTest, AdaptiveGovernorsBeatStaticOnEnergyPerQos) {
  // ondemand/interactive must beat both static extremes on E/QoS for the
  // bursty web scenario (the premise of DVFS).
  const auto kind = workload::ScenarioKind::WebBrowsing;
  const double ondemand =
      run_policy("ondemand", kind, 15.0).energy_per_qos;
  const double interactive =
      run_policy("interactive", kind, 15.0).energy_per_qos;
  const double performance =
      run_policy("performance", kind, 15.0).energy_per_qos;
  const double powersave =
      run_policy("powersave", kind, 15.0).energy_per_qos;
  EXPECT_LT(ondemand, performance);
  EXPECT_LT(interactive, performance);
  EXPECT_LT(ondemand, powersave);
}

TEST(EndToEndTest, GamingIsHeaviestScenario) {
  double game_energy = 0.0;
  double idle_energy = 0.0;
  game_energy =
      run_policy("ondemand", workload::ScenarioKind::Gaming, 10.0).energy_j;
  idle_energy =
      run_policy("ondemand", workload::ScenarioKind::AudioIdle, 10.0)
          .energy_j;
  EXPECT_GT(game_energy, idle_energy * 1.5);
}

TEST(EndToEndTest, DvfsTransitionCountsSaneAcrossGovernors) {
  // Static governors transition (almost) never; step/jump governors do.
  const auto kind = workload::ScenarioKind::Mixed;
  const auto performance = run_policy("performance", kind, 10.0);
  const auto conservative = run_policy("conservative", kind, 10.0);
  EXPECT_LE(performance.dvfs_transitions, 2u);
  EXPECT_GT(conservative.dvfs_transitions, 10u);
}

TEST(EndToEndTest, ViolationRateBoundedByOne) {
  for (const auto& name : governors::baseline_governor_names()) {
    const auto result =
        run_policy(name, workload::ScenarioKind::AppLaunch, 8.0);
    EXPECT_GE(result.violation_rate, 0.0) << name;
    EXPECT_LE(result.violation_rate, 1.0) << name;
    EXPECT_GE(result.mean_quality, 0.0) << name;
    EXPECT_LE(result.mean_quality, 1.0) << name;
  }
}

TEST(EndToEndTest, TemperatureStaysPhysical) {
  const auto result =
      run_policy("performance", workload::ScenarioKind::Gaming, 20.0);
  ASSERT_EQ(result.peak_temp_c.size(), 2u);
  for (double t : result.peak_temp_c) {
    EXPECT_GT(t, 25.0);   // above ambient
    EXPECT_LT(t, 120.0);  // below silicon limits (throttle engages first)
  }
}

}  // namespace
}  // namespace pmrl
