// Property sweep across every (governor, scenario) pair: physical and
// accounting invariants that must hold for any policy on any workload.

#include <gtest/gtest.h>

#include <cmath>

#include "core/engine.hpp"
#include "governors/registry.hpp"
#include "rl/rl_governor.hpp"
#include "workload/scenarios.hpp"

namespace pmrl {
namespace {

struct SweepCase {
  std::string governor;
  workload::ScenarioKind kind;
};

std::vector<SweepCase> all_cases() {
  std::vector<SweepCase> cases;
  auto names = governors::baseline_governor_names();
  names.push_back("schedutil");
  for (const auto& name : names) {
    for (const auto kind : workload::all_scenario_kinds()) {
      cases.push_back({name, kind});
    }
  }
  return cases;
}

class RunInvariants : public ::testing::TestWithParam<SweepCase> {};

TEST_P(RunInvariants, Hold) {
  core::EngineConfig config;
  config.duration_s = 4.0;
  core::SimEngine engine(soc::default_mobile_soc_config(), config);
  auto scenario = workload::make_scenario(GetParam().kind, 777);
  auto governor = governors::make_governor(GetParam().governor);
  const core::RunResult run = engine.run(*scenario, *governor);

  // Energy/power accounting.
  EXPECT_GT(run.energy_j, 0.0);
  EXPECT_NEAR(run.avg_power_w, run.energy_j / run.duration_s, 1e-9);
  EXPECT_GT(run.avg_power_w, 0.2);   // at least uncore static power
  EXPECT_LT(run.avg_power_w, 15.0);  // below the physical envelope

  // QoS accounting.
  EXPECT_GE(run.released, run.released_deadline);
  EXPECT_LE(run.violations, run.released_deadline);
  EXPECT_GE(run.violation_rate, 0.0);
  EXPECT_LE(run.violation_rate, 1.0);
  EXPECT_GE(run.mean_quality, 0.0);
  EXPECT_LE(run.mean_quality, 1.0);
  EXPECT_GE(run.quality, 0.0);
  EXPECT_LE(run.quality, static_cast<double>(run.completed) + 1e-9);
  EXPECT_TRUE(run.energy_per_qos > 0.0 || std::isinf(run.energy_per_qos));

  // Frequencies stay within the tables.
  ASSERT_EQ(run.mean_freq_hz.size(), 2u);
  EXPECT_GE(run.mean_freq_hz[0], 200e6 - 1.0);
  EXPECT_LE(run.mean_freq_hz[0], 1.4e9 + 1.0);
  EXPECT_GE(run.mean_freq_hz[1], 200e6 - 1.0);
  EXPECT_LE(run.mean_freq_hz[1], 2.0e9 + 1.0);

  // Thermal sanity.
  for (const double t : run.peak_temp_c) {
    EXPECT_GE(t, 25.0);
    EXPECT_LT(t, 120.0);
  }
}

INSTANTIATE_TEST_SUITE_P(
    GovernorScenarioSweep, RunInvariants, ::testing::ValuesIn(all_cases()),
    [](const ::testing::TestParamInfo<SweepCase>& param_info) {
      return param_info.param.governor + "_" +
             workload::scenario_kind_name(param_info.param.kind);
    });

TEST(RlInvariantsTest, ThreeDomainRunHoldsInvariants) {
  soc::SocConfig soc_config = soc::default_mobile_soc_config();
  soc_config.memory.enabled = true;
  core::EngineConfig config;
  config.duration_s = 5.0;
  core::SimEngine engine(soc_config, config);
  rl::RlGovernor governor(rl::RlGovernorConfig{}, 3);
  auto scenario =
      workload::make_scenario(workload::ScenarioKind::Gaming, 11);
  const auto run = engine.run(*scenario, governor);
  ASSERT_EQ(run.mean_freq_hz.size(), 3u);
  EXPECT_GE(run.mean_freq_hz[2], 400e6 - 1.0);
  EXPECT_LE(run.mean_freq_hz[2], 1866e6 + 1.0);
  ASSERT_EQ(run.throttled_s.size(), 3u);
  EXPECT_EQ(run.throttled_s[2], 0.0);  // memory is never thermally throttled
  EXPECT_GT(run.quality, 0.0);
}

TEST(RlInvariantsTest, EnergyOrderingUnderWorkScaling) {
  // More released work at a fixed policy must not reduce energy (monotone
  // load -> energy, a basic sanity of the execution/power coupling).
  auto energy_for = [](double rate_scale) {
    core::EngineConfig config;
    config.duration_s = 4.0;
    core::SimEngine engine(soc::default_mobile_soc_config(), config);
    class ScaledLoad : public workload::Scenario {
     public:
      explicit ScaledLoad(double scale) : scale_(scale) {}
      std::string name() const override { return "scaled"; }
      void setup(workload::WorkloadHost& host) override {
        task_ = host.create_task("t", soc::Affinity::Any, 1.0);
      }
      void tick(workload::WorkloadHost& host, double now_s,
                double dt_s) override {
        (void)dt_s;
        if (now_s >= next_) {
          host.submit(task_, 1e6 * scale_, now_s + 0.1);
          next_ += 0.01;
        }
      }

     private:
      double scale_;
      soc::TaskId task_ = 0;
      double next_ = 0.0;
    };
    ScaledLoad scenario(rate_scale);
    auto governor = governors::make_governor("ondemand");
    return engine.run(scenario, *governor).energy_j;
  };
  // Scales chosen so even the heaviest rate (0.4e9 ref-cycles/s) fits a
  // single little core at its top OPP — otherwise the runs saturate and
  // become identical.
  const double light = energy_for(1.0);
  const double medium = energy_for(2.0);
  const double heavy = energy_for(4.0);
  EXPECT_LT(light, medium);
  EXPECT_LT(medium, heavy);
}

}  // namespace
}  // namespace pmrl
