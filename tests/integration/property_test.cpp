// Property-based invariant tests: randomized (SoC config, scenario,
// governor, duration) tuples drawn from one seeded generator; for each run
// the recorded trace and RunResult must satisfy physical and accounting
// invariants regardless of the draw. Failures print the master seed and the
// per-iteration draw so any counterexample replays exactly:
//   PMRL_PROPERTY_SEED=<seed> ./build/tests/test_integration

#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>
#include <sstream>
#include <string>

#include "core/engine.hpp"
#include "governors/registry.hpp"
#include "obs/trace_sink.hpp"
#include "rl/rl_governor.hpp"
#include "util/rng.hpp"
#include "workload/scenarios.hpp"

namespace pmrl {
namespace {

std::uint64_t master_seed() {
  if (const char* env = std::getenv("PMRL_PROPERTY_SEED")) {
    return std::strtoull(env, nullptr, 10);
  }
  return 20260806;  // fixed default: CI runs are reproducible
}

struct Draw {
  workload::ScenarioKind kind = workload::ScenarioKind::VideoPlayback;
  std::uint64_t scenario_seed = 0;
  double duration_s = 1.0;
  bool tiny_soc = false;
  bool memory_domain = false;
  std::string governor;  // registry name, or "rl" for a fresh RlGovernor

  std::string describe(std::uint64_t seed, int iteration) const {
    std::ostringstream out;
    out << "master_seed=" << seed << " iteration=" << iteration
        << " scenario=" << workload::scenario_kind_name(kind)
        << " scenario_seed=" << scenario_seed << " duration=" << duration_s
        << " soc=" << (tiny_soc ? "tiny" : "default")
        << (memory_domain ? "+mem" : "") << " governor=" << governor;
    return out.str();
  }
};

Draw random_draw(Rng& rng) {
  Draw draw;
  const auto kinds = workload::all_scenario_kinds();
  draw.kind = kinds[static_cast<std::size_t>(
      rng.uniform_int(0, static_cast<std::int64_t>(kinds.size()) - 1))];
  draw.scenario_seed = rng();
  draw.duration_s = rng.uniform(0.5, 1.5);
  draw.tiny_soc = rng.bernoulli(0.3);
  // The memory DVFS domain only exists on the default SoC (E7 extension).
  draw.memory_domain = !draw.tiny_soc && rng.bernoulli(0.3);
  static const char* kGovernors[] = {"ondemand",    "conservative",
                                     "performance", "powersave",
                                     "schedutil",   "rl"};
  draw.governor = kGovernors[rng.uniform_int(0, 5)];
  return draw;
}

void check_run(const Draw& draw) {
  soc::SocConfig soc_config =
      draw.tiny_soc ? soc::tiny_test_soc_config()
                    : soc::default_mobile_soc_config();
  if (draw.memory_domain) soc_config.memory.enabled = true;
  const std::size_t clusters = soc_config.clusters.size();

  core::EngineConfig engine_config;
  engine_config.duration_s = draw.duration_s;
  core::SimEngine engine(soc_config, engine_config);
  obs::VectorTraceSink sink;
  engine.set_trace_sink(&sink);

  auto scenario = workload::make_scenario(draw.kind, draw.scenario_seed);
  std::unique_ptr<rl::RlGovernor> rl_governor;
  governors::GovernorPtr baseline;
  governors::Governor* governor = nullptr;
  if (draw.governor == "rl") {
    // Fresh learner, exploration and learning on: the invariants must hold
    // mid-training, not just for converged policies.
    rl_governor = std::make_unique<rl::RlGovernor>(rl::RlGovernorConfig{},
                                                   clusters);
    rl_governor->set_trace_sink(&sink);
    governor = rl_governor.get();
  } else {
    baseline = governors::make_governor(draw.governor);
    governor = baseline.get();
  }

  const core::RunResult run = engine.run(*scenario, *governor);

  // ---- RunResult invariants ----
  EXPECT_GT(run.energy_j, 0.0);
  EXPECT_NEAR(run.avg_power_w, run.energy_j / run.duration_s, 1e-9);
  EXPECT_GE(run.violation_rate, 0.0);
  EXPECT_LE(run.violation_rate, 1.0);
  EXPECT_GE(run.quality, 0.0);
  EXPECT_LE(run.violations, run.released_deadline);
  ASSERT_GE(run.mean_freq_hz.size(), clusters);
  for (std::size_t c = 0; c < clusters; ++c) {
    const auto& opps = soc_config.clusters[c].opps;
    EXPECT_GE(run.mean_freq_hz[c], opps.lowest().freq_hz - 1.0);
    EXPECT_LE(run.mean_freq_hz[c], opps.highest().freq_hz + 1.0);
  }

  // ---- Trace invariants ----
  const auto& events = sink.events();
  ASSERT_GE(events.size(), 3u);
  EXPECT_EQ(events.front().kind, obs::EventKind::RunBegin);
  EXPECT_EQ(events.back().kind, obs::EventKind::RunEnd);
  EXPECT_DOUBLE_EQ(events.back().value, run.violation_rate);

  double prev_total = 0.0;
  double prev_time = -1.0;
  for (const auto& event : events) {
    if (event.kind == obs::EventKind::Epoch) {
      // Energy accounting: nonnegative epoch deltas, monotone cumulative
      // total, and sim time strictly advancing.
      EXPECT_GE(event.energy_j, 0.0);
      EXPECT_GE(event.total_energy_j, prev_total);
      prev_total = event.total_energy_j;
      EXPECT_GT(event.time_s, prev_time);
      prev_time = event.time_s;
    }
    if (event.kind == obs::EventKind::RunBegin ||
        event.kind == obs::EventKind::Epoch) {
      ASSERT_GE(event.clusters.size(), clusters);
      for (std::size_t c = 0; c < clusters; ++c) {
        const auto& sample = event.clusters[c];
        const auto& opps = soc_config.clusters[c].opps;
        // Frequency must be exactly one of the cluster's OPP entries.
        ASSERT_LT(sample.opp_index, opps.size());
        EXPECT_EQ(sample.freq_hz, opps.at(sample.opp_index).freq_hz);
        EXPECT_GE(sample.util_avg, 0.0);
        EXPECT_GE(sample.energy_j, 0.0);
        EXPECT_GT(sample.temp_c, 0.0);
      }
    }
    if (event.kind == obs::EventKind::Decision && rl_governor) {
      // Factored policy: per-cluster state/move indices stay in range.
      EXPECT_LT(event.index, clusters);
      EXPECT_LT(event.state, rl_governor->encoder().cluster_state_count());
      EXPECT_LT(event.action, rl_governor->actions().moves_per_cluster());
    }
  }
  EXPECT_LE(prev_total, run.energy_j + 1e-12);
}

TEST(PropertyTest, RandomizedRunsHoldInvariants) {
  const std::uint64_t seed = master_seed();
  Rng rng(seed);
  constexpr int kIterations = 16;
  for (int i = 0; i < kIterations; ++i) {
    const Draw draw = random_draw(rng);
    SCOPED_TRACE(draw.describe(seed, i));
    check_run(draw);
    if (::testing::Test::HasFatalFailure()) return;
  }
}

TEST(PropertyTest, TraceIsAPureFunctionOfTheDraw) {
  // Replaying the same draw must reproduce the identical event sequence —
  // the property the golden tests and the farm byte-identity rest on.
  const std::uint64_t seed = master_seed() ^ 0xabcdef;
  Rng rng(seed);
  const Draw draw = random_draw(rng);
  SCOPED_TRACE(draw.describe(seed, 0));

  auto record = [&draw] {
    soc::SocConfig soc_config =
        draw.tiny_soc ? soc::tiny_test_soc_config()
                      : soc::default_mobile_soc_config();
    if (draw.memory_domain) soc_config.memory.enabled = true;
    core::EngineConfig engine_config;
    engine_config.duration_s = draw.duration_s;
    core::SimEngine engine(soc_config, engine_config);
    obs::VectorTraceSink sink;
    engine.set_trace_sink(&sink);
    auto scenario = workload::make_scenario(draw.kind, draw.scenario_seed);
    auto governor = governors::make_governor(
        draw.governor == "rl" ? "ondemand" : draw.governor);
    engine.run(*scenario, *governor);
    return sink.take();
  };
  EXPECT_EQ(record(), record());
}

}  // namespace
}  // namespace pmrl
