// FleetEngine (SoA) correctness: golden equivalence against N independent
// AoS DeviceEngine runs, jobs and block-size invariance, aggregate sanity,
// and metrics wiring.

#include <gtest/gtest.h>

#include "fleet/device_engine.hpp"
#include "fleet/fleet_engine.hpp"
#include "obs/metrics.hpp"

namespace pmrl::fleet {
namespace {

FleetConfig test_config(std::size_t devices = 512) {
  FleetConfig c;
  c.devices = devices;
  c.seed = 2024;
  c.archetypes = 8;
  c.duration_s = 2.0;
  c.block_size = 128;
  c.jobs = 1;
  return c;
}

// The golden-equivalence contract: the SoA engine's per-device stream must
// be bit-identical to running one independent AoS engine per device with
// the same specs/policy/timing. Any drift — reordered accumulation, a
// "faster" formula, stride bugs — trips the exact EXPECT_EQ.
TEST(FleetEngineGolden, MatchesIndependentDeviceEnginesBitExact) {
  FleetConfig cfg = test_config(384);
  cfg.record_devices = true;
  FleetEngine fleet(cfg);
  const FleetResult result = fleet.run();
  ASSERT_EQ(result.device_outcomes.size(), cfg.devices);

  const FleetPolicy policy = FleetPolicy::default_policy();
  for (std::size_t d = 0; d < cfg.devices; ++d) {
    const DeviceSpec& spec = fleet.specs()[d];
    DeviceEngine ref(fleet.archetypes()[spec.archetype], spec, policy,
                     fleet.timing());
    ref.run();
    ASSERT_EQ(result.device_outcomes[d], ref.outcome()) << "device " << d;
  }
}

TEST(FleetEngineGolden, AggregatesMatchDeviceOutcomeSums) {
  FleetConfig cfg = test_config(256);
  cfg.record_devices = true;
  FleetEngine fleet(cfg);
  const FleetResult r = fleet.run();

  double energy = 0.0;
  std::uint64_t violations = 0;
  for (const DeviceOutcome& o : r.device_outcomes) violations += o.violations;
  // Exact block-ordered reduction over outcomes reproduces the totals.
  for (std::size_t first = 0; first < cfg.devices; first += cfg.block_size) {
    double block = 0.0;
    const std::size_t last = std::min(cfg.devices, first + cfg.block_size);
    for (std::size_t d = first; d < last; ++d) {
      block += r.device_outcomes[d].energy_j;
    }
    energy += block;
  }
  EXPECT_EQ(r.energy_j, energy);
  EXPECT_EQ(r.violation_epochs, violations);
  EXPECT_EQ(r.device_ticks,
            static_cast<std::uint64_t>(r.devices) * r.epochs *
                r.ticks_per_epoch);
}

TEST(FleetEngineDeterminism, SerialVsFourJobsBitIdentical) {
  FleetConfig serial_cfg = test_config(1000);
  serial_cfg.record_devices = true;
  serial_cfg.record_epochs = true;
  FleetConfig par_cfg = serial_cfg;
  par_cfg.jobs = 4;

  FleetEngine serial(serial_cfg);
  FleetEngine parallel(par_cfg);
  const FleetResult a = serial.run();
  const FleetResult b = parallel.run();

  EXPECT_EQ(a.energy_j, b.energy_j);
  EXPECT_EQ(a.served, b.served);
  EXPECT_EQ(a.demand, b.demand);
  EXPECT_EQ(a.violation_epochs, b.violation_epochs);
  EXPECT_EQ(a.battery_depleted, b.battery_depleted);
  EXPECT_EQ(a.energy_per_served_mean, b.energy_per_served_mean);
  EXPECT_EQ(a.energy_per_served_p50, b.energy_per_served_p50);
  EXPECT_EQ(a.energy_per_served_p99, b.energy_per_served_p99);
  ASSERT_EQ(a.device_outcomes.size(), b.device_outcomes.size());
  for (std::size_t d = 0; d < a.device_outcomes.size(); ++d) {
    ASSERT_EQ(a.device_outcomes[d], b.device_outcomes[d]) << "device " << d;
  }
  ASSERT_EQ(a.epoch_series.size(), b.epoch_series.size());
  for (std::size_t e = 0; e < a.epoch_series.size(); ++e) {
    EXPECT_EQ(a.epoch_series[e].energy_j, b.epoch_series[e].energy_j);
    EXPECT_EQ(a.epoch_series[e].violations, b.epoch_series[e].violations);
  }
}

TEST(FleetEngineDeterminism, BlockSizeDoesNotChangeDeviceStreams) {
  // Every per-device stream is partition-invariant (the bit-identity
  // contract), and so is everything integer-valued or histogram-derived.
  // Fleet fp *sums* are reduced block by block, so a different block size
  // legitimately reassociates them — those only match to rounding.
  FleetConfig small = test_config(500);
  small.block_size = 64;
  small.record_devices = true;
  FleetConfig big = test_config(500);
  big.block_size = 500;  // one block
  big.record_devices = true;

  const FleetResult a = FleetEngine(small).run();
  const FleetResult b = FleetEngine(big).run();
  ASSERT_EQ(a.device_outcomes.size(), b.device_outcomes.size());
  for (std::size_t d = 0; d < a.device_outcomes.size(); ++d) {
    ASSERT_EQ(a.device_outcomes[d], b.device_outcomes[d]) << "device " << d;
  }
  EXPECT_EQ(a.violation_epochs, b.violation_epochs);
  EXPECT_EQ(a.battery_depleted, b.battery_depleted);
  EXPECT_EQ(a.energy_per_served_p95, b.energy_per_served_p95);
  EXPECT_NEAR(a.energy_j, b.energy_j, 1e-9 * b.energy_j);
}

TEST(FleetEngineDeterminism, RerunningTheSameEngineIsIdentical) {
  FleetEngine fleet(test_config(128));
  const FleetResult a = fleet.run();
  const FleetResult b = fleet.run();
  EXPECT_EQ(a.energy_j, b.energy_j);
  EXPECT_EQ(a.violation_epochs, b.violation_epochs);
}

TEST(FleetEngineResult, AggregatesAreSane) {
  FleetConfig cfg = test_config(512);
  cfg.record_epochs = true;
  FleetEngine fleet(cfg);
  const FleetResult r = fleet.run();

  EXPECT_EQ(r.devices, cfg.devices);
  EXPECT_GT(r.energy_j, 0.0);
  EXPECT_GT(r.served, 0.0);
  EXPECT_LE(r.served, r.demand + 1e-6);
  EXPECT_GE(r.violation_rate, 0.0);
  EXPECT_LE(r.violation_rate, 1.0);
  EXPECT_GT(r.energy_per_served_p50, 0.0);
  EXPECT_LE(r.energy_per_served_p50, r.energy_per_served_p95);
  EXPECT_LE(r.energy_per_served_p95, r.energy_per_served_p99);
  ASSERT_EQ(r.epoch_series.size(), r.epochs);
  double series_energy = 0.0;
  for (const FleetEpochPoint& p : r.epoch_series) {
    EXPECT_GT(p.time_s, 0.0);
    series_energy += p.energy_j;
  }
  // The per-epoch series integrates to (approximately) the total energy;
  // not exactly, because the series is a closed-form power sum while the
  // total walks the per-tick accumulator.
  EXPECT_NEAR(series_energy / r.energy_j, 1.0, 1e-9);
}

TEST(FleetEngineResult, MetricsExportedWhenAttached) {
  obs::MetricsRegistry metrics;
  FleetEngine fleet(test_config(128));
  fleet.set_metrics(&metrics);
  const FleetResult r = fleet.run();
  EXPECT_EQ(metrics.counter("fleet.devices").value(), 128u);
  EXPECT_EQ(metrics.counter("fleet.device_ticks").value(), r.device_ticks);
  EXPECT_EQ(metrics.gauge("fleet.energy_j").value(), r.energy_j);
  EXPECT_EQ(metrics
                .histogram("fleet.energy_per_served",
                           energy_per_served_bounds())
                .count(),
            128u);
}

TEST(FleetEngineConfig, RejectsDegenerateConfigs) {
  FleetConfig zero;
  zero.devices = 0;
  EXPECT_THROW(FleetEngine{zero}, std::invalid_argument);
  FleetConfig block;
  block.devices = 16;
  block.block_size = 0;
  EXPECT_THROW(FleetEngine{block}, std::invalid_argument);
}

}  // namespace
}  // namespace pmrl::fleet
