// Golden fleet-epoch regression tests: a small canonical fleet's per-epoch
// aggregate series (with and without a budget cap step) serialized as CSV
// and compared byte-for-byte against committed goldens under tests/data/.
// Any drift in the device model, the SoA sweep, the policy, or the budget
// tree shows up here as a diff with the first diverging epoch named.
//
// Regenerating (after an INTENDED behaviour change, reviewed like code):
//   PMRL_REGEN_GOLDEN=1 ./build/tests/test_fleet
// then commit the rewritten tests/data/golden_fleet_*.csv files.

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "fleet/fleet_engine.hpp"
#include "obs/trace_event.hpp"

namespace fleet = pmrl::fleet;

namespace {

std::string data_path(const std::string& name) {
  return std::string(PMRL_TEST_DATA_DIR) + "/" + name;
}

fleet::FleetConfig golden_config(bool budgeted) {
  fleet::FleetConfig config;
  config.devices = 96;
  config.seed = 7;
  config.archetypes = 8;
  config.duration_s = 2.0;
  config.block_size = 32;
  config.jobs = 1;
  config.record_epochs = true;
  if (budgeted) {
    config.budget.global_cap_w = 800.0;
    config.budget.policy = "demand";
    config.budget.groups = 4;
    config.budget.schedule = {{1.0, 80.0}};  // 10x step mid-run
  }
  return config;
}

// %.17g per column so the CSV round-trips doubles exactly; byte-compare is
// then a bit-compare of the whole series.
std::string serialize_series(const fleet::FleetResult& result) {
  std::ostringstream out;
  out << "epoch,time_s,energy_j,served,demand,violations,cap_w,over_cap\n";
  for (std::size_t e = 0; e < result.epoch_series.size(); ++e) {
    const fleet::FleetEpochPoint& p = result.epoch_series[e];
    out << e << ',' << pmrl::obs::format_trace_double(p.time_s) << ','
        << pmrl::obs::format_trace_double(p.energy_j) << ','
        << pmrl::obs::format_trace_double(p.served) << ','
        << pmrl::obs::format_trace_double(p.demand) << ',' << p.violations
        << ',' << pmrl::obs::format_trace_double(p.cap_w) << ','
        << p.over_cap << '\n';
  }
  return out.str();
}

std::vector<std::string> split_lines(const std::string& text) {
  std::vector<std::string> lines;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  return lines;
}

void compare_against_golden(const std::string& golden_name,
                            const std::string& actual) {
  const std::string path = data_path(golden_name);
  if (std::getenv("PMRL_REGEN_GOLDEN") != nullptr) {
    std::ofstream out(path, std::ios::binary);
    ASSERT_TRUE(out) << "cannot write " << path;
    out << actual;
    GTEST_SKIP() << "regenerated " << path;
  }

  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in) << "missing golden " << path
                  << " (regenerate with PMRL_REGEN_GOLDEN=1)";
  std::ostringstream golden_stream;
  golden_stream << in.rdbuf();
  const std::string golden = golden_stream.str();
  if (actual == golden) return;

  const auto actual_lines = split_lines(actual);
  const auto golden_lines = split_lines(golden);
  const std::size_t n = std::min(actual_lines.size(), golden_lines.size());
  for (std::size_t i = 0; i < n; ++i) {
    if (actual_lines[i] == golden_lines[i]) continue;
    // Row 0 is the header; row k is epoch k-1 (first CSV column).
    FAIL() << golden_name << ": first divergence at line " << (i + 1)
           << (i == 0 ? " (header)" : " (epoch " + std::to_string(i - 1) + ")")
           << "\n  golden: " << golden_lines[i]
           << "\n  actual: " << actual_lines[i];
  }
  FAIL() << golden_name << ": series identical for " << n
         << " lines, then lengths diverge (golden " << golden_lines.size()
         << " lines, actual " << actual_lines.size() << ")";
}

}  // namespace

TEST(FleetGolden, EpochSeries) {
  const fleet::FleetResult result =
      fleet::FleetEngine(golden_config(false)).run();
  compare_against_golden("golden_fleet_epochs.csv", serialize_series(result));
}

TEST(FleetGolden, EpochSeriesWithBudgetCapStep) {
  const fleet::FleetResult result =
      fleet::FleetEngine(golden_config(true)).run();
  compare_against_golden("golden_fleet_budget_epochs.csv",
                         serialize_series(result));
}
