// Device-model construction and single-device AoS engine behaviour.

#include <gtest/gtest.h>

#include <cmath>

#include "fleet/device_engine.hpp"
#include "fleet/device_model.hpp"
#include "fleet/policy.hpp"

namespace pmrl::fleet {
namespace {

FleetConfig small_config() {
  FleetConfig c;
  c.devices = 64;
  c.seed = 42;
  c.archetypes = 8;
  c.duration_s = 2.0;
  return c;
}

TEST(FleetDeviceModel, ArchetypesAreWellFormed) {
  const auto archs = make_archetypes(16, 7);
  ASSERT_EQ(archs.size(), 16u);
  for (const auto& a : archs) {
    ASSERT_GE(a.cluster_count, 1u);
    ASSERT_LE(a.cluster_count, kMaxClusters);
    for (std::size_t c = 0; c < a.cluster_count; ++c) {
      const auto& cl = a.clusters[c];
      EXPECT_TRUE(cl.active);
      ASSERT_GE(cl.opp_count, 2u);
      ASSERT_EQ(cl.opp_freq_hz.size(), cl.opp_count);
      ASSERT_EQ(cl.opp_cap.size(), cl.opp_count);
      ASSERT_EQ(cl.opp_dyn_w.size(), cl.opp_count);
      ASSERT_EQ(cl.opp_leak_w.size(), cl.opp_count);
      ASSERT_EQ(cl.opp_freq_bin.size(), cl.opp_count);
      // Ascending frequency; capacity tops out at exactly 1.0.
      for (std::size_t i = 1; i < cl.opp_count; ++i) {
        EXPECT_GT(cl.opp_freq_hz[i], cl.opp_freq_hz[i - 1]);
        EXPECT_GT(cl.opp_cap[i], cl.opp_cap[i - 1]);
        EXPECT_GT(cl.opp_dyn_w[i], cl.opp_dyn_w[i - 1]);
      }
      EXPECT_DOUBLE_EQ(cl.opp_cap.back(), 1.0);
      EXPECT_LT(cl.throttle_cap_index, cl.opp_count);
      for (const auto b : cl.opp_freq_bin) EXPECT_LT(b, kFreqBins);
    }
    // Inert trailing slots contribute exactly zero power.
    for (std::size_t c = a.cluster_count; c < kMaxClusters; ++c) {
      const auto& cl = a.clusters[c];
      EXPECT_FALSE(cl.active);
      const ClusterEpochDerived d =
          derive_cluster_epoch(cl, 0, 0.0, 1.0, 25.0, 4.0);
      EXPECT_EQ(d.power_w, 0.0);
      EXPECT_EQ(d.served_rate, 0.0);
      EXPECT_EQ(d.busy, 0.0);
    }
  }
}

TEST(FleetDeviceModel, ArchetypeBuildIsDeterministic) {
  const auto a = make_archetypes(8, 99);
  const auto b = make_archetypes(8, 99);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].cluster_count, b[i].cluster_count);
    EXPECT_EQ(a[i].clusters[0].opp_freq_hz, b[i].clusters[0].opp_freq_hz);
    EXPECT_EQ(a[i].clusters[0].opp_dyn_w, b[i].clusters[0].opp_dyn_w);
    EXPECT_EQ(a[i].uncore_static_w, b[i].uncore_static_w);
  }
}

TEST(FleetDeviceModel, SpecOfDeviceDependsOnlyOnSeedAndIndex) {
  const auto archs = make_archetypes(8, 5);
  const auto all = make_device_specs(archs, 100, 5);
  const auto prefix = make_device_specs(archs, 10, 5);
  for (std::size_t i = 0; i < prefix.size(); ++i) {
    EXPECT_EQ(all[i].seed, prefix[i].seed);
    EXPECT_EQ(all[i].archetype, prefix[i].archetype);
    EXPECT_EQ(all[i].battery_initial_j, prefix[i].battery_initial_j);
    EXPECT_EQ(all[i].clusters[0].demand_base, prefix[i].clusters[0].demand_base);
  }
}

TEST(FleetDeviceModel, EpochDemandIsStatelessAndBounded) {
  const auto archs = make_archetypes(4, 3);
  const auto specs = make_device_specs(archs, 4, 3);
  const DeviceClusterSpec& cs = specs[2].clusters[0];
  for (std::uint64_t e = 0; e < 200; ++e) {
    const double d1 = epoch_demand(cs, specs[2].seed, e, 0);
    const double d2 = epoch_demand(cs, specs[2].seed, e, 0);
    EXPECT_EQ(d1, d2);  // pure function: no hidden stream state
    EXPECT_GE(d1, 0.0);
    EXPECT_LE(d1, kDemandMax);
  }
}

TEST(FleetDeviceModel, LeakTempFactorMatchesSocModel) {
  // Same exponential as soc::CorePowerModel::temp_factor.
  for (double t = 25.0; t <= 105.0; t += 5.0) {
    EXPECT_DOUBLE_EQ(leak_temp_factor(0.03, t, 25.0),
                     std::exp(0.03 * (t - 25.0)))
        << "at " << t << " C";
  }
}

TEST(FleetDeviceModel, ThrottleHysteresis) {
  EXPECT_TRUE(update_throttle(false, 96.0, 95.0, 85.0));
  EXPECT_TRUE(update_throttle(true, 90.0, 95.0, 85.0));   // holds between
  EXPECT_FALSE(update_throttle(false, 90.0, 95.0, 85.0));  // stays clear
  EXPECT_FALSE(update_throttle(true, 84.0, 95.0, 85.0));
}

TEST(FleetDeviceModel, StateBinningCoversSpace) {
  for (std::uint32_t s = 0; s < kStateCount; ++s) {
    // nothing to assert per state; just bound-check a sweep of inputs
  }
  EXPECT_EQ(cluster_state(0.0, 25.0, 0), 0u);
  EXPECT_LT(cluster_state(1.0, 25.0, kFreqBins - 1), kUtilBins * kFreqBins);
  EXPECT_GE(cluster_state(0.0, 80.0, 0), kUtilBins * kFreqBins);  // hot half
  EXPECT_LT(cluster_state(1.0, 80.0, kFreqBins - 1), kStateCount);
  // Utilization slightly above 1 (EWMA overshoot is impossible, but the
  // clamp must hold anyway).
  EXPECT_LT(cluster_state(1.2, 80.0, kFreqBins - 1), kStateCount);
}

TEST(FleetDeviceEngine, RunsAndProducesSaneOutcome) {
  const FleetConfig cfg = small_config();
  const FleetTiming timing = resolve_timing(cfg);
  const auto archs = make_archetypes(cfg.archetypes, cfg.seed);
  const auto specs = make_device_specs(archs, cfg.devices, cfg.seed);
  const FleetPolicy policy = FleetPolicy::default_policy();
  for (std::size_t d = 0; d < 8; ++d) {
    DeviceEngine eng(archs[specs[d].archetype], specs[d], policy, timing);
    eng.run();
    const DeviceOutcome o = eng.outcome();
    EXPECT_GT(o.energy_j, 0.0);
    EXPECT_GT(o.served, 0.0);
    EXPECT_LE(o.served, o.demand + 1e-9);
    EXPECT_LE(o.violations, timing.epochs);
    EXPECT_GE(o.battery_j, 0.0);
    EXPECT_LE(o.battery_j, specs[d].battery_initial_j);
    const auto& arch = archs[specs[d].archetype];
    for (std::size_t c = 0; c < arch.cluster_count; ++c) {
      EXPECT_GE(o.util[c], 0.0);
      EXPECT_LE(o.util[c], 1.0 + 1e-12);
      EXPECT_GT(o.temp_c[c], 0.0);
      EXPECT_LT(o.temp_c[c], 150.0);
      EXPECT_LT(o.opp[c], arch.clusters[c].opp_count);
    }
  }
}

TEST(FleetDeviceEngine, ReplayIsBitIdentical) {
  const FleetConfig cfg = small_config();
  const FleetTiming timing = resolve_timing(cfg);
  const auto archs = make_archetypes(cfg.archetypes, cfg.seed);
  const auto specs = make_device_specs(archs, cfg.devices, cfg.seed);
  const FleetPolicy policy = FleetPolicy::default_policy();
  DeviceEngine a(archs[specs[0].archetype], specs[0], policy, timing);
  DeviceEngine b(archs[specs[0].archetype], specs[0], policy, timing);
  a.run();
  b.run();
  EXPECT_EQ(a.outcome(), b.outcome());
}

TEST(FleetDeviceModel, TimingResolution) {
  FleetConfig c;
  c.tick_s = 0.01;
  c.decision_period_s = 0.1;
  c.duration_s = 10.0;
  const FleetTiming t = resolve_timing(c);
  EXPECT_EQ(t.ticks_per_epoch, 10u);
  EXPECT_EQ(t.epochs, 100u);
  EXPECT_DOUBLE_EQ(t.epoch_s, 0.1);

  c.decision_period_s = 0.001;  // below tick
  EXPECT_THROW(resolve_timing(c), std::invalid_argument);
}

TEST(FleetPolicyTest, GreedyMatchesBatch) {
  const FleetPolicy p = FleetPolicy::default_policy();
  std::vector<std::uint64_t> states;
  for (std::uint32_t s = 0; s < kStateCount; ++s) states.push_back(s);
  std::vector<std::uint32_t> batch(states.size());
  p.greedy_batch(states.data(), states.size(), batch.data());
  for (std::uint32_t s = 0; s < kStateCount; ++s) {
    EXPECT_EQ(batch[s], p.greedy(s)) << "state " << s;
  }
}

TEST(FleetPolicyTest, DefaultPolicyShedsWhenHotAndIdle) {
  const FleetPolicy p = FleetPolicy::default_policy();
  // Idle, cool, fastest OPP: step down.
  EXPECT_EQ(p.greedy(cluster_state(0.05, 40.0, kFreqBins - 1)), kActionDown);
  // Saturated, cool, slowest OPP: step up.
  EXPECT_EQ(p.greedy(cluster_state(0.99, 40.0, 0)), kActionUp);
  // Saturated but hot: never step up.
  EXPECT_NE(p.greedy(cluster_state(0.99, 90.0, 2)), kActionUp);
}

}  // namespace
}  // namespace pmrl::fleet
