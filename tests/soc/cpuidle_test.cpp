#include "soc/cpuidle.hpp"

#include <gtest/gtest.h>

#include "soc/cluster.hpp"
#include "soc/opp.hpp"
#include "soc/power_model.hpp"
#include "soc/soc.hpp"

namespace pmrl::soc {
namespace {

TEST(IdleStatesTest, DefaultLadderShape) {
  const auto states = default_idle_states();
  ASSERT_EQ(states.size(), 3u);
  // Deeper states save more power but cost more to leave.
  for (std::size_t i = 1; i < states.size(); ++i) {
    EXPECT_LE(states[i].dynamic_scale, states[i - 1].dynamic_scale);
    EXPECT_LT(states[i].leakage_scale, states[i - 1].leakage_scale);
    EXPECT_GT(states[i].exit_latency_s, states[i - 1].exit_latency_s);
    EXPECT_GT(states[i].min_residency_s, states[i - 1].min_residency_s);
  }
}

TEST(CoreIdleTrackerTest, NoTableMeansAlwaysActive) {
  CoreIdleTracker tracker(nullptr);
  EXPECT_EQ(tracker.on_tick(false, 0.001), 0.0);
  EXPECT_FALSE(tracker.idle());
  EXPECT_DOUBLE_EQ(tracker.dynamic_scale(), 1.0);
  EXPECT_DOUBLE_EQ(tracker.leakage_scale(), 1.0);
}

TEST(CoreIdleTrackerTest, LadderPromotesWithStreak) {
  const auto states = default_idle_states();
  CoreIdleTracker tracker(&states);
  const double tick = 0.0005;
  // First idle tick: C1.
  tracker.on_tick(false, tick);
  EXPECT_EQ(tracker.state(), 0);
  // Idle until just before C2's residency: still C1.
  double idle_s = tick;
  while (idle_s + tick < states[1].min_residency_s) {
    tracker.on_tick(false, tick);
    idle_s += tick;
  }
  EXPECT_EQ(tracker.state(), 0);
  // Crossing the C2 residency promotes.
  tracker.on_tick(false, tick);
  idle_s += tick;
  EXPECT_EQ(tracker.state(), 1);
  // Idle past C3's residency promotes again.
  while (idle_s < states[2].min_residency_s + tick) {
    tracker.on_tick(false, tick);
    idle_s += tick;
  }
  EXPECT_EQ(tracker.state(), 2);
  EXPECT_LT(tracker.leakage_scale(), 0.1);
}

TEST(CoreIdleTrackerTest, WakeupPaysExitLatencyOnce) {
  const auto states = default_idle_states();
  CoreIdleTracker tracker(&states);
  const int deep_ticks =
      static_cast<int>(states[2].min_residency_s / 0.001) + 2;
  for (int i = 0; i < deep_ticks; ++i) tracker.on_tick(false, 0.001);
  EXPECT_EQ(tracker.state(), 2);
  const double penalty = tracker.on_tick(true, 0.001);
  EXPECT_DOUBLE_EQ(penalty, states[2].exit_latency_s);
  EXPECT_FALSE(tracker.idle());
  // Staying busy costs nothing further.
  EXPECT_EQ(tracker.on_tick(true, 0.001), 0.0);
}

TEST(CoreIdleTrackerTest, ShallowWakeupIsCheap) {
  const auto states = default_idle_states();
  CoreIdleTracker tracker(&states);
  tracker.on_tick(false, 0.0001);  // only C1
  const double penalty = tracker.on_tick(true, 0.001);
  EXPECT_DOUBLE_EQ(penalty, states[0].exit_latency_s);
}

TEST(CoreIdleTrackerTest, ResidencyAccounting) {
  const auto states = default_idle_states();
  CoreIdleTracker tracker(&states);
  tracker.on_tick(true, 0.001);
  for (int i = 0; i < 100; ++i) tracker.on_tick(false, 0.001);
  tracker.on_tick(true, 0.001);
  const auto& residency = tracker.residency_s();
  ASSERT_EQ(residency.size(), 3u);
  double idle_total = 0.0;
  for (double r : residency) idle_total += r;
  EXPECT_NEAR(idle_total, 0.100, 1e-9);
  EXPECT_NEAR(tracker.active_s(), 0.002, 1e-12);
  // A 100 ms streak spends most of its time in the deepest state.
  EXPECT_GT(residency[2], residency[0]);
  EXPECT_GT(residency[2], residency[1]);
}

TEST(CoreIdleTrackerTest, ResetClears) {
  const auto states = default_idle_states();
  CoreIdleTracker tracker(&states);
  tracker.on_tick(false, 0.01);
  tracker.reset();
  EXPECT_FALSE(tracker.idle());
  EXPECT_EQ(tracker.active_s(), 0.0);
  for (double r : tracker.residency_s()) EXPECT_EQ(r, 0.0);
}

TEST(CpuidleClusterTest, IdleClusterBurnsLessWithCpuidle) {
  auto make = [](bool enabled) {
    CpuidleConfig cpuidle;
    cpuidle.enabled = enabled;
    return Cluster(0,
                   ClusterConfig{"t", CoreType::Big, 4, 1.0, 0.0,
                                 static_cast<std::size_t>(-1)},
                   big_cluster_opps(), big_core_power_params(), cpuidle);
  };
  auto with = make(true);
  auto without = make(false);
  TaskSet tasks;
  std::vector<CompletedJob> done;
  // 100 ms fully idle: the cpuidle cluster descends the ladder.
  for (int i = 0; i < 100; ++i) {
    with.run_tick(tasks, 0.001, i * 0.001, done);
    without.run_tick(tasks, 0.001, i * 0.001, done);
  }
  EXPECT_LT(with.power_w(40.0), 0.5 * without.power_w(40.0));
  EXPECT_EQ(with.idle_states().size(), 3u);
  EXPECT_TRUE(without.idle_states().empty());
}

TEST(CpuidleSocTest, RunResultExposesResidency) {
  SocConfig config = tiny_test_soc_config();
  config.cpuidle.enabled = true;
  Soc soc(config);
  std::vector<CompletedJob> done;
  for (int i = 0; i < 100; ++i) soc.step(0.001, done);
  const auto residency = soc.cluster(0).idle_residency_s();
  ASSERT_EQ(residency.size(), 3u);
  double total = 0.0;
  for (double r : residency) total += r;
  // 2 cores x 100 ms fully idle.
  EXPECT_NEAR(total, 0.2, 1e-9);
}

TEST(CpuidleSocTest, WakeLatencyDelaysFirstJob) {
  // A job arriving after a long idle period completes slightly later with
  // cpuidle (C3 exit latency) than without.
  auto run = [](bool enabled) {
    SocConfig config = tiny_test_soc_config();
    config.cpuidle.enabled = enabled;
    Soc soc(config);
    const TaskId t = soc.create_task("t", Affinity::Any);
    std::vector<CompletedJob> done;
    for (int i = 0; i < 50; ++i) soc.step(0.001, done);  // idle to C3
    Job job;
    job.id = 1;
    job.work_cycles = 1.5e6;
    soc.submit(t, job);
    done.clear();
    while (done.empty()) soc.step(0.001, done);
    return done[0].completion_s;
  };
  EXPECT_GT(run(true), run(false));
}

}  // namespace
}  // namespace pmrl::soc
