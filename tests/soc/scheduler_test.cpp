#include "soc/scheduler.hpp"

#include <gtest/gtest.h>

#include <set>

#include "soc/opp.hpp"
#include "soc/power_model.hpp"

namespace pmrl::soc {
namespace {

// Two clusters: 0 = little (2 cores), 1 = big (2 cores).
std::vector<Cluster> make_clusters() {
  std::vector<Cluster> clusters;
  clusters.emplace_back(
      0,
      ClusterConfig{"little", CoreType::Little, 2, 0.5, 0.0,
                    static_cast<std::size_t>(-1)},
      little_cluster_opps(), little_core_power_params());
  clusters.emplace_back(
      1,
      ClusterConfig{"big", CoreType::Big, 2, 1.0, 0.0,
                    static_cast<std::size_t>(-1)},
      big_cluster_opps(), big_core_power_params());
  return clusters;
}

Job make_job(JobId id, double work) {
  Job job;
  job.id = id;
  job.work_cycles = work;
  return job;
}

TEST(SchedulerTest, AffinityPlacesOnPreferredCluster) {
  auto clusters = make_clusters();
  TaskSet tasks;
  const TaskId lt = tasks.create("lt", Affinity::PreferLittle);
  const TaskId bt = tasks.create("bt", Affinity::PreferBig);
  tasks.at(lt).submit(make_job(1, 1e6));
  tasks.at(bt).submit(make_job(2, 1e6));
  Scheduler scheduler;
  scheduler.schedule(tasks, clusters, 0.0);
  EXPECT_EQ(scheduler.placement_of(lt).cluster, 0u);
  EXPECT_EQ(scheduler.placement_of(bt).cluster, 1u);
}

TEST(SchedulerTest, AnyAffinityTieBreaksToLittle) {
  auto clusters = make_clusters();
  TaskSet tasks;
  const TaskId t = tasks.create("t", Affinity::Any);
  tasks.at(t).submit(make_job(1, 1e6));
  Scheduler scheduler;
  scheduler.schedule(tasks, clusters, 0.0);
  EXPECT_EQ(scheduler.placement_of(t).cluster, 0u);
}

TEST(SchedulerTest, SpreadsTasksAcrossCores) {
  auto clusters = make_clusters();
  TaskSet tasks;
  std::vector<TaskId> ids;
  for (int i = 0; i < 4; ++i) {
    ids.push_back(tasks.create("t" + std::to_string(i), Affinity::Any));
    tasks.at(ids.back()).submit(make_job(static_cast<JobId>(i + 1), 1e6));
  }
  Scheduler scheduler;
  scheduler.schedule(tasks, clusters, 0.0);
  // No core should hold two tasks while another compatible core is empty.
  std::set<std::pair<std::size_t, std::size_t>> used;
  for (const auto id : ids) {
    const auto p = scheduler.placement_of(id);
    EXPECT_TRUE(p.valid());
    used.insert({p.cluster, p.core});
  }
  EXPECT_EQ(used.size(), 4u);
}

TEST(SchedulerTest, PreferredClusterSpillsWhenFull) {
  auto clusters = make_clusters();
  TaskSet tasks;
  std::vector<TaskId> ids;
  for (int i = 0; i < 3; ++i) {
    ids.push_back(
        tasks.create("big" + std::to_string(i), Affinity::PreferBig));
    tasks.at(ids.back()).submit(make_job(static_cast<JobId>(i + 1), 1e6));
  }
  Scheduler scheduler;
  scheduler.schedule(tasks, clusters, 0.0);
  // Big cluster has 2 cores; the third task must spill somewhere valid.
  int on_big = 0;
  for (const auto id : ids) {
    const auto p = scheduler.placement_of(id);
    EXPECT_TRUE(p.valid());
    on_big += p.cluster == 1 ? 1 : 0;
  }
  EXPECT_EQ(on_big, 2);
}

TEST(SchedulerTest, RunqueuesPopulated) {
  auto clusters = make_clusters();
  TaskSet tasks;
  const TaskId t = tasks.create("t", Affinity::PreferBig);
  tasks.at(t).submit(make_job(1, 1e6));
  Scheduler scheduler;
  scheduler.schedule(tasks, clusters, 0.0);
  std::size_t queued = 0;
  for (const auto& cluster : clusters) {
    for (const auto& core : cluster.cores()) {
      queued += core.runqueue().size();
    }
  }
  EXPECT_EQ(queued, 1u);
}

TEST(SchedulerTest, StickyBetweenRebalances) {
  auto clusters = make_clusters();
  TaskSet tasks;
  const TaskId t = tasks.create("t", Affinity::Any);
  tasks.at(t).submit(make_job(1, 1e12));
  Scheduler scheduler(SchedulerConfig{0.010});
  scheduler.schedule(tasks, clusters, 0.0);
  const auto first = scheduler.placement_of(t);
  // Within the rebalance period the placement must not move.
  scheduler.schedule(tasks, clusters, 0.001);
  scheduler.schedule(tasks, clusters, 0.005);
  const auto later = scheduler.placement_of(t);
  EXPECT_EQ(first.cluster, later.cluster);
  EXPECT_EQ(first.core, later.core);
}

TEST(SchedulerTest, NewTaskTriggersImmediatePlacement) {
  auto clusters = make_clusters();
  TaskSet tasks;
  Scheduler scheduler(SchedulerConfig{10.0});  // effectively never
  scheduler.schedule(tasks, clusters, 0.0);
  const TaskId t = tasks.create("late", Affinity::Any);
  tasks.at(t).submit(make_job(1, 1e6));
  scheduler.schedule(tasks, clusters, 0.001);
  EXPECT_TRUE(scheduler.placement_of(t).valid());
}

TEST(SchedulerTest, DeterministicAcrossIdenticalRuns) {
  for (int trial = 0; trial < 2; ++trial) {
    auto clusters = make_clusters();
    TaskSet tasks;
    std::vector<TaskId> ids;
    for (int i = 0; i < 6; ++i) {
      ids.push_back(tasks.create("t" + std::to_string(i), Affinity::Any,
                                 1.0 + i % 3));
      tasks.at(ids.back()).submit(make_job(static_cast<JobId>(i + 1), 1e6));
    }
    Scheduler scheduler;
    scheduler.schedule(tasks, clusters, 0.0);
    static std::vector<std::pair<std::size_t, std::size_t>> reference;
    std::vector<std::pair<std::size_t, std::size_t>> placements;
    for (const auto id : ids) {
      const auto p = scheduler.placement_of(id);
      placements.emplace_back(p.cluster, p.core);
    }
    if (trial == 0) {
      reference = placements;
    } else {
      EXPECT_EQ(placements, reference);
    }
  }
}

TEST(SchedulerTest, StaggeredPeriodicTasksSpreadAcrossCores) {
  // Tasks that are runnable at *different* rebalances must not all funnel
  // onto core 0: the sticky history keeps each on its own core. This is a
  // regression test for util_max inflation under staggered frame pipelines.
  auto clusters = make_clusters();
  TaskSet tasks;
  std::vector<TaskId> ids;
  for (int i = 0; i < 2; ++i) {
    ids.push_back(tasks.create("w" + std::to_string(i), Affinity::PreferBig));
  }
  Scheduler scheduler(SchedulerConfig{0.010});

  // Rebalance 1: only task 0 runnable -> some big core.
  tasks.at(ids[0]).submit(make_job(1, 1e6));
  scheduler.schedule(tasks, clusters, 0.0);
  const auto first = scheduler.placement_of(ids[0]);
  tasks.at(ids[0]).clear();

  // Rebalance 2: only task 1 runnable -> gets its own core.
  tasks.at(ids[1]).submit(make_job(2, 1e6));
  scheduler.schedule(tasks, clusters, 0.020);
  const auto second = scheduler.placement_of(ids[1]);
  tasks.at(ids[1]).clear();

  // Rebalance 3: task 0 again -> sticks to its original core.
  tasks.at(ids[0]).submit(make_job(3, 1e6));
  scheduler.schedule(tasks, clusters, 0.040);
  const auto third = scheduler.placement_of(ids[0]);
  EXPECT_EQ(third.cluster, first.cluster);
  EXPECT_EQ(third.core, first.core);

  // Rebalance 4: task 1 again -> sticks to its own (different) core.
  tasks.at(ids[0]).clear();
  tasks.at(ids[1]).submit(make_job(4, 1e6));
  scheduler.schedule(tasks, clusters, 0.060);
  const auto fourth = scheduler.placement_of(ids[1]);
  EXPECT_EQ(fourth.cluster, second.cluster);
  EXPECT_EQ(fourth.core, second.core);
}

TEST(SchedulerTest, InvalidateForcesRebalance) {
  auto clusters = make_clusters();
  TaskSet tasks;
  const TaskId t = tasks.create("t", Affinity::Any);
  tasks.at(t).submit(make_job(1, 1e6));
  Scheduler scheduler(SchedulerConfig{100.0});
  scheduler.schedule(tasks, clusters, 0.0);
  EXPECT_TRUE(scheduler.placement_of(t).valid());
  scheduler.invalidate();
  scheduler.schedule(tasks, clusters, 0.001);  // must not crash / reassigns
  EXPECT_TRUE(scheduler.placement_of(t).valid());
}

}  // namespace
}  // namespace pmrl::soc
