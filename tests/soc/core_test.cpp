#include "soc/core.hpp"

#include <gtest/gtest.h>

namespace pmrl::soc {
namespace {

Job make_job(JobId id, double work, double deadline = -1.0) {
  Job job;
  job.id = id;
  job.work_cycles = work;
  job.deadline_s = deadline;
  return job;
}

TEST(CoreTest, RejectsBadIpc) {
  EXPECT_THROW(Core(0, CoreType::Big, 0.0), std::invalid_argument);
}

TEST(CoreTest, CapacityFormula) {
  Core big(0, CoreType::Big, 1.0);
  Core little(1, CoreType::Little, 0.5);
  EXPECT_DOUBLE_EQ(big.capacity_cycles(2e9, 0.001), 2e6);
  EXPECT_DOUBLE_EQ(little.capacity_cycles(2e9, 0.001), 1e6);
}

TEST(CoreTest, IdleCoreReportsZeroBusy) {
  Core core(0, CoreType::Big, 1.0);
  TaskSet tasks;
  std::vector<CompletedJob> done;
  const double busy = core.run_tick(tasks, 1e9, 0.001, 0.0, done);
  EXPECT_EQ(busy, 0.0);
  EXPECT_TRUE(done.empty());
}

TEST(CoreTest, SaturatedCoreFullyBusy) {
  Core core(0, CoreType::Big, 1.0);
  TaskSet tasks;
  const TaskId t = tasks.create("t", Affinity::Any);
  tasks.at(t).submit(make_job(1, 1e12));
  core.set_runqueue({t});
  std::vector<CompletedJob> done;
  const double busy = core.run_tick(tasks, 1e9, 0.001, 0.0, done);
  EXPECT_DOUBLE_EQ(busy, 1.0);
}

TEST(CoreTest, PartialLoadBusyFraction) {
  Core core(0, CoreType::Big, 1.0);
  TaskSet tasks;
  const TaskId t = tasks.create("t", Affinity::Any);
  tasks.at(t).submit(make_job(1, 0.25e6));  // quarter of 1e6 capacity
  core.set_runqueue({t});
  std::vector<CompletedJob> done;
  const double busy = core.run_tick(tasks, 1e9, 0.001, 0.0, done);
  EXPECT_NEAR(busy, 0.25, 1e-9);
  ASSERT_EQ(done.size(), 1u);
}

TEST(CoreTest, FairShareSplitsEqualWeights) {
  Core core(0, CoreType::Big, 1.0);
  TaskSet tasks;
  const TaskId a = tasks.create("a", Affinity::Any, 1.0);
  const TaskId b = tasks.create("b", Affinity::Any, 1.0);
  tasks.at(a).submit(make_job(1, 10e6));
  tasks.at(b).submit(make_job(2, 10e6));
  core.set_runqueue({a, b});
  std::vector<CompletedJob> done;
  core.run_tick(tasks, 1e9, 0.001, 0.0, done);  // 1e6 capacity
  // Each task gets ~0.5e6 cycles of progress.
  EXPECT_NEAR(tasks.at(a).backlog_cycles(), 10e6, 1.0);
  // Neither finishes, both progressed equally: verify via further ticks.
  // Run enough ticks that task a completes; with equal weights they finish
  // within one tick of each other.
  int a_done_tick = -1;
  int b_done_tick = -1;
  for (int tick = 1; tick <= 25; ++tick) {
    done.clear();
    core.run_tick(tasks, 1e9, 0.001, tick * 0.001, done);
    for (const auto& job : done) {
      if (job.job.id == 1) a_done_tick = tick;
      if (job.job.id == 2) b_done_tick = tick;
    }
  }
  EXPECT_GT(a_done_tick, 0);
  EXPECT_GT(b_done_tick, 0);
  EXPECT_LE(std::abs(a_done_tick - b_done_tick), 1);
}

TEST(CoreTest, WeightedShareFavorsHeavyTask) {
  Core core(0, CoreType::Big, 1.0);
  TaskSet tasks;
  const TaskId heavy = tasks.create("h", Affinity::Any, 3.0);
  const TaskId light = tasks.create("l", Affinity::Any, 1.0);
  tasks.at(heavy).submit(make_job(1, 3e6));
  tasks.at(light).submit(make_job(2, 3e6));
  core.set_runqueue({heavy, light});
  std::vector<CompletedJob> done;
  // Capacity 4e6: heavy gets 3e6 (finishes), light gets 1e6.
  core.run_tick(tasks, 4e9, 0.001, 0.0, done);
  ASSERT_EQ(done.size(), 1u);
  EXPECT_EQ(done[0].job.id, 1u);
}

TEST(CoreTest, UnusedShareSpillsToBackloggedTask) {
  Core core(0, CoreType::Big, 1.0);
  TaskSet tasks;
  const TaskId small = tasks.create("s", Affinity::Any, 1.0);
  const TaskId big_task = tasks.create("b", Affinity::Any, 1.0);
  tasks.at(small).submit(make_job(1, 0.1e6));
  tasks.at(big_task).submit(make_job(2, 0.9e6));
  core.set_runqueue({small, big_task});
  std::vector<CompletedJob> done;
  // Capacity 1e6 total: small needs only 0.1e6; spill lets big finish too.
  core.run_tick(tasks, 1e9, 0.001, 0.0, done);
  EXPECT_EQ(done.size(), 2u);
}

TEST(CoreTest, NonRunnableTasksIgnored) {
  Core core(0, CoreType::Big, 1.0);
  TaskSet tasks;
  const TaskId idle = tasks.create("idle", Affinity::Any);
  const TaskId busy = tasks.create("busy", Affinity::Any);
  tasks.at(busy).submit(make_job(1, 0.5e6));
  core.set_runqueue({idle, busy});
  std::vector<CompletedJob> done;
  core.run_tick(tasks, 1e9, 0.001, 0.0, done);
  ASSERT_EQ(done.size(), 1u);  // busy finishes using the idle task's share
}

TEST(CoreTest, PeltTracksBusyHistory) {
  Core core(0, CoreType::Big, 1.0);
  TaskSet tasks;
  const TaskId t = tasks.create("t", Affinity::Any);
  core.set_runqueue({t});
  std::vector<CompletedJob> done;
  // 200 ms of saturation.
  for (int i = 0; i < 200; ++i) {
    tasks.at(t).submit(make_job(static_cast<JobId>(i + 1), 10e6));
    core.run_tick(tasks, 1e9, 0.001, i * 0.001, done);
  }
  EXPECT_GT(core.util_pelt(), 0.95);
  EXPECT_DOUBLE_EQ(core.last_busy_fraction(), 1.0);
  core.reset_tracking();
  EXPECT_EQ(core.util_pelt(), 0.0);
}

TEST(CoreTest, NrRunningCountsRunnableOnly) {
  Core core(0, CoreType::Big, 1.0);
  TaskSet tasks;
  const TaskId a = tasks.create("a", Affinity::Any);
  const TaskId b = tasks.create("b", Affinity::Any);
  tasks.at(a).submit(make_job(1, 1e6));
  core.set_runqueue({a, b});
  EXPECT_EQ(core.nr_running(tasks), 1u);
}

}  // namespace
}  // namespace pmrl::soc
