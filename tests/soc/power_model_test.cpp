#include "soc/power_model.hpp"

#include <gtest/gtest.h>

namespace pmrl::soc {
namespace {

TEST(PowerModelTest, DynamicPowerScalesWithVSquaredF) {
  const CorePowerModel model(big_core_power_params());
  const double base = model.dynamic_power_w(1e9, 1.0, 1.0);
  EXPECT_NEAR(model.dynamic_power_w(2e9, 1.0, 1.0), 2.0 * base, 1e-12);
  EXPECT_NEAR(model.dynamic_power_w(1e9, 2.0, 1.0), 4.0 * base, 1e-12);
}

TEST(PowerModelTest, IdleCoreStillBurnsIdleActivity) {
  const CorePowerModel model(big_core_power_params());
  const double idle = model.dynamic_power_w(1e9, 1.0, 0.0);
  const double full = model.dynamic_power_w(1e9, 1.0, 1.0);
  EXPECT_GT(idle, 0.0);
  EXPECT_NEAR(idle / full, big_core_power_params().idle_activity, 1e-12);
}

TEST(PowerModelTest, DynamicPowerLinearInActivity) {
  const CorePowerModel model(big_core_power_params());
  const double p25 = model.dynamic_power_w(1e9, 1.0, 0.25);
  const double p75 = model.dynamic_power_w(1e9, 1.0, 0.75);
  const double p50 = model.dynamic_power_w(1e9, 1.0, 0.50);
  EXPECT_NEAR((p25 + p75) / 2.0, p50, 1e-12);
}

TEST(PowerModelTest, BigClusterCalibration) {
  // 4 big cores flat out at 2 GHz / 1.3625 V should land near 6 W dynamic
  // (the published Exynos 5422-class figure we calibrated against).
  const CorePowerModel model(big_core_power_params());
  const double cluster_dyn = 4.0 * model.dynamic_power_w(2e9, 1.3625, 1.0);
  EXPECT_NEAR(cluster_dyn, 6.0, 0.3);
}

TEST(PowerModelTest, LittleClusterCalibration) {
  const CorePowerModel model(little_core_power_params());
  const double cluster_dyn = 4.0 * model.dynamic_power_w(1.4e9, 1.25, 1.0);
  EXPECT_NEAR(cluster_dyn, 0.6, 0.05);
}

TEST(PowerModelTest, LeakageGrowsExponentiallyWithTemperature) {
  const CorePowerModel model(big_core_power_params());
  const double cool = model.leakage_power_w(1.0, 25.0);
  const double warm = model.leakage_power_w(1.0, 25.0 + 23.1);
  // exp(0.03 * 23.1) ~= 2.0
  EXPECT_NEAR(warm / cool, 2.0, 0.01);
}

TEST(PowerModelTest, LeakageLinearInVoltage) {
  const CorePowerModel model(big_core_power_params());
  EXPECT_NEAR(model.leakage_power_w(1.2, 40.0),
              1.2 * model.leakage_power_w(1.0, 40.0), 1e-12);
}

TEST(PowerModelTest, TotalIsDynamicPlusLeakage) {
  const CorePowerModel model(big_core_power_params());
  const double total = model.total_power_w(1e9, 1.1, 0.5, 50.0);
  EXPECT_NEAR(total,
              model.dynamic_power_w(1e9, 1.1, 0.5) +
                  model.leakage_power_w(1.1, 50.0),
              1e-12);
}

TEST(PowerModelTest, LowerOppUsesLessPower) {
  // Energy ordering that every governor exploits: lower V/f always costs
  // less power at equal busy fraction.
  const CorePowerModel model(big_core_power_params());
  double prev = 1e9;
  for (double f = 2000e6; f >= 200e6; f -= 100e6) {
    const double v = 0.9 + (1.3625 - 0.9) * (f - 200e6) / 1800e6;
    const double p = model.total_power_w(f, v, 0.5, 45.0);
    EXPECT_LT(p, prev);
    prev = p;
  }
}

TEST(PowerModelTest, RaceToIdleIsWorseAtIdle) {
  // The reason DVFS saves energy: running a fixed amount of work at low
  // V/f costs less energy than at high V/f (V^2 scaling beats the shorter
  // runtime), once idle power is nonzero.
  const CorePowerModel model(big_core_power_params());
  const double work_cycles = 1e9;
  // High OPP: work done in t1 = work/2e9 s, then idle for the rest of 1 s.
  const double t_high = work_cycles / 2e9;
  const double e_high = model.total_power_w(2e9, 1.3625, 1.0, 45.0) * t_high +
                        model.total_power_w(2e9, 1.3625, 0.0, 45.0) *
                            (1.0 - t_high);
  // Low OPP sized to finish exactly in 1 s.
  const double e_low = model.total_power_w(1e9, 1.1, 1.0, 45.0) * 1.0;
  EXPECT_LT(e_low, e_high);
}

}  // namespace
}  // namespace pmrl::soc
