#include "soc/thermal.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace pmrl::soc {
namespace {

ThermalModel one_node(double r = 4.0, double c = 1.0, double init = 35.0,
                      double ambient = 25.0) {
  return ThermalModel({ThermalNodeParams{r, c, init}}, ambient);
}

TEST(ThermalModelTest, RejectsBadConfiguration) {
  EXPECT_THROW(ThermalModel({}, 25.0), std::invalid_argument);
  EXPECT_THROW(ThermalModel({ThermalNodeParams{0.0, 1.0, 35.0}}, 25.0),
               std::invalid_argument);
  EXPECT_THROW(ThermalModel({ThermalNodeParams{4.0, -1.0, 35.0}}, 25.0),
               std::invalid_argument);
}

TEST(ThermalModelTest, InitialTemperature) {
  auto model = one_node();
  EXPECT_DOUBLE_EQ(model.temperature_c(0), 35.0);
  EXPECT_THROW(model.temperature_c(1), std::out_of_range);
}

TEST(ThermalModelTest, ZeroPowerDecaysTowardAmbient) {
  auto model = one_node();
  for (int i = 0; i < 100; ++i) model.step({0.0}, 1.0);
  EXPECT_NEAR(model.temperature_c(0), 25.0, 0.01);
}

TEST(ThermalModelTest, SteadyStateMatchesPR) {
  auto model = one_node(4.0, 1.0);
  // T_inf = 25 + 3 W * 4 K/W = 37 C.
  for (int i = 0; i < 200; ++i) model.step({3.0}, 1.0);
  EXPECT_NEAR(model.temperature_c(0), 37.0, 0.01);
}

TEST(ThermalModelTest, ExactExponentialStep) {
  auto model = one_node(4.0, 1.0, 35.0);
  // tau = 4 s; one step of 4 s with 0 W: T = 25 + (35-25) * e^-1.
  model.step({0.0}, 4.0);
  EXPECT_NEAR(model.temperature_c(0), 25.0 + 10.0 * std::exp(-1.0), 1e-9);
}

TEST(ThermalModelTest, StableForHugeTimeStep) {
  // The closed-form update never overshoots, unlike forward Euler.
  auto model = one_node(4.0, 1.0, 35.0);
  model.step({3.0}, 1e6);
  EXPECT_NEAR(model.temperature_c(0), 37.0, 1e-6);
}

TEST(ThermalModelTest, StepSizeInvariance) {
  // Two 0.5 s steps equal one 1 s step for constant power (exact solution).
  auto coarse = one_node();
  auto fine = one_node();
  coarse.step({5.0}, 1.0);
  fine.step({5.0}, 0.5);
  fine.step({5.0}, 0.5);
  EXPECT_NEAR(coarse.temperature_c(0), fine.temperature_c(0), 1e-12);
}

TEST(ThermalModelTest, IndependentNodes) {
  ThermalModel model({ThermalNodeParams{4.0, 1.0, 35.0},
                      ThermalNodeParams{8.0, 0.5, 30.0}},
                     25.0);
  for (int i = 0; i < 300; ++i) model.step({2.0, 0.5}, 1.0);
  EXPECT_NEAR(model.temperature_c(0), 25.0 + 8.0, 0.01);
  EXPECT_NEAR(model.temperature_c(1), 25.0 + 4.0, 0.01);
}

TEST(ThermalModelTest, PowerVectorSizeMismatchThrows) {
  auto model = one_node();
  EXPECT_THROW(model.step({1.0, 2.0}, 0.1), std::invalid_argument);
}

TEST(ThermalModelTest, ResetRestoresInitial) {
  auto model = one_node();
  for (int i = 0; i < 10; ++i) model.step({10.0}, 1.0);
  EXPECT_GT(model.temperature_c(0), 35.0);
  model.reset();
  EXPECT_DOUBLE_EQ(model.temperature_c(0), 35.0);
}

}  // namespace
}  // namespace pmrl::soc
