#include "soc/pelt.hpp"

#include <gtest/gtest.h>

namespace pmrl::soc {
namespace {

TEST(PeltTest, RejectsNonPositiveHalfLife) {
  EXPECT_THROW(PeltTracker(0.0), std::invalid_argument);
  EXPECT_THROW(PeltTracker(-1.0), std::invalid_argument);
}

TEST(PeltTest, StartsAtZero) {
  PeltTracker pelt;
  EXPECT_EQ(pelt.util(), 0.0);
}

TEST(PeltTest, ConvergesToDutyCycle) {
  PeltTracker pelt(0.032);
  for (int i = 0; i < 1000; ++i) pelt.add_sample(0.6, 0.001);
  EXPECT_NEAR(pelt.util(), 0.6, 0.001);
}

TEST(PeltTest, HalfLifeSemantics) {
  PeltTracker pelt(0.032);
  // Saturate at 1.0, then go idle for exactly one half-life.
  for (int i = 0; i < 2000; ++i) pelt.add_sample(1.0, 0.001);
  EXPECT_NEAR(pelt.util(), 1.0, 0.001);
  for (int i = 0; i < 32; ++i) pelt.add_sample(0.0, 0.001);
  EXPECT_NEAR(pelt.util(), 0.5, 0.005);
}

TEST(PeltTest, StepSizeInvariance) {
  // One 32 ms sample decays the same as 32 x 1 ms samples of the same
  // busy value (geometric decay is exact, not Euler).
  PeltTracker coarse(0.032);
  PeltTracker fine(0.032);
  coarse.add_sample(1.0, 0.032);
  for (int i = 0; i < 32; ++i) fine.add_sample(1.0, 0.001);
  EXPECT_NEAR(coarse.util(), fine.util(), 1e-9);
}

TEST(PeltTest, ClampsOutOfRangeSamples) {
  PeltTracker pelt(0.032);
  for (int i = 0; i < 1000; ++i) pelt.add_sample(7.0, 0.001);
  EXPECT_LE(pelt.util(), 1.0);
  for (int i = 0; i < 1000; ++i) pelt.add_sample(-3.0, 0.001);
  EXPECT_GE(pelt.util(), 0.0);
}

TEST(PeltTest, ResetClears) {
  PeltTracker pelt(0.032);
  pelt.add_sample(1.0, 0.01);
  EXPECT_GT(pelt.util(), 0.0);
  pelt.reset();
  EXPECT_EQ(pelt.util(), 0.0);
}

TEST(PeltTest, WarmupSpeed) {
  // From cold, 50 ms of full busy reaches ~66% (1 - 2^(-50/32)); governors
  // rely on this responsiveness.
  PeltTracker pelt(0.032);
  for (int i = 0; i < 50; ++i) pelt.add_sample(1.0, 0.001);
  EXPECT_NEAR(pelt.util(), 0.662, 0.01);
}

}  // namespace
}  // namespace pmrl::soc
