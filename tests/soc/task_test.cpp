#include "soc/task.hpp"

#include <gtest/gtest.h>

namespace pmrl::soc {
namespace {

Job make_job(JobId id, double work, double release = 0.0,
             double deadline = -1.0) {
  Job job;
  job.id = id;
  job.work_cycles = work;
  job.release_s = release;
  job.deadline_s = deadline;
  return job;
}

TEST(JobTest, DeadlineSemantics) {
  EXPECT_FALSE(make_job(1, 1e6).has_deadline());
  EXPECT_TRUE(make_job(1, 1e6, 0.0, 0.5).has_deadline());
}

TEST(CompletedJobTest, DeadlineAndLatency) {
  CompletedJob done{make_job(1, 1e6, 1.0, 1.5), 1.4};
  EXPECT_TRUE(done.met_deadline());
  EXPECT_NEAR(done.latency_s(), 0.4, 1e-12);
  CompletedJob late{make_job(2, 1e6, 1.0, 1.5), 1.6};
  EXPECT_FALSE(late.met_deadline());
  CompletedJob best_effort{make_job(3, 1e6, 1.0), 99.0};
  EXPECT_TRUE(best_effort.met_deadline());
}

TEST(TaskTest, RejectsBadInputs) {
  EXPECT_THROW(Task(0, "t", Affinity::Any, 0.0), std::invalid_argument);
  Task task(0, "t", Affinity::Any, 1.0);
  EXPECT_THROW(task.submit(make_job(1, 0.0)), std::invalid_argument);
}

TEST(TaskTest, SubmitTracksBacklog) {
  Task task(3, "t", Affinity::PreferBig, 2.0);
  EXPECT_FALSE(task.runnable());
  task.submit(make_job(1, 5e6));
  task.submit(make_job(2, 3e6));
  EXPECT_TRUE(task.runnable());
  EXPECT_EQ(task.queued_jobs(), 2u);
  EXPECT_DOUBLE_EQ(task.backlog_cycles(), 8e6);
}

TEST(TaskTest, SubmitStampsTaskId) {
  Task task(7, "t", Affinity::Any, 1.0);
  task.submit(make_job(1, 1e6));
  std::vector<CompletedJob> done;
  task.execute(2e6, 0.0, 0.001, done);
  ASSERT_EQ(done.size(), 1u);
  EXPECT_EQ(done[0].job.task, 7u);
}

TEST(TaskTest, ExecutePartialKeepsProgress) {
  Task task(0, "t", Affinity::Any, 1.0);
  task.submit(make_job(1, 10e6));
  std::vector<CompletedJob> done;
  EXPECT_DOUBLE_EQ(task.execute(4e6, 0.0, 0.001, done), 4e6);
  EXPECT_TRUE(done.empty());
  EXPECT_DOUBLE_EQ(task.backlog_cycles(), 10e6);  // uncommitted until done
  EXPECT_DOUBLE_EQ(task.execute(6e6, 0.001, 0.001, done), 6e6);
  ASSERT_EQ(done.size(), 1u);
  EXPECT_FALSE(task.runnable());
  EXPECT_DOUBLE_EQ(task.backlog_cycles(), 0.0);
}

TEST(TaskTest, ExecuteMultipleJobsFifo) {
  Task task(0, "t", Affinity::Any, 1.0);
  task.submit(make_job(1, 2e6));
  task.submit(make_job(2, 3e6));
  task.submit(make_job(3, 100e6));
  std::vector<CompletedJob> done;
  const double used = task.execute(5e6, 0.0, 0.001, done);
  EXPECT_DOUBLE_EQ(used, 5e6);
  ASSERT_EQ(done.size(), 2u);
  EXPECT_EQ(done[0].job.id, 1u);
  EXPECT_EQ(done[1].job.id, 2u);
  EXPECT_EQ(task.queued_jobs(), 1u);
}

TEST(TaskTest, CompletionTimeInterpolatedWithinTick) {
  Task task(0, "t", Affinity::Any, 1.0);
  task.submit(make_job(1, 5e6));
  std::vector<CompletedJob> done;
  // Job consumes half the offered cycles -> completes mid-tick.
  task.execute(10e6, 2.0, 0.010, done);
  ASSERT_EQ(done.size(), 1u);
  EXPECT_NEAR(done[0].completion_s, 2.005, 1e-9);
}

TEST(TaskTest, ExecuteReturnsUnusedWhenQueueDrains) {
  Task task(0, "t", Affinity::Any, 1.0);
  task.submit(make_job(1, 1e6));
  std::vector<CompletedJob> done;
  EXPECT_DOUBLE_EQ(task.execute(5e6, 0.0, 0.001, done), 1e6);
}

TEST(TaskTest, OverdueJobsCounted) {
  Task task(0, "t", Affinity::Any, 1.0);
  task.submit(make_job(1, 1e6, 0.0, 1.0));
  task.submit(make_job(2, 1e6, 0.0, 3.0));
  task.submit(make_job(3, 1e6));  // best effort: never overdue
  EXPECT_EQ(task.overdue_jobs(0.5), 0u);
  EXPECT_EQ(task.overdue_jobs(2.0), 1u);
  EXPECT_EQ(task.overdue_jobs(10.0), 2u);
}

TEST(TaskTest, ClearDropsQueue) {
  Task task(0, "t", Affinity::Any, 1.0);
  task.submit(make_job(1, 1e6));
  task.clear();
  EXPECT_FALSE(task.runnable());
  EXPECT_DOUBLE_EQ(task.backlog_cycles(), 0.0);
}

TEST(TaskSetTest, CreateAssignsSequentialIds) {
  TaskSet tasks;
  EXPECT_EQ(tasks.create("a", Affinity::Any), 0u);
  EXPECT_EQ(tasks.create("b", Affinity::PreferBig), 1u);
  EXPECT_EQ(tasks.size(), 2u);
  EXPECT_EQ(tasks.at(1).name(), "b");
  EXPECT_THROW(tasks.at(2), std::out_of_range);
}

TEST(TaskSetTest, AggregateQueries) {
  TaskSet tasks;
  const TaskId a = tasks.create("a", Affinity::Any);
  tasks.create("b", Affinity::Any);
  EXPECT_EQ(tasks.runnable_count(), 0u);
  tasks.at(a).submit(make_job(1, 4e6));
  EXPECT_EQ(tasks.runnable_count(), 1u);
  EXPECT_DOUBLE_EQ(tasks.total_backlog_cycles(), 4e6);
}

}  // namespace
}  // namespace pmrl::soc
