#include "soc/cluster.hpp"

#include <gtest/gtest.h>

namespace pmrl::soc {
namespace {

Cluster make_cluster(std::size_t cores = 2, double transition_s = 0.0) {
  ClusterConfig config{"test", CoreType::Big, cores, 1.0, transition_s,
                       static_cast<std::size_t>(-1)};
  return Cluster(0, config, tiny_test_opps(), big_core_power_params());
}

Job make_job(JobId id, double work, double deadline = -1.0) {
  Job job;
  job.id = id;
  job.work_cycles = work;
  job.deadline_s = deadline;
  return job;
}

TEST(ClusterTest, InitialOppIsHighestByDefault) {
  auto cluster = make_cluster();
  EXPECT_EQ(cluster.opp_index(), 4u);
  EXPECT_DOUBLE_EQ(cluster.freq_hz(), 2000e6);
}

TEST(ClusterTest, ExplicitInitialOpp) {
  ClusterConfig config{"t", CoreType::Big, 1, 1.0, 0.0, 2};
  Cluster cluster(0, config, tiny_test_opps(), big_core_power_params());
  EXPECT_EQ(cluster.opp_index(), 2u);
}

TEST(ClusterTest, SetOppClampsAndCounts) {
  auto cluster = make_cluster();
  cluster.set_opp(1);
  EXPECT_EQ(cluster.opp_index(), 1u);
  EXPECT_EQ(cluster.dvfs_transitions(), 1u);
  cluster.set_opp(1);  // no-op
  EXPECT_EQ(cluster.dvfs_transitions(), 1u);
  cluster.set_opp(99);  // clamps to top
  EXPECT_EQ(cluster.opp_index(), 4u);
  EXPECT_EQ(cluster.dvfs_transitions(), 2u);
}

TEST(ClusterTest, RunTickExecutesAndStampsClusterId) {
  ClusterConfig config{"t", CoreType::Big, 1, 1.0, 0.0,
                       static_cast<std::size_t>(-1)};
  Cluster cluster(3, config, tiny_test_opps(), big_core_power_params());
  TaskSet tasks;
  const TaskId t = tasks.create("t", Affinity::Any);
  tasks.at(t).submit(make_job(1, 1e6));
  cluster.core(0).set_runqueue({t});
  std::vector<CompletedJob> done;
  cluster.run_tick(tasks, 0.001, 0.0, done);
  ASSERT_EQ(done.size(), 1u);
  EXPECT_EQ(done[0].cluster, 3u);
}

TEST(ClusterTest, TransitionStallReducesCapacity) {
  // With a transition latency of half a tick, the tick after an OPP change
  // delivers only half the work.
  auto cluster = make_cluster(1, 0.0005);
  TaskSet tasks;
  const TaskId t = tasks.create("t", Affinity::Any);
  cluster.core(0).set_runqueue({t});
  std::vector<CompletedJob> done;

  // Without transition: 2e6 cycles available at 2 GHz over 1 ms.
  tasks.at(t).submit(make_job(1, 1.5e6));
  cluster.run_tick(tasks, 0.001, 0.0, done);
  EXPECT_EQ(done.size(), 1u);

  cluster.set_opp(3);
  cluster.set_opp(4);  // two transitions -> 1 ms of accumulated stall
  done.clear();
  tasks.at(t).submit(make_job(2, 1.5e6));
  cluster.run_tick(tasks, 0.001, 0.001, done);
  EXPECT_TRUE(done.empty());  // whole tick stalled
}

TEST(ClusterTest, PowerIncreasesWithOppAndLoad) {
  auto cluster = make_cluster();
  TaskSet tasks;
  const TaskId t = tasks.create("t", Affinity::Any);
  cluster.core(0).set_runqueue({t});
  std::vector<CompletedJob> done;

  cluster.set_opp(0);
  cluster.run_tick(tasks, 0.001, 0.0, done);
  const double idle_low = cluster.power_w(40.0);

  cluster.set_opp(4);
  cluster.run_tick(tasks, 0.001, 0.001, done);
  const double idle_high = cluster.power_w(40.0);
  EXPECT_GT(idle_high, idle_low);

  tasks.at(t).submit(make_job(1, 1e12));
  cluster.run_tick(tasks, 0.001, 0.002, done);
  const double busy_high = cluster.power_w(40.0);
  EXPECT_GT(busy_high, idle_high);
}

TEST(ClusterTest, MaxPowerIsUpperBound) {
  auto cluster = make_cluster();
  TaskSet tasks;
  const TaskId t = tasks.create("t", Affinity::Any);
  tasks.at(t).submit(make_job(1, 1e12));
  cluster.core(0).set_runqueue({t});
  std::vector<CompletedJob> done;
  cluster.run_tick(tasks, 0.001, 0.0, done);
  EXPECT_LE(cluster.power_w(40.0), cluster.max_power_w(40.0) + 1e-9);
  EXPECT_GT(cluster.max_power_w(40.0), 0.0);
}

TEST(ClusterTest, UtilAggregates) {
  auto cluster = make_cluster(2);
  TaskSet tasks;
  const TaskId t = tasks.create("t", Affinity::Any);
  cluster.core(0).set_runqueue({t});
  std::vector<CompletedJob> done;
  for (int i = 0; i < 300; ++i) {
    tasks.at(t).submit(make_job(static_cast<JobId>(i + 1), 10e6));
    cluster.run_tick(tasks, 0.001, i * 0.001, done);
  }
  // One of two cores saturated: max ~1.0, avg ~0.5.
  EXPECT_GT(cluster.util_max(), 0.95);
  EXPECT_NEAR(cluster.util_avg(), 0.5, 0.05);
  // Invariant utilization scales by f/f_max (cluster at top OPP: equal).
  EXPECT_NEAR(cluster.util_scale_invariant(), cluster.util_avg(), 1e-9);
}

TEST(ClusterTest, OverdueJobsAcrossRunqueues) {
  auto cluster = make_cluster(2);
  TaskSet tasks;
  const TaskId t = tasks.create("t", Affinity::Any);
  Job job = make_job(1, 1e6, 0.5);
  tasks.at(t).submit(job);
  cluster.core(1).set_runqueue({t});
  EXPECT_EQ(cluster.overdue_jobs(tasks, 0.0), 0u);
  EXPECT_EQ(cluster.overdue_jobs(tasks, 1.0), 1u);
}

TEST(ClusterTest, ResetTrackingClearsTransitionsAndPelt) {
  auto cluster = make_cluster();
  cluster.set_opp(0);
  EXPECT_EQ(cluster.dvfs_transitions(), 1u);
  cluster.reset_tracking();
  EXPECT_EQ(cluster.dvfs_transitions(), 0u);
  EXPECT_EQ(cluster.util_avg(), 0.0);
}

}  // namespace
}  // namespace pmrl::soc
