#include "soc/mem_domain.hpp"

#include <gtest/gtest.h>

#include "soc/soc.hpp"

namespace pmrl::soc {
namespace {

MemDomainParams enabled_params() {
  MemDomainParams params;
  params.enabled = true;
  return params;
}

TEST(MemDomainTest, DefaultTableShape) {
  const OppTable table = default_mem_opps();
  EXPECT_EQ(table.size(), 7u);
  EXPECT_DOUBLE_EQ(table.lowest().freq_hz, 400e6);
  EXPECT_DOUBLE_EQ(table.highest().freq_hz, 1866e6);
}

TEST(MemDomainTest, StartsAtTopOpp) {
  MemDomain mem(enabled_params());
  EXPECT_EQ(mem.opp_index(), 6u);
  EXPECT_DOUBLE_EQ(mem.stall_factor(), 1.0);
}

TEST(MemDomainTest, SetOppClampsAndCounts) {
  MemDomain mem(enabled_params());
  mem.set_opp(2);
  EXPECT_EQ(mem.opp_index(), 2u);
  EXPECT_EQ(mem.dvfs_transitions(), 1u);
  mem.set_opp(99);
  EXPECT_EQ(mem.opp_index(), 6u);
  mem.set_opp(6);  // no-op
  EXPECT_EQ(mem.dvfs_transitions(), 2u);
}

TEST(MemDomainTest, UtilizationAndStall) {
  MemDomain mem(enabled_params());
  const double dt = 0.001;
  // Demand exactly half the capacity: util 0.5, no stall.
  const double cap = mem.capacity_cycles_per_s() * dt;
  mem.on_tick(0.5 * cap / mem.params().traffic_intensity, dt);
  EXPECT_NEAR(mem.util(), 0.5, 1e-12);
  EXPECT_DOUBLE_EQ(mem.stall_factor(), 1.0);
  // Demand double the capacity: util clamps at 1, stall factor 0.5.
  mem.on_tick(2.0 * cap / mem.params().traffic_intensity, dt);
  EXPECT_DOUBLE_EQ(mem.util(), 1.0);
  EXPECT_NEAR(mem.stall_factor(), 0.5, 1e-12);
}

TEST(MemDomainTest, LowerOppMeansLessBandwidthAndPower) {
  MemDomain fast(enabled_params());
  MemDomain slow(enabled_params());
  slow.set_opp(0);
  EXPECT_GT(fast.capacity_cycles_per_s(), slow.capacity_cycles_per_s());
  fast.on_tick(0.0, 0.001);
  slow.on_tick(0.0, 0.001);
  EXPECT_GT(fast.power_w(), slow.power_w());
  EXPECT_LE(fast.power_w(), fast.max_power_w() + 1e-12);
}

TEST(MemDomainTest, EnergyAccumulates) {
  MemDomain mem(enabled_params());
  for (int i = 0; i < 100; ++i) mem.on_tick(0.0, 0.001);
  EXPECT_GT(mem.energy_j(), 0.0);
  mem.reset_tracking();
  EXPECT_EQ(mem.energy_j(), 0.0);
  EXPECT_EQ(mem.dvfs_transitions(), 0u);
}

// ---- SoC integration -------------------------------------------------------

SocConfig mem_soc_config() {
  SocConfig config = tiny_test_soc_config();
  config.memory.enabled = true;
  return config;
}

TEST(MemSocTest, DomainCountAndTelemetry) {
  Soc soc(mem_soc_config());
  EXPECT_EQ(soc.cluster_count(), 1u);
  EXPECT_EQ(soc.domain_count(), 2u);
  ASSERT_TRUE(soc.has_memory_domain());
  const auto telemetry = soc.telemetry();
  ASSERT_EQ(telemetry.clusters.size(), 2u);
  EXPECT_EQ(telemetry.clusters[1].opp_count, 7u);
  EXPECT_DOUBLE_EQ(telemetry.clusters[1].max_freq_hz, 1866e6);
}

TEST(MemSocTest, SetOppRoutesToMemoryDomain) {
  Soc soc(mem_soc_config());
  soc.set_cluster_opp(1, 0);
  EXPECT_EQ(soc.memory_domain().opp_index(), 0u);
  EXPECT_DOUBLE_EQ(soc.domain_freq_hz(1), 400e6);
  EXPECT_THROW(soc.set_cluster_opp(5, 0), std::out_of_range);
}

TEST(MemSocTest, BandwidthStarvationSlowsExecution) {
  // Same CPU work with memory at min vs max OPP: the starved system
  // completes later.
  auto time_to_finish = [](std::size_t mem_opp) {
    SocConfig config = tiny_test_soc_config();
    config.memory.enabled = true;
    // Make memory the bottleneck: high intensity, weak service rate.
    config.memory.traffic_intensity = 1.0;
    config.memory.service_per_cycle = 1.0;
    Soc soc(config);
    soc.set_cluster_opp(1, mem_opp);
    const TaskId t = soc.create_task("t", Affinity::Any);
    Job job;
    job.id = 1;
    job.work_cycles = 50e6;
    soc.submit(t, job);
    std::vector<CompletedJob> done;
    while (done.empty()) soc.step(0.001, done);
    return done[0].completion_s;
  };
  EXPECT_GT(time_to_finish(0), 1.5 * time_to_finish(6));
}

TEST(MemSocTest, StallTimeTracked) {
  SocConfig config = tiny_test_soc_config();
  config.memory.enabled = true;
  config.memory.traffic_intensity = 1.0;
  config.memory.service_per_cycle = 0.5;
  Soc soc(config);
  soc.set_cluster_opp(1, 0);  // weakest memory
  const TaskId t = soc.create_task("t", Affinity::Any);
  std::vector<CompletedJob> done;
  for (int i = 0; i < 100; ++i) {
    Job job;
    job.id = static_cast<JobId>(i + 1);
    job.work_cycles = 10e6;
    soc.submit(t, job);
    soc.step(0.001, done);
  }
  EXPECT_GT(soc.mem_stalled_s(), 0.01);
  // The stalled memory reports overdue pressure once jobs pile up past
  // deadlines... (these jobs have no deadline, so overdue stays 0).
  EXPECT_EQ(soc.telemetry().clusters[1].overdue_jobs, 0u);
}

TEST(MemSocTest, MemoryEnergyCountsTowardTotal) {
  Soc with(mem_soc_config());
  Soc without(tiny_test_soc_config());
  std::vector<CompletedJob> done;
  for (int i = 0; i < 100; ++i) {
    with.step(0.001, done);
    without.step(0.001, done);
  }
  EXPECT_GT(with.total_energy_j(), without.total_energy_j());
}

}  // namespace
}  // namespace pmrl::soc
