#include "soc/soc.hpp"

#include <gtest/gtest.h>

namespace pmrl::soc {
namespace {

Job make_job(JobId id, double work, double deadline = -1.0) {
  Job job;
  job.id = id;
  job.work_cycles = work;
  job.deadline_s = deadline;
  return job;
}

TEST(SocTest, DefaultConfigShape) {
  const SocConfig config = default_mobile_soc_config();
  ASSERT_EQ(config.clusters.size(), 2u);
  EXPECT_EQ(config.clusters[0].cluster.core_type, CoreType::Little);
  EXPECT_EQ(config.clusters[1].cluster.core_type, CoreType::Big);
  EXPECT_EQ(config.clusters[0].cluster.core_count, 4u);
  EXPECT_EQ(config.clusters[1].cluster.core_count, 4u);
}

TEST(SocTest, RejectsEmptyConfig) {
  SocConfig config;
  EXPECT_THROW(Soc{config}, std::invalid_argument);
}

TEST(SocTest, TimeAdvancesByTick) {
  Soc soc(tiny_test_soc_config());
  std::vector<CompletedJob> done;
  soc.step(0.001, done);
  soc.step(0.002, done);
  EXPECT_NEAR(soc.now_s(), 0.003, 1e-12);
  EXPECT_THROW(soc.step(0.0, done), std::invalid_argument);
}

TEST(SocTest, EnergyAccumulatesEvenIdle) {
  Soc soc(tiny_test_soc_config());
  std::vector<CompletedJob> done;
  for (int i = 0; i < 100; ++i) soc.step(0.001, done);
  // Leakage + uncore static power burn energy at idle.
  EXPECT_GT(soc.total_energy_j(), 0.0);
}

TEST(SocTest, SubmittedWorkCompletes) {
  Soc soc(tiny_test_soc_config());
  const TaskId t = soc.create_task("t", Affinity::Any);
  soc.submit(t, make_job(1, 1e6));
  std::vector<CompletedJob> done;
  for (int i = 0; i < 10 && done.empty(); ++i) soc.step(0.001, done);
  ASSERT_EQ(done.size(), 1u);
  EXPECT_EQ(done[0].job.id, 1u);
  EXPECT_GT(done[0].completion_s, 0.0);
}

TEST(SocTest, SubmitStampsReleaseTime) {
  Soc soc(tiny_test_soc_config());
  const TaskId t = soc.create_task("t", Affinity::Any);
  std::vector<CompletedJob> done;
  soc.step(0.001, done);
  soc.submit(t, make_job(1, 1e6));
  soc.step(0.001, done);
  ASSERT_EQ(done.size(), 1u);
  EXPECT_NEAR(done[0].job.release_s, 0.001, 1e-12);
}

TEST(SocTest, BusyBurnsMoreThanIdle) {
  Soc idle_soc(tiny_test_soc_config());
  Soc busy_soc(tiny_test_soc_config());
  const TaskId t = busy_soc.create_task("t", Affinity::Any);
  std::vector<CompletedJob> done;
  for (int i = 0; i < 100; ++i) {
    busy_soc.submit(t, make_job(static_cast<JobId>(i + 1), 10e6));
    idle_soc.step(0.001, done);
    busy_soc.step(0.001, done);
  }
  EXPECT_GT(busy_soc.total_energy_j(), idle_soc.total_energy_j() * 1.5);
}

TEST(SocTest, LowerOppSavesEnergyAtIdle) {
  Soc high(tiny_test_soc_config());
  Soc low(tiny_test_soc_config());
  low.set_cluster_opp(0, 0);
  std::vector<CompletedJob> done;
  for (int i = 0; i < 100; ++i) {
    high.step(0.001, done);
    low.step(0.001, done);
  }
  EXPECT_LT(low.total_energy_j(), high.total_energy_j());
}

TEST(SocTest, TelemetryReflectsState) {
  Soc soc(tiny_test_soc_config());
  const TaskId t = soc.create_task("t", Affinity::Any);
  soc.submit(t, make_job(1, 1e12, 1.0));
  std::vector<CompletedJob> done;
  for (int i = 0; i < 50; ++i) soc.step(0.001, done);
  const SocTelemetry telemetry = soc.telemetry();
  ASSERT_EQ(telemetry.clusters.size(), 1u);
  const auto& ct = telemetry.clusters[0];
  EXPECT_EQ(ct.opp_index, 4u);
  EXPECT_DOUBLE_EQ(ct.freq_hz, 2000e6);
  EXPECT_DOUBLE_EQ(ct.max_freq_hz, 2000e6);
  EXPECT_GT(ct.util_max, 0.5);       // one saturated core
  EXPECT_GT(ct.power_w, 0.0);
  EXPECT_GT(ct.max_power_w, ct.power_w * 0.99);
  EXPECT_EQ(ct.nr_running, 1u);
  EXPECT_GT(telemetry.total_power_w, ct.power_w);  // uncore adds on top
  EXPECT_GT(telemetry.backlog_cycles, 0.0);
  EXPECT_EQ(telemetry.runnable_tasks, 1u);
}

TEST(SocTest, TelemetryOverdueJobs) {
  Soc soc(tiny_test_soc_config());
  const TaskId t = soc.create_task("t", Affinity::Any);
  soc.submit(t, make_job(1, 1e12, 0.005));  // will miss its 5 ms deadline
  std::vector<CompletedJob> done;
  for (int i = 0; i < 10; ++i) soc.step(0.001, done);
  EXPECT_EQ(soc.telemetry().clusters[0].overdue_jobs, 1u);
}

TEST(SocTest, ThermalThrottleCapsOpp) {
  SocConfig config = tiny_test_soc_config();
  config.throttle.enabled = true;
  config.throttle.trip_temp_c = 40.0;
  // Clear point below the post-throttle steady state: once tripped, the
  // throttle stays engaged for the rest of the test.
  config.throttle.clear_temp_c = 25.0;
  config.throttle.throttle_cap_index = 1;
  // Hot little package: tau = 1.6 s, T_inf ~= 25 + P*8 under full load.
  config.clusters[0].thermal.r_th_k_per_w = 8.0;
  config.clusters[0].thermal.c_th_j_per_k = 0.2;
  Soc soc(config);
  // Saturate both cores.
  const TaskId t1 = soc.create_task("t1", Affinity::Any);
  const TaskId t2 = soc.create_task("t2", Affinity::Any);
  std::vector<CompletedJob> done;
  for (int i = 0; i < 3000; ++i) {
    soc.submit(t1, make_job(static_cast<JobId>(2 * i + 1), 10e6));
    soc.submit(t2, make_job(static_cast<JobId>(2 * i + 2), 10e6));
    soc.step(0.001, done);
  }
  EXPECT_TRUE(soc.throttled(0));
  EXPECT_LE(soc.cluster(0).opp_index(), 1u);
  // Requests above the cap are clamped while throttled.
  soc.set_cluster_opp(0, 4);
  EXPECT_LE(soc.cluster(0).opp_index(), 1u);
}

TEST(SocTest, ResetClearsStateButKeepsConfig) {
  Soc soc(tiny_test_soc_config());
  const TaskId t = soc.create_task("t", Affinity::Any);
  soc.submit(t, make_job(1, 1e12));
  std::vector<CompletedJob> done;
  for (int i = 0; i < 10; ++i) soc.step(0.001, done);
  EXPECT_GT(soc.total_energy_j(), 0.0);
  soc.reset();
  EXPECT_EQ(soc.total_energy_j(), 0.0);
  EXPECT_EQ(soc.now_s(), 0.0);
  EXPECT_EQ(soc.telemetry().backlog_cycles, 0.0);
  EXPECT_EQ(soc.tasks().size(), 1u);  // tasks persist, queues cleared
}

TEST(SocTest, InvalidClusterIndexThrows) {
  Soc soc(tiny_test_soc_config());
  EXPECT_THROW(soc.set_cluster_opp(5, 0), std::out_of_range);
}

TEST(SocTest, EnergyConservation) {
  // Total energy equals the sum of per-cluster energy plus uncore energy
  // (telemetry consistency check).
  Soc soc(default_mobile_soc_config());
  const TaskId t = soc.create_task("t", Affinity::Any);
  std::vector<CompletedJob> done;
  for (int i = 0; i < 500; ++i) {
    if (i % 3 == 0) soc.submit(t, make_job(static_cast<JobId>(i + 1), 2e6));
    soc.step(0.001, done);
  }
  const auto telemetry = soc.telemetry();
  double cluster_sum = 0.0;
  for (const auto& ct : telemetry.clusters) cluster_sum += ct.energy_j;
  EXPECT_GT(cluster_sum, 0.0);
  EXPECT_LT(cluster_sum, telemetry.total_energy_j);
  // Uncore energy = total - clusters; must be positive and bounded by the
  // static+dynamic uncore envelope.
  const double uncore = telemetry.total_energy_j - cluster_sum;
  EXPECT_GT(uncore, 0.5 * 0.25 * 0.5);  // at least static power * time/2
}

}  // namespace
}  // namespace pmrl::soc
