#include "soc/opp.hpp"

#include <gtest/gtest.h>

namespace pmrl::soc {
namespace {

TEST(OppTableTest, RejectsEmptyAndUnsorted) {
  EXPECT_THROW(OppTable({}), std::invalid_argument);
  EXPECT_THROW(OppTable({{2e9, 1.0}, {1e9, 0.9}}), std::invalid_argument);
  EXPECT_THROW(OppTable({{1e9, 1.0}, {1e9, 1.1}}), std::invalid_argument);
}

TEST(OppTableTest, RejectsNonPositiveVoltage) {
  EXPECT_THROW(OppTable({{1e9, 0.0}}), std::invalid_argument);
  EXPECT_THROW(OppTable({{1e9, -1.0}}), std::invalid_argument);
}

TEST(OppTableTest, AccessorsAndBounds) {
  const OppTable t = tiny_test_opps();
  EXPECT_EQ(t.size(), 5u);
  EXPECT_DOUBLE_EQ(t.lowest().freq_hz, 200e6);
  EXPECT_DOUBLE_EQ(t.highest().freq_hz, 2000e6);
  EXPECT_THROW(t.at(5), std::out_of_range);
}

TEST(OppTableTest, IndexForMinFreq) {
  const OppTable t = tiny_test_opps();  // 200/500/1000/1500/2000 MHz
  EXPECT_EQ(t.index_for_min_freq(0.0), 0u);
  EXPECT_EQ(t.index_for_min_freq(200e6), 0u);
  EXPECT_EQ(t.index_for_min_freq(201e6), 1u);
  EXPECT_EQ(t.index_for_min_freq(1000e6), 2u);
  EXPECT_EQ(t.index_for_min_freq(1600e6), 4u);
  // Demands beyond the table cap at the top OPP.
  EXPECT_EQ(t.index_for_min_freq(9e9), 4u);
}

TEST(OppTableTest, NearestIndex) {
  const OppTable t = tiny_test_opps();
  EXPECT_EQ(t.nearest_index(180e6), 0u);
  EXPECT_EQ(t.nearest_index(700e6), 1u);
  EXPECT_EQ(t.nearest_index(770e6), 2u);
  EXPECT_EQ(t.nearest_index(5e9), 4u);
}

TEST(OppTableTest, BigClusterTableShape) {
  const OppTable t = big_cluster_opps();
  EXPECT_EQ(t.size(), 19u);  // 200..2000 MHz in 100 MHz steps
  EXPECT_DOUBLE_EQ(t.lowest().freq_hz, 200e6);
  EXPECT_DOUBLE_EQ(t.lowest().voltage_v, 0.9);
  EXPECT_DOUBLE_EQ(t.highest().freq_hz, 2000e6);
  EXPECT_DOUBLE_EQ(t.highest().voltage_v, 1.3625);
}

TEST(OppTableTest, LittleClusterTableShape) {
  const OppTable t = little_cluster_opps();
  EXPECT_EQ(t.size(), 13u);  // 200..1400 MHz
  EXPECT_DOUBLE_EQ(t.highest().freq_hz, 1400e6);
  EXPECT_DOUBLE_EQ(t.highest().voltage_v, 1.25);
}

TEST(OppTableTest, VoltageMonotoneInFrequency) {
  for (const auto& table : {big_cluster_opps(), little_cluster_opps()}) {
    double prev_v = 0.0;
    for (const auto& p : table.points()) {
      EXPECT_GT(p.voltage_v, prev_v);
      prev_v = p.voltage_v;
    }
  }
}

TEST(OppTableTest, ScaledOppsShiftTheEnvelope) {
  const OppTable base = tiny_test_opps();
  const OppTable fast = scaled_opps(base, 1.1, 1.05);
  ASSERT_EQ(fast.size(), base.size());
  for (std::size_t i = 0; i < base.size(); ++i) {
    EXPECT_DOUBLE_EQ(fast.at(i).freq_hz, base.at(i).freq_hz * 1.1);
    EXPECT_DOUBLE_EQ(fast.at(i).voltage_v, base.at(i).voltage_v * 1.05);
  }
  // Identity scaling reproduces the table.
  const OppTable same = scaled_opps(base, 1.0, 1.0);
  for (std::size_t i = 0; i < base.size(); ++i) {
    EXPECT_DOUBLE_EQ(same.at(i).freq_hz, base.at(i).freq_hz);
  }
}

TEST(OppTableTest, ScaledOppsRejectsNonPositiveScales) {
  const OppTable base = tiny_test_opps();
  EXPECT_THROW(scaled_opps(base, 0.0, 1.0), std::invalid_argument);
  EXPECT_THROW(scaled_opps(base, 1.0, -0.5), std::invalid_argument);
}

}  // namespace
}  // namespace pmrl::soc
