#include "workload/qos.hpp"

#include <gtest/gtest.h>

namespace pmrl::workload {
namespace {

soc::Job make_job(soc::JobId id, double release, double deadline) {
  soc::Job job;
  job.id = id;
  job.work_cycles = 1e6;
  job.release_s = release;
  job.deadline_s = deadline;
  return job;
}

soc::CompletedJob complete(soc::Job job, double completion,
                           soc::ClusterId cluster = 0) {
  soc::CompletedJob done;
  done.job = job;
  done.completion_s = completion;
  done.cluster = cluster;
  return done;
}

TEST(JobQualityTest, OnTimeIsOne) {
  EXPECT_DOUBLE_EQ(job_quality(complete(make_job(1, 0.0, 1.0), 0.9)), 1.0);
  EXPECT_DOUBLE_EQ(job_quality(complete(make_job(1, 0.0, 1.0), 1.0)), 1.0);
}

TEST(JobQualityTest, LinearDecayWithTardiness) {
  // Window = 1 s; half a window late -> 0.5 quality.
  EXPECT_DOUBLE_EQ(job_quality(complete(make_job(1, 0.0, 1.0), 1.5)), 0.5);
  // A full window late -> 0.
  EXPECT_DOUBLE_EQ(job_quality(complete(make_job(1, 0.0, 1.0), 2.0)), 0.0);
  // Beyond never goes negative.
  EXPECT_DOUBLE_EQ(job_quality(complete(make_job(1, 0.0, 1.0), 5.0)), 0.0);
}

TEST(JobQualityTest, BestEffortGetsCredit) {
  soc::Job job = make_job(1, 0.0, -1.0);
  EXPECT_DOUBLE_EQ(job_quality(complete(job, 100.0), 0.25), 0.25);
  EXPECT_DOUBLE_EQ(job_quality(complete(job, 100.0), 0.5), 0.5);
}

TEST(JobQualityTest, ZeroWindowIsBinary) {
  // deadline == release: met exactly at release, else 0.
  EXPECT_DOUBLE_EQ(job_quality(complete(make_job(1, 1.0, 1.0), 1.0)), 1.0);
  EXPECT_DOUBLE_EQ(job_quality(complete(make_job(1, 1.0, 1.0), 1.1)), 0.0);
}

TEST(QosTrackerTest, CountsReleasesAndCompletions) {
  QosTracker tracker;
  tracker.on_release(make_job(1, 0.0, 1.0));
  tracker.on_release(make_job(2, 0.0, -1.0));
  EXPECT_EQ(tracker.released(), 2u);
  EXPECT_EQ(tracker.released_with_deadline(), 1u);
  tracker.on_complete(complete(make_job(1, 0.0, 1.0), 0.5));
  EXPECT_EQ(tracker.completed(), 1u);
  EXPECT_DOUBLE_EQ(tracker.total_quality(), 1.0);
}

TEST(QosTrackerTest, ViolationOnLateCompletion) {
  QosTracker tracker;
  tracker.on_release(make_job(1, 0.0, 1.0));
  tracker.on_complete(complete(make_job(1, 0.0, 1.0), 1.2));
  EXPECT_EQ(tracker.violations(), 1u);
  EXPECT_DOUBLE_EQ(tracker.violation_rate(), 1.0);
  EXPECT_NEAR(tracker.total_quality(), 0.8, 1e-12);
}

TEST(QosTrackerTest, FinalizeCondemnsExpiredOutstanding) {
  QosTracker tracker;
  tracker.on_release(make_job(1, 0.0, 1.0));   // will expire
  tracker.on_release(make_job(2, 0.0, 10.0));  // still has time
  tracker.finalize(5.0);
  EXPECT_EQ(tracker.violations(), 1u);
  // Job 2's deadline has not passed: not condemned.
  EXPECT_DOUBLE_EQ(tracker.violation_rate(), 0.5);
}

TEST(QosTrackerTest, MeanQualityExcludesBestEffortCredits) {
  QosTracker tracker(0.25);
  tracker.on_release(make_job(1, 0.0, 1.0));
  tracker.on_release(make_job(2, 0.0, -1.0));
  tracker.on_complete(complete(make_job(1, 0.0, 1.0), 1.5));  // 0.5 quality
  tracker.on_complete(complete(make_job(2, 0.0, -1.0), 9.0));  // credit
  EXPECT_DOUBLE_EQ(tracker.mean_quality(), 0.5);
  EXPECT_DOUBLE_EQ(tracker.total_quality(), 0.75);
}

TEST(QosTrackerTest, ViolationRateZeroWhenNoDeadlines) {
  QosTracker tracker;
  tracker.on_release(make_job(1, 0.0, -1.0));
  EXPECT_DOUBLE_EQ(tracker.violation_rate(), 0.0);
  EXPECT_DOUBLE_EQ(tracker.mean_quality(), 1.0);
}

TEST(QosTrackerTest, LatencyDistributionRecorded) {
  QosTracker tracker;
  for (int i = 1; i <= 3; ++i) {
    const auto job = make_job(static_cast<soc::JobId>(i), 0.0, 1.0);
    tracker.on_release(job);
    tracker.on_complete(complete(job, 0.1 * i));
  }
  EXPECT_EQ(tracker.latencies().count(), 3u);
  EXPECT_NEAR(tracker.latencies().mean(), 0.2, 1e-12);
}

TEST(QosTrackerTest, PerClusterAttribution) {
  QosTracker tracker;
  const auto j1 = make_job(1, 0.0, 1.0);
  const auto j2 = make_job(2, 0.0, 1.0);
  const auto j3 = make_job(3, 0.0, 1.0);
  for (const auto& j : {j1, j2, j3}) tracker.on_release(j);
  tracker.on_complete(complete(j1, 0.5, /*cluster=*/0));
  tracker.on_complete(complete(j2, 1.5, /*cluster=*/1));  // late
  tracker.on_complete(complete(j3, 0.5, /*cluster=*/1));
  EXPECT_DOUBLE_EQ(tracker.cluster_deadline_quality(0), 1.0);
  EXPECT_EQ(tracker.cluster_deadline_completed(0), 1u);
  EXPECT_EQ(tracker.cluster_violations(0), 0u);
  EXPECT_DOUBLE_EQ(tracker.cluster_deadline_quality(1), 1.5);
  EXPECT_EQ(tracker.cluster_deadline_completed(1), 2u);
  EXPECT_EQ(tracker.cluster_violations(1), 1u);
  // Unknown cluster reads as empty, not a crash.
  EXPECT_EQ(tracker.cluster_deadline_completed(9), 0u);
}

TEST(QosTrackerTest, UnattributedCompletionStillCountsGlobally) {
  QosTracker tracker;
  const auto job = make_job(1, 0.0, 1.0);
  tracker.on_release(job);
  soc::CompletedJob done;
  done.job = job;
  done.completion_s = 0.5;  // cluster left at the "unknown" sentinel
  tracker.on_complete(done);
  EXPECT_EQ(tracker.completed(), 1u);
  EXPECT_EQ(tracker.cluster_deadline_completed(0), 0u);
}

}  // namespace
}  // namespace pmrl::workload
