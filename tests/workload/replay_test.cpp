// Hardened trace readers: every corruption class must surface as a typed
// TraceParseError carrying the offending 1-based line number, never UB or
// a generic crash. Also covers the UtilReplayScenario's sample-and-hold
// job synthesis.

#include "workload/replay.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <map>
#include <sstream>

#include "obs/trace_event.hpp"

namespace workload = pmrl::workload;
namespace obs = pmrl::obs;

namespace {

/// A valid Epoch event line with the given index/time/utils.
std::string epoch_line(std::uint64_t epoch, double time_s,
                       std::initializer_list<double> utils) {
  obs::TraceEvent event;
  event.kind = obs::EventKind::Epoch;
  event.epoch = epoch;
  event.time_s = time_s;
  for (const double util : utils) {
    obs::ClusterSample sample;
    sample.util_avg = util;
    sample.freq_hz = 1e9;
    event.clusters.push_back(sample);
  }
  return obs::trace_jsonl_line(event);
}

std::string run_begin_line() {
  obs::TraceEvent event;
  event.kind = obs::EventKind::RunBegin;
  event.detail = "scenario/governor";
  return obs::trace_jsonl_line(event);
}

workload::UtilTrace parse_jsonl(const std::string& text) {
  std::istringstream in(text);
  return workload::util_trace_from_jsonl(in);
}

workload::UtilTrace parse_text(const std::string& text) {
  std::istringstream in(text);
  return workload::util_trace_from_text(in);
}

/// Runs the parser and returns the thrown error (fails the test if none).
template <typename Fn>
workload::TraceParseError capture_error(Fn parse) {
  try {
    parse();
  } catch (const workload::TraceParseError& e) {
    return e;
  }
  ADD_FAILURE() << "expected TraceParseError";
  return workload::TraceParseError(0, "unreachable");
}

TEST(UtilTraceJsonl, ExtractsEpochSamplesAndSkipsOtherKinds) {
  const std::string text = run_begin_line() + "\n" +
                           epoch_line(1, 0.02, {0.25, 0.75}) + "\n" +
                           epoch_line(2, 0.04, {0.5, 0.1}) + "\n";
  const auto trace = parse_jsonl(text);
  ASSERT_EQ(trace.samples.size(), 2u);
  EXPECT_EQ(trace.domain_count(), 2u);
  EXPECT_DOUBLE_EQ(trace.samples[0].time_s, 0.02);
  EXPECT_DOUBLE_EQ(trace.samples[0].util[0], 0.25);
  EXPECT_DOUBLE_EQ(trace.samples[1].util[1], 0.1);
  EXPECT_DOUBLE_EQ(trace.duration_s(), 0.04);
}

TEST(UtilTraceJsonl, SkipsBlankAndCommentLines) {
  const std::string text = "# recorded by pmrl_cli\n\n" +
                           epoch_line(1, 0.02, {0.5}) + "\n   \n";
  EXPECT_EQ(parse_jsonl(text).samples.size(), 1u);
}

TEST(UtilTraceJsonl, RejectsTruncatedLineWithLineNumber) {
  // A half-written record (process died mid-flush) has no closing brace.
  const std::string full = epoch_line(1, 0.02, {0.5});
  const std::string text =
      full + "\n" + full.substr(0, full.size() / 2) + "\n";
  const auto error = capture_error([&] { parse_jsonl(text); });
  EXPECT_EQ(error.line(), 2u);
  EXPECT_NE(std::string(error.what()).find("truncated"), std::string::npos);
  EXPECT_NE(std::string(error.what()).find("line 2"), std::string::npos);
}

TEST(UtilTraceJsonl, RejectsMalformedJson) {
  const auto error =
      capture_error([] { parse_jsonl("{\"kind\":\"Epoch\",}\n"); });
  EXPECT_EQ(error.line(), 1u);
}

TEST(UtilTraceJsonl, RejectsNaNUtilization) {
  // %.17g serializes NaN as "nan", which the strict number parser refuses.
  const std::string text =
      epoch_line(1, 0.02, {std::numeric_limits<double>::quiet_NaN()}) + "\n";
  const auto error = capture_error([&] { parse_jsonl(text); });
  EXPECT_EQ(error.line(), 1u);
}

TEST(UtilTraceJsonl, RejectsInfiniteTime) {
  const std::string text =
      epoch_line(1, std::numeric_limits<double>::infinity(), {0.5}) + "\n";
  const auto error = capture_error([&] { parse_jsonl(text); });
  EXPECT_EQ(error.line(), 1u);
}

TEST(UtilTraceJsonl, RejectsOutOfOrderEpochs) {
  const std::string text = epoch_line(5, 0.10, {0.5}) + "\n" +
                           epoch_line(4, 0.12, {0.5}) + "\n";
  const auto error = capture_error([&] { parse_jsonl(text); });
  EXPECT_EQ(error.line(), 2u);
  EXPECT_NE(std::string(error.what()).find("out-of-order epoch"),
            std::string::npos);
}

TEST(UtilTraceJsonl, RejectsTimeGoingBackwards) {
  const std::string text = epoch_line(1, 0.10, {0.5}) + "\n" +
                           epoch_line(2, 0.05, {0.5}) + "\n";
  const auto error = capture_error([&] { parse_jsonl(text); });
  EXPECT_EQ(error.line(), 2u);
}

TEST(UtilTraceJsonl, RejectsInconsistentClusterCount) {
  const std::string text = epoch_line(1, 0.02, {0.5, 0.5}) + "\n" +
                           epoch_line(2, 0.04, {0.5}) + "\n";
  const auto error = capture_error([&] { parse_jsonl(text); });
  EXPECT_EQ(error.line(), 2u);
}

TEST(UtilTraceJsonl, RejectsNegativeUtilization) {
  const std::string text = epoch_line(1, 0.02, {-0.25}) + "\n";
  const auto error = capture_error([&] { parse_jsonl(text); });
  EXPECT_EQ(error.line(), 1u);
}

TEST(UtilTraceJsonl, RejectsTraceWithoutEpochEvents) {
  const auto error =
      capture_error([] { parse_jsonl(run_begin_line() + "\n"); });
  EXPECT_EQ(error.line(), 0u);
}

TEST(UtilTraceText, ParsesRowsAndClampsToOne) {
  const auto trace =
      parse_text("# device capture\n0.0 0.25 0.50\n1.0 1.2 0.75\n");
  ASSERT_EQ(trace.samples.size(), 2u);
  EXPECT_EQ(trace.domain_count(), 2u);
  EXPECT_DOUBLE_EQ(trace.samples[1].util[0], 1.0);  // clamped
  EXPECT_DOUBLE_EQ(trace.samples[1].util[1], 0.75);
}

TEST(UtilTraceText, NormalizesPercentScale) {
  const auto trace = parse_text("0.0 25 50\n1.0 80 5\n");
  EXPECT_DOUBLE_EQ(trace.samples[0].util[0], 0.25);
  EXPECT_DOUBLE_EQ(trace.samples[1].util[1], 0.05);
}

TEST(UtilTraceText, RejectsUtilizationBeyondPercentScale) {
  const auto error = capture_error([] { parse_text("0.0 250\n"); });
  EXPECT_NE(std::string(error.what()).find("scale"), std::string::npos);
}

TEST(UtilTraceText, RejectsUnparseableAndTrailingJunkFields) {
  EXPECT_EQ(capture_error([] { parse_text("0.0 abc\n"); }).line(), 1u);
  EXPECT_EQ(capture_error([] { parse_text("0.0 0.5\n1.0 0.5x\n"); }).line(),
            2u);
}

TEST(UtilTraceText, RejectsNaNAndInf) {
  EXPECT_EQ(capture_error([] { parse_text("0.0 nan\n"); }).line(), 1u);
  EXPECT_EQ(capture_error([] { parse_text("0.0 inf\n"); }).line(), 1u);
}

TEST(UtilTraceText, RejectsNegativeUtil) {
  EXPECT_EQ(capture_error([] { parse_text("0.0 -0.5\n"); }).line(), 1u);
}

TEST(UtilTraceText, RejectsTruncatedRow) {
  const auto error = capture_error([] { parse_text("0.0 0.5\n1.0\n"); });
  EXPECT_EQ(error.line(), 2u);
  EXPECT_NE(std::string(error.what()).find("truncated"), std::string::npos);
}

TEST(UtilTraceText, RejectsInconsistentColumns) {
  EXPECT_EQ(
      capture_error([] { parse_text("0.0 0.5 0.5\n1.0 0.5\n"); }).line(),
      2u);
}

TEST(UtilTraceText, RejectsNonIncreasingTimestamps) {
  EXPECT_EQ(capture_error([] { parse_text("0.0 0.5\n0.0 0.6\n"); }).line(),
            2u);
  EXPECT_EQ(capture_error([] { parse_text("1.0 0.5\n0.5 0.6\n"); }).line(),
            2u);
}

TEST(UtilTraceText, RejectsEmptyTrace) {
  EXPECT_EQ(capture_error([] { parse_text("# only comments\n"); }).line(),
            0u);
}

/// Recording host: counts submissions and total work per task.
class RecordingHost : public workload::WorkloadHost {
 public:
  pmrl::soc::TaskId create_task(std::string name, pmrl::soc::Affinity,
                                double) override {
    names_.push_back(std::move(name));
    return static_cast<pmrl::soc::TaskId>(names_.size() - 1);
  }
  void submit(pmrl::soc::TaskId task, double work_cycles, double) override {
    ++jobs_[task];
    work_[task] += work_cycles;
  }

  std::vector<std::string> names_;
  std::map<pmrl::soc::TaskId, std::size_t> jobs_;
  std::map<pmrl::soc::TaskId, double> work_;
};

TEST(UtilReplayScenario, SubmitsWorkProportionalToRecordedUtil) {
  workload::UtilTrace trace;
  trace.samples.push_back({0.0, {0.2, 0.8}});
  trace.samples.push_back({0.1, {0.4, 0.8}});
  trace.samples.push_back({0.19, {0.4, 0.8}});
  workload::UtilReplayConfig config;
  config.period_s = 0.020;
  workload::UtilReplayScenario scenario(trace, config, "test");

  RecordingHost host;
  scenario.setup(host);
  ASSERT_EQ(host.names_.size(), 2u);
  for (int i = 0; i < 200; ++i) {
    scenario.tick(host, i * 0.001, 0.001);
  }
  // 10 releases (0.00 .. 0.18 s) per domain; work tracks the recorded
  // util: domain 0 holds 0.2 for 5 periods then 0.4, domain 1 holds 0.8.
  EXPECT_EQ(host.jobs_[0], 10u);
  EXPECT_EQ(host.jobs_[1], 10u);
  const double unit = config.cycles_per_util_second * config.period_s;
  EXPECT_NEAR(host.work_[0], (5 * 0.2 + 5 * 0.4) * unit, 1e-6);
  EXPECT_NEAR(host.work_[1], 10 * 0.8 * unit, 1e-6);
  EXPECT_EQ(scenario.submitted(), 20u);
}

TEST(UtilReplayScenario, IdleDomainsBelowFloorReleaseNothing) {
  workload::UtilTrace trace;
  trace.samples.push_back({0.0, {0.0, 0.5}});
  trace.samples.push_back({0.1, {0.0, 0.5}});
  workload::UtilReplayScenario scenario(trace);
  RecordingHost host;
  scenario.setup(host);
  for (int i = 0; i < 100; ++i) {
    scenario.tick(host, i * 0.001, 0.001);
  }
  EXPECT_EQ(host.jobs_.count(0), 0u);
  EXPECT_GT(host.jobs_[1], 0u);
}

TEST(UtilReplayScenario, RejectsInvalidConstruction) {
  workload::UtilTrace trace;
  trace.samples.push_back({0.0, {0.5}});
  workload::UtilReplayConfig bad;
  bad.period_s = 0.0;
  EXPECT_THROW(workload::UtilReplayScenario(trace, bad),
               std::invalid_argument);
  EXPECT_THROW(workload::UtilReplayScenario(workload::UtilTrace{}),
               std::invalid_argument);
}

}  // namespace
