#include "workload/trace.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "workload/scenarios.hpp"

namespace pmrl::workload {
namespace {

class MockHost : public WorkloadHost {
 public:
  struct Submission {
    soc::TaskId task;
    double work;
    double deadline;
  };
  soc::TaskId create_task(std::string name, soc::Affinity affinity,
                          double weight) override {
    names.push_back(std::move(name));
    affinities.push_back(affinity);
    weights.push_back(weight);
    return names.size() - 1;
  }
  void submit(soc::TaskId task, double work, double deadline) override {
    submissions.push_back({task, work, deadline});
  }
  std::vector<std::string> names;
  std::vector<soc::Affinity> affinities;
  std::vector<double> weights;
  std::vector<Submission> submissions;
};

Trace sample_trace() {
  Trace trace;
  trace.tasks.push_back({"render", soc::Affinity::PreferBig, 2.0});
  trace.tasks.push_back({"audio", soc::Affinity::PreferLittle, 1.0});
  trace.jobs.push_back({0.010, 0, 5e6, 0.030});
  trace.jobs.push_back({0.015, 1, 1e5, 0.025});
  trace.jobs.push_back({0.040, 0, 6e6, -1.0});
  return trace;
}

TEST(TraceTest, SaveLoadRoundTrip) {
  const Trace original = sample_trace();
  std::stringstream io;
  original.save(io);
  const Trace loaded = Trace::load(io);
  ASSERT_EQ(loaded.tasks.size(), 2u);
  EXPECT_EQ(loaded.tasks[0].name, "render");
  EXPECT_EQ(loaded.tasks[0].affinity, soc::Affinity::PreferBig);
  EXPECT_DOUBLE_EQ(loaded.tasks[0].weight, 2.0);
  ASSERT_EQ(loaded.jobs.size(), 3u);
  EXPECT_NEAR(loaded.jobs[0].time_s, 0.010, 1e-9);
  EXPECT_NEAR(loaded.jobs[0].work_cycles, 5e6, 1.0);
  EXPECT_NEAR(loaded.jobs[0].deadline_s, 0.030, 1e-9);
  EXPECT_EQ(loaded.jobs[2].deadline_s, -1.0);
}

TEST(TraceTest, LoadSortsJobsByTime) {
  std::stringstream io;
  io << "task,t0,any,1\n";
  io << "job,0.5,0,1000,1\n";
  io << "job,0.1,0,2000,1\n";
  const Trace loaded = Trace::load(io);
  ASSERT_EQ(loaded.jobs.size(), 2u);
  EXPECT_LT(loaded.jobs[0].time_s, loaded.jobs[1].time_s);
}

TEST(TraceTest, LoadRejectsMalformedRows) {
  {
    std::stringstream io("task,only-two\n");
    EXPECT_THROW(Trace::load(io), std::runtime_error);
  }
  {
    std::stringstream io("job,0.1,0,1000\n");  // missing deadline
    EXPECT_THROW(Trace::load(io), std::runtime_error);
  }
  {
    std::stringstream io("banana,1,2,3\n");
    EXPECT_THROW(Trace::load(io), std::runtime_error);
  }
  {
    std::stringstream io("task,t,weird-affinity,1\n");
    EXPECT_THROW(Trace::load(io), std::runtime_error);
  }
  {
    // Job referencing a task that does not exist.
    std::stringstream io("task,t,any,1\njob,0.1,7,1000,1\n");
    EXPECT_THROW(Trace::load(io), std::runtime_error);
  }
}

TEST(TraceRecorderTest, RecordsTasksAndTimedJobs) {
  MockHost inner;
  TraceRecorder recorder(inner);
  const auto t = recorder.create_task("worker", soc::Affinity::Any, 1.5);
  recorder.set_now(0.25);
  recorder.submit(t, 3e6, 1.0);
  // Forwarded to the inner host.
  ASSERT_EQ(inner.submissions.size(), 1u);
  EXPECT_EQ(inner.names.size(), 1u);
  // And recorded.
  const Trace& trace = recorder.trace();
  ASSERT_EQ(trace.tasks.size(), 1u);
  EXPECT_DOUBLE_EQ(trace.tasks[0].weight, 1.5);
  ASSERT_EQ(trace.jobs.size(), 1u);
  EXPECT_DOUBLE_EQ(trace.jobs[0].time_s, 0.25);
}

TEST(TraceRecorderTest, SubmitToForeignTaskThrows) {
  MockHost inner;
  TraceRecorder recorder(inner);
  EXPECT_THROW(recorder.submit(42, 1e6, -1.0), std::runtime_error);
}

TEST(TraceScenarioTest, ReplaysTasksAndJobsInWindows) {
  TraceScenario scenario(sample_trace());
  MockHost host;
  scenario.setup(host);
  EXPECT_EQ(host.names.size(), 2u);
  EXPECT_EQ(host.affinities[1], soc::Affinity::PreferLittle);

  scenario.tick(host, 0.0, 0.012);  // covers job at 0.010
  EXPECT_EQ(host.submissions.size(), 1u);
  scenario.tick(host, 0.012, 0.010);  // covers job at 0.015
  EXPECT_EQ(host.submissions.size(), 2u);
  scenario.tick(host, 0.022, 0.100);  // rest
  EXPECT_EQ(host.submissions.size(), 3u);
  EXPECT_EQ(scenario.cursor(), 3u);
}

TEST(TraceScenarioTest, RecordedScenarioReplaysIdentically) {
  // Record a real scenario through the recorder, then replay the trace and
  // compare the submission streams.
  MockHost direct_host;
  auto direct = make_scenario(ScenarioKind::VideoPlayback, 31);
  direct->setup(direct_host);

  MockHost recorded_inner;
  TraceRecorder recorder(recorded_inner);
  auto recorded = make_scenario(ScenarioKind::VideoPlayback, 31);
  recorded->setup(recorder);

  const double dt = 0.001;
  for (int i = 0; i < 3000; ++i) {
    direct->tick(direct_host, i * dt, dt);
    recorder.set_now(i * dt);
    recorded->tick(recorder, i * dt, dt);
  }

  TraceScenario replay(recorder.take_trace());
  MockHost replay_host;
  replay.setup(replay_host);
  for (int i = 0; i < 3000; ++i) replay.tick(replay_host, i * dt, dt);

  ASSERT_EQ(replay_host.submissions.size(), direct_host.submissions.size());
  for (std::size_t i = 0; i < replay_host.submissions.size(); ++i) {
    EXPECT_EQ(replay_host.submissions[i].task,
              direct_host.submissions[i].task);
    EXPECT_DOUBLE_EQ(replay_host.submissions[i].work,
                     direct_host.submissions[i].work);
  }
}

}  // namespace
}  // namespace pmrl::workload
