// FuzzSpec generation, the versioned scenario text format, and the
// FuzzScenario's deterministic job synthesis.

#include "workload/fuzz.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <vector>

namespace workload = pmrl::workload;

namespace {

struct Job {
  pmrl::soc::TaskId task = 0;
  double work = 0.0;
  double deadline = 0.0;

  bool operator==(const Job&) const = default;
};

class RecordingHost : public workload::WorkloadHost {
 public:
  pmrl::soc::TaskId create_task(std::string, pmrl::soc::Affinity,
                                double) override {
    return next_id_++;
  }
  void submit(pmrl::soc::TaskId task, double work, double deadline) override {
    jobs.push_back({task, work, deadline});
  }

  std::vector<Job> jobs;

 private:
  pmrl::soc::TaskId next_id_ = 0;
};

/// Plays `scenario` over [0, duration) in `tick_s` steps, returning every
/// submitted job.
std::vector<Job> play(workload::FuzzScenario& scenario, double duration_s,
                      double tick_s = 0.001) {
  RecordingHost host;
  scenario.setup(host);
  const int ticks = static_cast<int>(duration_s / tick_s + 0.5);
  for (int i = 0; i < ticks; ++i) {
    scenario.tick(host, i * tick_s, tick_s);
  }
  return host.jobs;
}

workload::FuzzSpec small_spec() {
  workload::FuzzSpec spec;
  spec.name = "unit";
  spec.seed = 7;
  spec.stress.telemetry_noise_sigma = 0.05;
  spec.stress.thermal_event_rate = 0.01;
  spec.stress.thermal_max_delta_c = 20.0;
  workload::FuzzPhase phase1;
  phase1.duration_s = 0.5;
  workload::FuzzSource periodic;
  periodic.kind = workload::FuzzSource::Kind::Periodic;
  periodic.affinity = pmrl::soc::Affinity::PreferBig;
  periodic.period_s = 0.05;
  periodic.work_mean_cycles = 1e6;
  periodic.work_cv = 0.0;
  phase1.sources.push_back(periodic);
  workload::FuzzPhase phase2;
  phase2.duration_s = 0.25;  // deliberate idle
  spec.phases = {phase1, phase2};
  return spec;
}

TEST(GenerateFuzzSpec, SameSeedSameSpec) {
  const auto a = workload::generate_fuzz_spec(123);
  const auto b = workload::generate_fuzz_spec(123);
  std::ostringstream sa, sb;
  a.save(sa);
  b.save(sb);
  EXPECT_EQ(sa.str(), sb.str());
  EXPECT_EQ(a.seed, 123u);
}

TEST(GenerateFuzzSpec, SeedsDifferAndStayInEnvelope) {
  bool any_differs = false;
  std::string first;
  for (std::uint64_t seed = 0; seed < 40; ++seed) {
    const auto spec = workload::generate_fuzz_spec(seed);
    ASSERT_GE(spec.phases.size(), 1u);
    ASSERT_LE(spec.phases.size(), 4u);
    for (const auto& phase : spec.phases) {
      EXPECT_GE(phase.duration_s, 0.5);
      EXPECT_LE(phase.duration_s, 3.0);
      EXPECT_LE(phase.sources.size(), 3u);
      for (const auto& source : phase.sources) {
        EXPECT_GT(source.period_s, 0.0);
        EXPECT_GT(source.work_mean_cycles, 0.0);
        EXPECT_GE(source.spike_probability, 0.0);
        EXPECT_LE(source.spike_probability, 1.0);
        EXPECT_GE(source.burst_jobs, 1u);
      }
    }
    std::ostringstream out;
    spec.save(out);
    if (first.empty()) {
      first = out.str();
    } else if (out.str() != first) {
      any_differs = true;
    }
  }
  EXPECT_TRUE(any_differs);
}

TEST(FuzzSpecFormat, RoundTripsThroughSaveAndLoad) {
  const auto spec = small_spec();
  std::ostringstream out;
  spec.save(out, {"provenance comment"});
  std::istringstream in(out.str());
  const auto loaded = workload::FuzzSpec::load(in);
  EXPECT_EQ(loaded.name, spec.name);
  EXPECT_EQ(loaded.seed, spec.seed);
  EXPECT_EQ(loaded.phases.size(), spec.phases.size());
  EXPECT_DOUBLE_EQ(loaded.stress.telemetry_noise_sigma,
                   spec.stress.telemetry_noise_sigma);
  EXPECT_DOUBLE_EQ(loaded.phases[0].duration_s, spec.phases[0].duration_s);
  ASSERT_EQ(loaded.phases[0].sources.size(), 1u);
  EXPECT_EQ(loaded.phases[0].sources[0].affinity,
            pmrl::soc::Affinity::PreferBig);
  EXPECT_DOUBLE_EQ(loaded.phases[0].sources[0].work_mean_cycles, 1e6);
  EXPECT_TRUE(loaded.phases[1].sources.empty());
}

TEST(FuzzSpecFormat, GeneratedSpecsRoundTripExactly) {
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    const auto spec = workload::generate_fuzz_spec(seed);
    std::ostringstream first;
    spec.save(first);
    std::istringstream in(first.str());
    const auto loaded = workload::FuzzSpec::load(in);
    std::ostringstream second;
    loaded.save(second);
    EXPECT_EQ(first.str(), second.str()) << "seed " << seed;
  }
}

workload::TraceParseError load_error(const std::string& text) {
  try {
    std::istringstream in(text);
    workload::FuzzSpec::load(in);
  } catch (const workload::TraceParseError& e) {
    return e;
  }
  ADD_FAILURE() << "expected TraceParseError for: " << text;
  return workload::TraceParseError(0, "unreachable");
}

TEST(FuzzSpecFormat, RejectsMissingHeader) {
  EXPECT_EQ(load_error("name x\n").line(), 1u);
}

TEST(FuzzSpecFormat, RejectsEmptyAndPhaselessDocuments) {
  EXPECT_EQ(load_error("").line(), 0u);
  EXPECT_EQ(load_error("pmrl-scenario v1\nname x\n").line(), 0u);
}

TEST(FuzzSpecFormat, RejectsUnknownTagWithLineNumber) {
  const auto error =
      load_error("pmrl-scenario v1\nphase 1.0\nbogus 1 2 3\n");
  EXPECT_EQ(error.line(), 3u);
  EXPECT_NE(std::string(error.what()).find("unknown tag"),
            std::string::npos);
}

TEST(FuzzSpecFormat, RejectsSourceBeforePhase) {
  const auto error = load_error(
      "pmrl-scenario v1\n"
      "source periodic any 0.016 1e6 0.2 0 2.5 1 0.5 4\n");
  EXPECT_EQ(error.line(), 2u);
}

TEST(FuzzSpecFormat, RejectsTruncatedSourceRow) {
  const auto error = load_error(
      "pmrl-scenario v1\nphase 1.0\nsource periodic any 0.016 1e6\n");
  EXPECT_EQ(error.line(), 3u);
  EXPECT_NE(std::string(error.what()).find("truncated"), std::string::npos);
}

TEST(FuzzSpecFormat, RejectsNonFiniteAndNonPositiveValues) {
  EXPECT_EQ(load_error("pmrl-scenario v1\nphase nan\n").line(), 2u);
  EXPECT_EQ(load_error("pmrl-scenario v1\nphase 0\n").line(), 2u);
  EXPECT_EQ(load_error("pmrl-scenario v1\nphase -1\n").line(), 2u);
  EXPECT_EQ(
      load_error("pmrl-scenario v1\nphase 1\n"
                 "source periodic any inf 1e6 0.2 0 2.5 1 0.5 4\n")
          .line(),
      3u);
}

TEST(FuzzSpecFormat, RejectsOutOfRangeProbabilities) {
  EXPECT_EQ(
      load_error("pmrl-scenario v1\nstress 0.1 1.5 0 0 25\nphase 1\n")
          .line(),
      2u);
  EXPECT_EQ(
      load_error("pmrl-scenario v1\nphase 1\n"
                 "source periodic any 0.016 1e6 0.2 1.2 2.5 1 0.5 4\n")
          .line(),
      3u);
}

TEST(FuzzSpecFormat, CapschedRoundTripsAndIsOmittedWhenDisabled) {
  workload::FuzzSpec spec = small_spec();
  std::ostringstream without;
  spec.save(without);
  // No budget arm: the line is absent, so pre-capsched files stay valid
  // byte-for-byte.
  EXPECT_EQ(without.str().find("capsched"), std::string::npos);

  spec.stress.budget_cap_w = 5.25;
  spec.stress.budget_step_cap_w = 0.875;
  spec.stress.budget_step_frac = 0.4;
  std::ostringstream with;
  spec.save(with);
  std::istringstream in(with.str());
  const auto loaded = workload::FuzzSpec::load(in);
  EXPECT_DOUBLE_EQ(loaded.stress.budget_cap_w, 5.25);
  EXPECT_DOUBLE_EQ(loaded.stress.budget_step_cap_w, 0.875);
  EXPECT_DOUBLE_EQ(loaded.stress.budget_step_frac, 0.4);
}

TEST(FuzzSpecFormat, RejectsMalformedCapsched) {
  // Wrong arity.
  EXPECT_EQ(load_error("pmrl-scenario v1\ncapsched 1.0\nphase 1\n").line(),
            2u);
  // Cap must be positive (0 would be an always-present no-op line).
  EXPECT_EQ(load_error("pmrl-scenario v1\ncapsched 0 0 0.5\nphase 1\n")
                .line(),
            2u);
  // Step cap must be >= 0, step fraction in [0, 1].
  EXPECT_EQ(load_error("pmrl-scenario v1\ncapsched 2 -1 0.5\nphase 1\n")
                .line(),
            2u);
  EXPECT_EQ(load_error("pmrl-scenario v1\ncapsched 2 1 1.5\nphase 1\n")
                .line(),
            2u);
}

TEST(GenerateFuzzSpec, SomeSeedsDrawABudgetArmInsideTheEnvelope) {
  std::size_t budgeted = 0;
  for (std::uint64_t seed = 0; seed < 60; ++seed) {
    const auto spec = workload::generate_fuzz_spec(seed);
    if (spec.stress.budget_cap_w <= 0.0) continue;
    ++budgeted;
    EXPECT_GE(spec.stress.budget_cap_w, 4.0);
    EXPECT_LE(spec.stress.budget_cap_w, 8.0);
    if (spec.stress.budget_step_cap_w > 0.0) {
      // Step caps stay above the fleet's pinned-OPP floor so the settle
      // invariant is achievable.
      EXPECT_GE(spec.stress.budget_step_cap_w, 0.7);
      EXPECT_LE(spec.stress.budget_step_cap_w, 1.5);
      EXPECT_GE(spec.stress.budget_step_frac, 0.3);
      EXPECT_LE(spec.stress.budget_step_frac, 0.7);
    }
  }
  EXPECT_GT(budgeted, 0u);
  EXPECT_LT(budgeted, 40u);  // an arm, not the default
}

TEST(FuzzSpecFormat, RejectsZeroBurstJobs) {
  EXPECT_EQ(
      load_error("pmrl-scenario v1\nphase 1\n"
                 "source burst any 0.5 1e7 0.2 0 2.5 1 0.5 0\n")
          .line(),
      3u);
}

TEST(FuzzSpecFormat, RejectsFutureHeaderVersion) {
  EXPECT_EQ(load_error("pmrl-scenario v12\nphase 1\n").line(), 1u);
  EXPECT_EQ(load_error("pmrl-scenario v1 extra\nphase 1\n").line(), 1u);
}

TEST(FuzzSpecFormat, RejectsNegativeAndJunkIntegers) {
  // stoull would wrap "-1" to 2^64-1 and accept "7abc"; both must fail.
  EXPECT_EQ(load_error("pmrl-scenario v1\nseed -1\nphase 1\n").line(), 2u);
  EXPECT_EQ(load_error("pmrl-scenario v1\nseed 7abc\nphase 1\n").line(),
            2u);
  EXPECT_EQ(
      load_error("pmrl-scenario v1\nphase 1\n"
                 "source burst any 0.5 1e7 0.2 0 2.5 1 0.5 -1\n")
          .line(),
      3u);
  EXPECT_EQ(
      load_error("pmrl-scenario v1\nphase 1\n"
                 "source burst any 0.5 1e7 0.2 0 2.5 1 0.5 4x\n")
          .line(),
      3u);
  // Absurd burst counts are corrupt files, not scenarios.
  EXPECT_EQ(
      load_error("pmrl-scenario v1\nphase 1\n"
                 "source burst any 0.5 1e7 0.2 0 2.5 1 0.5 100001\n")
          .line(),
      3u);
  EXPECT_EQ(
      load_error(
          "pmrl-scenario v1\nphase 1\n"
          "source burst any 0.5 1e7 0.2 0 2.5 1 0.5 99999999999999999999\n")
          .line(),
      3u);
}

TEST(FuzzSpecFormat, AcceptsCommentsAndCrlf) {
  std::istringstream in(
      "pmrl-scenario v1\r\n"
      "# provenance line\r\n"
      "name crlf\r\n"
      "phase 1.0\r\n");
  const auto spec = workload::FuzzSpec::load(in);
  EXPECT_EQ(spec.name, "crlf");
  EXPECT_EQ(spec.phases.size(), 1u);
}

TEST(FuzzScenario, ReplaysBitIdenticalJobStream) {
  const auto spec = workload::generate_fuzz_spec(99);
  workload::FuzzScenario a(spec);
  workload::FuzzScenario b(spec);
  const double duration = spec.total_duration_s();
  EXPECT_EQ(play(a, duration), play(b, duration));
}

TEST(FuzzScenario, SingleSourceStreamIndependentOfTickGranularity) {
  // With one source the job stream is purely release-ordered, so playing
  // the spec at 1 ms vs 5 ms ticks must produce identical jobs. (With
  // several sources the interleaving legitimately depends on the window,
  // which is why the engine's tick size is part of the determinism
  // contract.)
  workload::FuzzSpec spec = small_spec();
  spec.phases.resize(1);
  spec.phases[0].sources[0].work_cv = 0.3;
  workload::FuzzScenario a(spec);
  workload::FuzzScenario b(spec);
  const double duration = spec.total_duration_s();
  EXPECT_EQ(play(a, duration, 0.001), play(b, duration, 0.005));
}

TEST(FuzzScenario, SourcesReleaseOnlyInsideTheirPhase) {
  workload::FuzzSpec spec = small_spec();
  spec.stress = {};
  workload::FuzzScenario scenario(spec);
  RecordingHost host;
  scenario.setup(host);
  // Phase 1 covers [0, 0.5): expect releases at 0.00, 0.05, ..., 0.45.
  for (int i = 0; i < 750; ++i) {
    scenario.tick(host, i * 0.001, 0.001);
  }
  EXPECT_EQ(host.jobs.size(), 10u);
  for (const auto& job : host.jobs) {
    EXPECT_LE(job.deadline, 0.5 + 0.05 * 1.0 + 1e-9);
  }
}

TEST(FuzzScenario, EmptyIdlePhaseIsAllowedButEmptySpecIsNot) {
  workload::FuzzSpec idle;
  idle.phases.push_back(workload::FuzzPhase{1.0, {}});
  workload::FuzzScenario scenario(idle);
  RecordingHost host;
  scenario.setup(host);
  scenario.tick(host, 0.0, 1.0);
  EXPECT_TRUE(host.jobs.empty());
  EXPECT_THROW(workload::FuzzScenario(workload::FuzzSpec{}),
               std::invalid_argument);
}

}  // namespace
