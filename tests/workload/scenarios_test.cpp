#include "workload/scenarios.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>

namespace pmrl::workload {
namespace {

class MockHost : public WorkloadHost {
 public:
  struct Submission {
    soc::TaskId task;
    double work;
    double deadline;
    double submit_time;
  };

  soc::TaskId create_task(std::string name, soc::Affinity affinity,
                          double weight) override {
    task_names.push_back(std::move(name));
    affinities.push_back(affinity);
    (void)weight;
    return task_names.size() - 1;
  }
  void submit(soc::TaskId task, double work, double deadline) override {
    submissions.push_back({task, work, deadline, now});
  }

  double now = 0.0;
  std::vector<std::string> task_names;
  std::vector<soc::Affinity> affinities;
  std::vector<Submission> submissions;
};

/// Drives a scenario against the mock host for `seconds` at 1 ms ticks.
void drive(Scenario& scenario, MockHost& host, double seconds) {
  scenario.setup(host);
  const double dt = 0.001;
  const int ticks = static_cast<int>(seconds / dt + 0.5);
  for (int i = 0; i < ticks; ++i) {
    host.now = i * dt;
    scenario.tick(host, host.now, dt);
  }
}

TEST(ScenarioFactoryTest, AllKindsConstructible) {
  for (const auto kind : all_scenario_kinds()) {
    const auto scenario = make_scenario(kind, 1);
    ASSERT_NE(scenario, nullptr);
    EXPECT_EQ(scenario->name(), scenario_kind_name(kind));
  }
  EXPECT_EQ(all_scenario_kinds().size(), 6u);
}

TEST(ScenarioFactoryTest, DistinctKindNames) {
  std::set<std::string> names;
  for (const auto kind : all_scenario_kinds()) {
    names.insert(scenario_kind_name(kind));
  }
  EXPECT_EQ(names.size(), 6u);
}

// Determinism: the same (kind, seed) must release the identical job stream.
class ScenarioDeterminism
    : public ::testing::TestWithParam<ScenarioKind> {};

TEST_P(ScenarioDeterminism, SameSeedSameStream) {
  MockHost a;
  MockHost b;
  auto sa = make_scenario(GetParam(), 77);
  auto sb = make_scenario(GetParam(), 77);
  drive(*sa, a, 5.0);
  drive(*sb, b, 5.0);
  ASSERT_EQ(a.submissions.size(), b.submissions.size());
  for (std::size_t i = 0; i < a.submissions.size(); ++i) {
    EXPECT_EQ(a.submissions[i].task, b.submissions[i].task);
    EXPECT_DOUBLE_EQ(a.submissions[i].work, b.submissions[i].work);
    EXPECT_DOUBLE_EQ(a.submissions[i].deadline, b.submissions[i].deadline);
  }
}

TEST_P(ScenarioDeterminism, DifferentSeedsDiffer) {
  MockHost a;
  MockHost b;
  auto sa = make_scenario(GetParam(), 77);
  auto sb = make_scenario(GetParam(), 78);
  drive(*sa, a, 5.0);
  drive(*sb, b, 5.0);
  bool identical = a.submissions.size() == b.submissions.size();
  if (identical) {
    for (std::size_t i = 0; i < a.submissions.size(); ++i) {
      if (a.submissions[i].work != b.submissions[i].work) {
        identical = false;
        break;
      }
    }
  }
  EXPECT_FALSE(identical);
}

TEST_P(ScenarioDeterminism, ProducesWork) {
  MockHost host;
  auto scenario = make_scenario(GetParam(), 5);
  drive(*scenario, host, 10.0);
  EXPECT_FALSE(host.submissions.empty());
  EXPECT_FALSE(host.task_names.empty());
}

INSTANTIATE_TEST_SUITE_P(
    AllScenarios, ScenarioDeterminism,
    ::testing::ValuesIn(all_scenario_kinds()),
    [](const ::testing::TestParamInfo<ScenarioKind>& param_info) {
      return scenario_kind_name(param_info.param);
    });

TEST(VideoScenarioTest, FrameRateAndDeadlines) {
  MockHost host;
  VideoPlaybackScenario scenario(1);
  drive(scenario, host, 10.0);
  // 30 fps decode + 100 Hz audio over 10 s: ~300 + ~1000 jobs.
  std::map<soc::TaskId, int> per_task;
  for (const auto& s : host.submissions) {
    ++per_task[s.task];
    EXPECT_GT(s.deadline, s.submit_time);  // every job has a deadline
  }
  ASSERT_EQ(host.task_names.size(), 2u);
  EXPECT_NEAR(per_task[0], 300, 2);   // decode
  EXPECT_NEAR(per_task[1], 1000, 2);  // audio
}

TEST(VideoScenarioTest, DecodeWorkScale) {
  MockHost host;
  VideoPlaybackScenario scenario(2);
  drive(scenario, host, 30.0);
  double decode_sum = 0.0;
  int decode_n = 0;
  for (const auto& s : host.submissions) {
    if (s.task == 0) {
      decode_sum += s.work;
      ++decode_n;
    }
  }
  // Mean ~8 Mcycles body with 8% x2.5 spikes -> ~8.96 Mcycles effective.
  EXPECT_NEAR(decode_sum / decode_n, 8.96e6, 0.8e6);
}

TEST(GamingScenarioTest, SceneChangesModulateRenderWork) {
  MockHost host;
  GamingScenario scenario(3);
  drive(scenario, host, 60.0);
  // Render task is id 0; look for distinct work regimes over time.
  double min_w = 1e18;
  double max_w = 0.0;
  for (const auto& s : host.submissions) {
    if (s.task == 0) {
      min_w = std::min(min_w, s.work);
      max_w = std::max(max_w, s.work);
    }
  }
  // Light scenes ~6 Mcycles vs heavy ~20 Mcycles: range must exceed 2x.
  EXPECT_GT(max_w / min_w, 2.0);
}

TEST(WebScenarioTest, BurstsAndIdleGaps) {
  MockHost host;
  WebBrowsingScenario scenario(4);
  drive(scenario, host, 30.0);
  // Page loads release 24 jobs at one instant: find such a burst.
  std::map<double, int> per_time;
  for (const auto& s : host.submissions) ++per_time[s.submit_time];
  int max_batch = 0;
  for (const auto& [t, n] : per_time) max_batch = std::max(max_batch, n);
  EXPECT_GE(max_batch, 24);
}

TEST(AppLaunchScenarioTest, PeriodicLaunchBursts) {
  MockHost host;
  AppLaunchScenario scenario(5);
  drive(scenario, host, 30.0);
  // Launches every 5-8 s from t=0.5 -> at least 3 bursts of 16 jobs.
  std::map<double, int> per_time;
  for (const auto& s : host.submissions) ++per_time[s.submit_time];
  int bursts = 0;
  for (const auto& [t, n] : per_time) bursts += n >= 16 ? 1 : 0;
  EXPECT_GE(bursts, 3);
}

TEST(AudioIdleScenarioTest, MostlyTinyJobs) {
  MockHost host;
  AudioIdleScenario scenario(6);
  drive(scenario, host, 20.0);
  int audio_jobs = 0;
  int best_effort = 0;
  for (const auto& s : host.submissions) {
    if (s.deadline < 0.0) {
      ++best_effort;
    } else {
      ++audio_jobs;
    }
  }
  EXPECT_NEAR(audio_jobs, 2000, 5);
  EXPECT_GT(best_effort, 0);
  EXPECT_LT(best_effort, 20);
}

TEST(MixedScenarioTest, SwitchesBetweenChildren) {
  MixedScenario scenario(7);
  MockHost host;
  scenario.setup(host);
  std::set<std::size_t> actives;
  for (int i = 0; i < 60000; ++i) {
    scenario.tick(host, i * 0.001, 0.001);
    actives.insert(scenario.active_child());
  }
  // Over 60 s with 6-12 s dwells, several children become active.
  EXPECT_GE(actives.size(), 4u);
  EXPECT_EQ(scenario.child_count(), 5u);
}

TEST(MixedScenarioTest, InactiveChildrenDoNotFlood) {
  MixedScenario scenario(8);
  MockHost host;
  scenario.setup(host);
  // Advance 20 s, then measure the submission rate over the next second.
  for (int i = 0; i < 20000; ++i) scenario.tick(host, i * 0.001, 0.001);
  const std::size_t before = host.submissions.size();
  for (int i = 20000; i < 21000; ++i) {
    scenario.tick(host, i * 0.001, 0.001);
  }
  const std::size_t rate = host.submissions.size() - before;
  // One active child submits at most a few hundred jobs/s (audio+frames);
  // a flood from resumed children would be thousands at once.
  EXPECT_LT(rate, 400u);
}

}  // namespace
}  // namespace pmrl::workload
