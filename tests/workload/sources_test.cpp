#include "workload/sources.hpp"

#include <gtest/gtest.h>

#include <map>

namespace pmrl::workload {
namespace {

/// Test host that records submissions.
class MockHost : public WorkloadHost {
 public:
  struct Submission {
    soc::TaskId task;
    double work;
    double deadline;
  };

  soc::TaskId create_task(std::string name, soc::Affinity affinity,
                          double weight) override {
    task_names.push_back(std::move(name));
    task_affinities.push_back(affinity);
    task_weights.push_back(weight);
    return task_names.size() - 1;
  }
  void submit(soc::TaskId task, double work, double deadline) override {
    submissions.push_back({task, work, deadline});
  }

  std::vector<std::string> task_names;
  std::vector<soc::Affinity> task_affinities;
  std::vector<double> task_weights;
  std::vector<Submission> submissions;
};

TEST(WorkDistributionTest, MeanMatchesConfiguration) {
  WorkDistribution dist{5e6, 0.3, 0.0, 1.0};
  Rng rng(1);
  double sum = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) sum += dist.sample(rng);
  EXPECT_NEAR(sum / n, 5e6, 5e6 * 0.02);
}

TEST(WorkDistributionTest, SpikesRaiseMean) {
  WorkDistribution base{5e6, 0.1, 0.0, 1.0};
  WorkDistribution spiky{5e6, 0.1, 0.5, 3.0};
  Rng rng1(2);
  Rng rng2(2);
  double base_sum = 0.0;
  double spiky_sum = 0.0;
  for (int i = 0; i < 20000; ++i) {
    base_sum += base.sample(rng1);
    spiky_sum += spiky.sample(rng2);
  }
  // Half the jobs tripled -> mean x2.
  EXPECT_NEAR(spiky_sum / base_sum, 2.0, 0.1);
}

TEST(WorkDistributionTest, AlwaysPositive) {
  WorkDistribution dist{100.0, 2.0, 0.1, 10.0};
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) EXPECT_GE(dist.sample(rng), 1.0);
}

TEST(WorkDistributionTest, RejectsNonPositiveMean) {
  WorkDistribution dist{0.0, 0.1, 0.0, 1.0};
  Rng rng(4);
  EXPECT_THROW(dist.sample(rng), std::invalid_argument);
}

TEST(PeriodicSourceTest, ReleasesAtPeriod) {
  MockHost host;
  Rng rng(5);
  PeriodicSource source(0, 0.010, WorkDistribution{1e6, 0.1, 0.0, 1.0});
  // Window [0, 0.1): releases at 0.00, 0.01, ..., 0.09 -> 10 jobs.
  source.tick(host, 0.0, 0.1, rng);
  EXPECT_EQ(host.submissions.size(), 10u);
}

TEST(PeriodicSourceTest, NoDoubleReleaseAcrossWindows) {
  MockHost host;
  Rng rng(6);
  PeriodicSource source(0, 0.010, WorkDistribution{1e6, 0.1, 0.0, 1.0});
  for (int i = 0; i < 100; ++i) {
    source.tick(host, i * 0.001, 0.001, rng);
  }
  EXPECT_EQ(host.submissions.size(), 100u / 10u);
}

TEST(PeriodicSourceTest, DeadlineFactorApplied) {
  MockHost host;
  Rng rng(7);
  PeriodicSource source(0, 0.010, WorkDistribution{1e6, 0.1, 0.0, 1.0},
                        /*deadline_factor=*/2.0);
  source.tick(host, 0.0, 0.001, rng);
  ASSERT_EQ(host.submissions.size(), 1u);
  EXPECT_NEAR(host.submissions[0].deadline, 0.020, 1e-12);
}

TEST(PeriodicSourceTest, PhaseOffsetsFirstRelease) {
  MockHost host;
  Rng rng(8);
  PeriodicSource source(0, 0.010, WorkDistribution{1e6, 0.1, 0.0, 1.0}, 1.0,
                        /*phase_s=*/0.005);
  source.tick(host, 0.0, 0.005, rng);
  EXPECT_TRUE(host.submissions.empty());
  source.tick(host, 0.005, 0.001, rng);
  EXPECT_EQ(host.submissions.size(), 1u);
}

TEST(PeriodicSourceTest, InactiveSkipsButAdvancesClock) {
  MockHost host;
  Rng rng(9);
  PeriodicSource source(0, 0.010, WorkDistribution{1e6, 0.1, 0.0, 1.0});
  source.set_active(false);
  source.tick(host, 0.0, 0.1, rng);
  EXPECT_TRUE(host.submissions.empty());
  // Reactivation does not flood: releases resume from "now".
  source.set_active(true);
  source.tick(host, 0.1, 0.010, rng);
  EXPECT_EQ(host.submissions.size(), 1u);
}

TEST(PeriodicSourceTest, RejectsNonPositivePeriod) {
  EXPECT_THROW(
      PeriodicSource(0, 0.0, WorkDistribution{1e6, 0.1, 0.0, 1.0}),
      std::invalid_argument);
}

TEST(BurstSourceTest, FiresRoundRobinWithCommonDeadline) {
  MockHost host;
  Rng rng(10);
  BurstSource burst({3, 4}, WorkDistribution{1e6, 0.1, 0.0, 1.0}, 5, 1.5);
  burst.fire(host, 2.0, rng);
  ASSERT_EQ(host.submissions.size(), 5u);
  std::map<soc::TaskId, int> per_task;
  for (const auto& s : host.submissions) {
    ++per_task[s.task];
    EXPECT_NEAR(s.deadline, 3.5, 1e-12);
  }
  EXPECT_EQ(per_task[3], 3);
  EXPECT_EQ(per_task[4], 2);
}

TEST(BurstSourceTest, RejectsEmptyConfig) {
  EXPECT_THROW(
      BurstSource({}, WorkDistribution{1e6, 0.1, 0.0, 1.0}, 4, 1.0),
      std::invalid_argument);
  EXPECT_THROW(
      BurstSource({1}, WorkDistribution{1e6, 0.1, 0.0, 1.0}, 0, 1.0),
      std::invalid_argument);
}

TEST(PhaseMachineTest, RejectsBadMatrices) {
  std::vector<PhaseMachine::Phase> phases = {{"a", 1.0}, {"b", 1.0}};
  EXPECT_THROW(PhaseMachine(phases, {{0.0, 1.0}}, Rng(1)),
               std::invalid_argument);
  EXPECT_THROW(PhaseMachine(phases, {{1.0}, {1.0}}, Rng(1)),
               std::invalid_argument);
  EXPECT_THROW(PhaseMachine({}, {}, Rng(1)), std::invalid_argument);
  EXPECT_THROW(PhaseMachine(phases, {{0.0, 1.0}, {1.0, 0.0}}, Rng(1), 5),
               std::invalid_argument);
}

TEST(PhaseMachineTest, TransitionsFollowMatrix) {
  // Deterministic cycle a -> b -> a with short dwell.
  PhaseMachine machine({{"a", 0.05}, {"b", 0.05}},
                       {{0.0, 1.0}, {1.0, 0.0}}, Rng(11));
  std::size_t changes = 0;
  std::size_t prev = machine.phase();
  for (int i = 0; i < 2000; ++i) {
    machine.tick(i * 0.001, 0.001);
    if (machine.phase() != prev) {
      // With a 2-phase deterministic matrix every change flips the phase.
      EXPECT_NE(machine.phase(), prev);
      prev = machine.phase();
      ++changes;
    }
  }
  // Mean dwell 50 ms over 2 s -> ~40 changes expected; allow slack.
  EXPECT_GT(changes, 10u);
  EXPECT_LT(changes, 120u);
}

TEST(PhaseMachineTest, DwellScalesWithMeanDwell) {
  auto count_changes = [](double dwell) {
    PhaseMachine machine({{"a", dwell}, {"b", dwell}},
                         {{0.0, 1.0}, {1.0, 0.0}}, Rng(12));
    std::size_t changes = 0;
    for (int i = 0; i < 10000; ++i) {
      if (machine.tick(i * 0.001, 0.001)) ++changes;
    }
    return changes;
  };
  const auto fast = count_changes(0.05);
  const auto slow = count_changes(0.5);
  EXPECT_GT(fast, slow * 5);
}

TEST(PhaseMachineTest, DeterministicWithSameSeed) {
  auto trace = [](std::uint64_t seed) {
    PhaseMachine machine({{"a", 0.1}, {"b", 0.1}, {"c", 0.1}},
                         {{0.0, 1.0, 1.0}, {1.0, 0.0, 1.0}, {1.0, 1.0, 0.0}},
                         Rng(seed));
    std::vector<std::size_t> phases;
    for (int i = 0; i < 1000; ++i) {
      machine.tick(i * 0.001, 0.001);
      phases.push_back(machine.phase());
    }
    return phases;
  };
  EXPECT_EQ(trace(42), trace(42));
  EXPECT_NE(trace(42), trace(43));
}

}  // namespace
}  // namespace pmrl::workload
