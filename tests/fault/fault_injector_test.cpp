#include "fault/fault_injector.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "../helpers/observation.hpp"
#include "fault/scenario_faults.hpp"
#include "soc/soc.hpp"

namespace pmrl::fault {
namespace {

governors::PolicyObservation two_cluster_obs(double util_little = 0.4,
                                             double util_big = 0.7) {
  return test::make_observation(
      {test::ClusterSpec{6, 13, 1.4e9, util_little, util_little, 0, 0.8},
       test::ClusterSpec{9, 19, 2.0e9, util_big, util_big, 0, 6.8}});
}

std::vector<double> util_trace(FaultInjector& injector, int epochs) {
  std::vector<double> trace;
  for (int i = 0; i < epochs; ++i) {
    auto obs = two_cluster_obs();
    injector.perturb_observation(obs);
    for (const auto& ct : obs.soc.clusters) {
      trace.push_back(ct.util_avg);
      trace.push_back(ct.util_max);
      trace.push_back(ct.busy_avg);
    }
  }
  return trace;
}

TEST(FaultInjectorTest, DisabledConfigIsIdentity) {
  FaultInjector injector{FaultConfig{}};
  EXPECT_FALSE(injector.config().enabled());

  const auto reference = two_cluster_obs();
  auto obs = two_cluster_obs();
  injector.perturb_observation(obs);
  for (std::size_t c = 0; c < obs.soc.clusters.size(); ++c) {
    EXPECT_EQ(obs.soc.clusters[c].util_avg,
              reference.soc.clusters[c].util_avg);
    EXPECT_EQ(obs.soc.clusters[c].util_max,
              reference.soc.clusters[c].util_max);
    EXPECT_EQ(obs.soc.clusters[c].util_invariant,
              reference.soc.clusters[c].util_invariant);
  }

  std::string text = "pristine checkpoint bytes";
  EXPECT_EQ(injector.corrupt_text(text), 0u);
  EXPECT_EQ(text, "pristine checkpoint bytes");

  soc::Soc soc(soc::tiny_test_soc_config());
  injector.inject_epoch_faults(soc);
  EXPECT_EQ(injector.stats().thermal_events, 0u);
}

TEST(FaultInjectorTest, ReplayIsBitIdenticalAfterReset) {
  FaultConfig config;
  config.seed = 1234;
  config.telemetry.util_noise_sigma = 0.1;
  config.telemetry.dropout_rate = 0.2;
  config.telemetry.stuck_rate = 0.05;
  FaultInjector injector(config);

  const auto first = util_trace(injector, 64);
  injector.reset();
  const auto replay = util_trace(injector, 64);
  EXPECT_EQ(first, replay);

  FaultInjector sibling(config);
  EXPECT_EQ(first, util_trace(sibling, 64));

  config.seed = 4321;
  FaultInjector other(config);
  EXPECT_NE(first, util_trace(other, 64));
}

TEST(FaultInjectorTest, DropoutZeroesTheWholeSample) {
  FaultConfig config;
  config.telemetry.dropout_rate = 1.0;
  FaultInjector injector(config);

  auto obs = two_cluster_obs();
  injector.perturb_observation(obs);
  for (const auto& ct : obs.soc.clusters) {
    EXPECT_EQ(ct.util_avg, 0.0);
    EXPECT_EQ(ct.util_max, 0.0);
    EXPECT_EQ(ct.busy_avg, 0.0);
    EXPECT_EQ(ct.util_invariant, 0.0);
  }
  EXPECT_EQ(injector.stats().dropout_samples, obs.soc.clusters.size());
}

TEST(FaultInjectorTest, StuckAtReplaysTheCapturedSample) {
  FaultConfig config;
  config.telemetry.stuck_rate = 1.0;
  config.telemetry.stuck_epochs = 3;
  FaultInjector injector(config);

  // The episode starts on the first epoch: the current (good) sample is
  // captured and passes through unchanged.
  auto obs = two_cluster_obs(0.4, 0.7);
  injector.perturb_observation(obs);
  EXPECT_DOUBLE_EQ(obs.soc.clusters[0].util_avg, 0.4);

  // The sensor then replays the stale 0.4 even though the live value moved.
  for (int i = 0; i < 3; ++i) {
    auto moved = two_cluster_obs(0.9, 0.7);
    injector.perturb_observation(moved);
    EXPECT_DOUBLE_EQ(moved.soc.clusters[0].util_avg, 0.4)
        << "stuck epoch " << i;
  }

  // Episode over: the next epoch re-captures the live value.
  auto fresh = two_cluster_obs(0.9, 0.7);
  injector.perturb_observation(fresh);
  EXPECT_DOUBLE_EQ(fresh.soc.clusters[0].util_avg, 0.9);
}

TEST(FaultInjectorTest, QuantizationSnapsToTheGrid) {
  FaultConfig config;
  config.telemetry.util_quant_step = 0.25;
  FaultInjector injector(config);

  auto obs = two_cluster_obs(0.61, 0.9);
  injector.perturb_observation(obs);
  EXPECT_DOUBLE_EQ(obs.soc.clusters[0].util_avg, 0.5);
  EXPECT_DOUBLE_EQ(obs.soc.clusters[1].util_avg, 1.0);
}

TEST(FaultInjectorTest, ThermalEventsHeatTheSoc) {
  soc::Soc soc(soc::tiny_test_soc_config());
  const double before = soc.telemetry().clusters[0].temp_c;

  FaultConfig config;
  config.thermal.event_rate = 1.0;
  config.thermal.min_delta_c = 10.0;
  config.thermal.max_delta_c = 10.0;
  FaultInjector injector(config);
  injector.inject_epoch_faults(soc);

  EXPECT_NEAR(soc.telemetry().clusters[0].temp_c, before + 10.0, 1e-9);
  EXPECT_EQ(injector.stats().thermal_events, soc.cluster_count());
}

TEST(FaultInjectorTest, CorruptTextFlipsBitsDeterministically) {
  FaultConfig config;
  config.seed = 99;
  config.policy.flip_rate = 0.5;
  const std::string original(256, 'q');

  FaultInjector injector(config);
  std::string first = original;
  const std::size_t flipped = injector.corrupt_text(first);
  EXPECT_GT(flipped, 0u);
  EXPECT_EQ(first.size(), original.size());
  EXPECT_NE(first, original);
  EXPECT_EQ(injector.stats().corrupted_bytes, flipped);

  injector.reset();
  std::string second = original;
  EXPECT_EQ(injector.corrupt_text(second), flipped);
  EXPECT_EQ(first, second);
}

TEST(FaultInjectorTest, ScalingClampsProbabilitiesAndZeroDisables) {
  FaultConfig config;
  config.telemetry.util_noise_sigma = 0.2;
  config.telemetry.util_quant_step = 1.0 / 16.0;
  config.telemetry.dropout_rate = 0.4;
  config.thermal.event_rate = 0.3;
  config.bus.error_rate = 0.02;
  config.policy.flip_rate = 0.6;

  const FaultConfig off = config.scaled(0.0);
  EXPECT_FALSE(off.enabled());

  const FaultConfig extreme = config.scaled(100.0);
  EXPECT_LE(extreme.telemetry.dropout_rate, 1.0);
  EXPECT_LE(extreme.thermal.event_rate, 1.0);
  EXPECT_LE(extreme.bus.error_rate, 1.0);
  EXPECT_LE(extreme.policy.flip_rate, 1.0);
  // The quantization step is a resolution, not a rate: scaling must not
  // coarsen the counter readout.
  EXPECT_DOUBLE_EQ(extreme.telemetry.util_quant_step, 1.0 / 16.0);
}

TEST(FaultInjectorTest, ScenarioProfilesCoverEveryScenario) {
  for (const auto kind : workload::all_scenario_kinds()) {
    const FaultConfig profile = scenario_fault_profile(kind, 1.0, 7);
    EXPECT_TRUE(profile.enabled())
        << workload::scenario_kind_name(kind);
    EXPECT_FALSE(scenario_fault_profile(kind, 0.0, 7).enabled())
        << workload::scenario_kind_name(kind);
  }
  const FaultConfig uniform = uniform_fault_profile(1.0, 7);
  EXPECT_TRUE(uniform.telemetry.enabled());
  EXPECT_TRUE(uniform.thermal.enabled());
  EXPECT_TRUE(uniform.bus.enabled());
  EXPECT_TRUE(uniform.policy.enabled());
}

}  // namespace
}  // namespace pmrl::fault
