#include "core/engine.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "governors/registry.hpp"
#include "governors/static_governors.hpp"
#include "workload/scenarios.hpp"

namespace pmrl::core {
namespace {

EngineConfig short_run(double duration = 2.0) {
  EngineConfig config;
  config.duration_s = duration;
  return config;
}

TEST(EngineTest, RejectsBadTiming) {
  EXPECT_THROW(SimEngine(soc::tiny_test_soc_config(),
                         EngineConfig{0.0, 0.02, 1.0, 0.25}),
               std::invalid_argument);
  EXPECT_THROW(SimEngine(soc::tiny_test_soc_config(),
                         EngineConfig{0.01, 0.001, 1.0, 0.25}),
               std::invalid_argument);
  EXPECT_THROW(SimEngine(soc::tiny_test_soc_config(),
                         EngineConfig{0.001, 0.02, 0.0, 0.25}),
               std::invalid_argument);
}

TEST(EngineTest, RunProducesConsistentResult) {
  SimEngine engine(soc::default_mobile_soc_config(), short_run());
  auto scenario = workload::make_scenario(
      workload::ScenarioKind::VideoPlayback, 1);
  governors::PerformanceGovernor governor;
  const RunResult result = engine.run(*scenario, governor);
  EXPECT_EQ(result.scenario, "video");
  EXPECT_EQ(result.governor, "performance");
  EXPECT_NEAR(result.duration_s, 2.0, 1e-9);
  EXPECT_GT(result.energy_j, 0.0);
  EXPECT_GT(result.quality, 0.0);
  EXPECT_GT(result.energy_per_qos, 0.0);
  EXPECT_NEAR(result.avg_power_w, result.energy_j / result.duration_s,
              1e-9);
  EXPECT_GT(result.released, 0u);
  EXPECT_GE(result.released, result.completed);
  ASSERT_EQ(result.mean_freq_hz.size(), 2u);
  // Performance governor pins both clusters at max for the whole run.
  EXPECT_NEAR(result.mean_freq_hz[0], 1.4e9, 1e6);
  EXPECT_NEAR(result.mean_freq_hz[1], 2.0e9, 1e6);
}

TEST(EngineTest, PerformanceVsPowersaveShape) {
  SimEngine engine(soc::default_mobile_soc_config(), short_run(5.0));
  governors::PerformanceGovernor performance;
  governors::PowersaveGovernor powersave;
  auto s1 = workload::make_scenario(workload::ScenarioKind::Gaming, 3);
  auto s2 = workload::make_scenario(workload::ScenarioKind::Gaming, 3);
  const RunResult fast = engine.run(*s1, performance);
  const RunResult slow = engine.run(*s2, powersave);
  EXPECT_GT(fast.energy_j, slow.energy_j);
  EXPECT_LT(fast.violation_rate, slow.violation_rate);
  EXPECT_GT(slow.violation_rate, 0.2);  // gaming drowns at min frequency
}

TEST(EngineTest, IdenticalRunsAreDeterministic) {
  SimEngine engine(soc::default_mobile_soc_config(), short_run());
  auto run_once = [&] {
    auto scenario = workload::make_scenario(
        workload::ScenarioKind::Mixed, 17);
    auto governor = governors::make_governor("ondemand");
    return engine.run(*scenario, *governor);
  };
  const RunResult a = run_once();
  const RunResult b = run_once();
  EXPECT_DOUBLE_EQ(a.energy_j, b.energy_j);
  EXPECT_DOUBLE_EQ(a.quality, b.quality);
  EXPECT_EQ(a.violations, b.violations);
  EXPECT_EQ(a.dvfs_transitions, b.dvfs_transitions);
}

TEST(EngineTest, EpochCallbackCadence) {
  EngineConfig config;
  config.duration_s = 1.0;
  config.decision_period_s = 0.05;
  SimEngine engine(soc::default_mobile_soc_config(), config);
  auto scenario = workload::make_scenario(
      workload::ScenarioKind::AudioIdle, 1);
  governors::PerformanceGovernor governor;
  std::size_t epochs = 0;
  double last_time = 0.0;
  engine.run(*scenario, governor, [&](const EpochRecord& record) {
    ++epochs;
    EXPECT_GT(record.time_s, last_time);
    last_time = record.time_s;
    EXPECT_EQ(record.opp_index.size(), 2u);
    EXPECT_EQ(record.util_avg.size(), 2u);
    EXPECT_GE(record.epoch_energy_j, 0.0);
  });
  EXPECT_EQ(epochs, 20u);
}

TEST(EngineTest, EpochEnergySumsToTotal) {
  EngineConfig config;
  config.duration_s = 1.0;
  SimEngine engine(soc::default_mobile_soc_config(), config);
  auto scenario = workload::make_scenario(
      workload::ScenarioKind::VideoPlayback, 2);
  governors::PerformanceGovernor governor;
  double epoch_sum = 0.0;
  const RunResult result = engine.run(
      *scenario, governor,
      [&](const EpochRecord& record) { epoch_sum += record.epoch_energy_j; });
  EXPECT_NEAR(epoch_sum, result.energy_j, result.energy_j * 1e-9);
}

TEST(EngineTest, GovernorReceivesRewardFeedbackFields) {
  // A governor that asserts on its observations.
  class ProbeGovernor : public governors::Governor {
   public:
    std::string name() const override { return "probe"; }
    void reset(const governors::PolicyObservation& initial) override {
      EXPECT_EQ(initial.soc.clusters.size(), 2u);
      EXPECT_EQ(initial.cluster_feedback.size(), 2u);
    }
    void decide(const governors::PolicyObservation& obs,
                governors::OppRequest& request) override {
      ++decisions;
      EXPECT_EQ(obs.cluster_feedback.size(), 2u);
      if (decisions > 1) {
        EXPECT_GT(obs.epoch_duration_s, 0.0);
        EXPECT_GT(obs.epoch_energy_j, 0.0);  // leakage alone is > 0
        // Per-cluster energies sum below the total (uncore remainder).
        const double cluster_sum =
            obs.cluster_feedback[0].epoch_energy_j +
            obs.cluster_feedback[1].epoch_energy_j;
        EXPECT_LT(cluster_sum, obs.epoch_energy_j + 1e-12);
      }
      for (std::size_t c = 0; c < request.size(); ++c) {
        request[c] = obs.soc.clusters[c].opp_count - 1;
      }
    }
    int decisions = 0;
  };
  SimEngine engine(soc::default_mobile_soc_config(), short_run(1.0));
  auto scenario = workload::make_scenario(
      workload::ScenarioKind::VideoPlayback, 1);
  ProbeGovernor probe;
  engine.run(*scenario, probe);
  EXPECT_GT(probe.decisions, 10);
}

TEST(EngineTest, EnergyPerQosInfiniteWithoutQuality) {
  // An empty scenario delivers no QoS: the metric must not divide by zero.
  class EmptyScenario : public workload::Scenario {
   public:
    std::string name() const override { return "empty"; }
    void setup(workload::WorkloadHost&) override {}
    void tick(workload::WorkloadHost&, double, double) override {}
  };
  SimEngine engine(soc::tiny_test_soc_config(),
                   EngineConfig{0.001, 0.02, 0.5, 0.25});
  EmptyScenario scenario;
  governors::PowersaveGovernor governor;
  const RunResult result = engine.run(scenario, governor);
  EXPECT_TRUE(std::isinf(result.energy_per_qos));
  EXPECT_EQ(result.released, 0u);
}

}  // namespace
}  // namespace pmrl::core
