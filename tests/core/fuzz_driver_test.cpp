// FuzzDriver: invariant battery, batch determinism across thread counts,
// and the delta-debugging shrinker on a planted invariant violation.

#include "core/fuzz_driver.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "obs/metrics.hpp"

using namespace pmrl;

namespace {

/// Outcome equality as the determinism contract defines it: same specs,
/// bit-identical results, same violations.
void expect_same_outcomes(const std::vector<core::FuzzOutcome>& a,
                          const std::vector<core::FuzzOutcome>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].spec.seed, b[i].spec.seed);
    EXPECT_EQ(a[i].result.energy_j, b[i].result.energy_j) << "run " << i;
    EXPECT_EQ(a[i].result.quality, b[i].result.quality) << "run " << i;
    EXPECT_EQ(a[i].result.violations, b[i].result.violations);
    EXPECT_EQ(a[i].result.mean_freq_hz, b[i].result.mean_freq_hz);
    EXPECT_EQ(a[i].watchdog_engagements, b[i].watchdog_engagements);
    ASSERT_EQ(a[i].violations.size(), b[i].violations.size());
    for (std::size_t v = 0; v < a[i].violations.size(); ++v) {
      EXPECT_EQ(a[i].violations[v].invariant, b[i].violations[v].invariant);
    }
  }
}

TEST(FuzzDriver, CleanRunPassesEveryInvariant) {
  core::FuzzDriver driver{core::FuzzDriverConfig{}};
  const auto outcome = driver.run_spec(workload::generate_fuzz_spec(3));
  EXPECT_TRUE(outcome.ok()) << (outcome.violations.empty()
                                    ? ""
                                    : outcome.violations.front().invariant +
                                          ": " +
                                          outcome.violations.front().detail);
  EXPECT_GT(outcome.result.energy_j, 0.0);
  EXPECT_GT(outcome.watchdog_total_epochs, 0u);
}

TEST(FuzzDriver, RunSpecIsDeterministic) {
  core::FuzzDriver driver{core::FuzzDriverConfig{}};
  const auto spec = workload::generate_fuzz_spec(11);
  const auto a = driver.run_spec(spec);
  const auto b = driver.run_spec(spec);
  EXPECT_EQ(a.result.energy_j, b.result.energy_j);
  EXPECT_EQ(a.result.quality, b.result.quality);
  EXPECT_EQ(a.result.violations, b.result.violations);
}

TEST(FuzzDriver, BatchIsBitIdenticalAcrossJobCounts) {
  // The headline determinism contract: seeds [5, 13) fuzzed at --jobs
  // 1/2/4 produce bit-identical outcomes (per-seed RNG-stream isolation).
  std::vector<std::vector<core::FuzzOutcome>> batches;
  for (const std::size_t jobs : {1u, 2u, 4u}) {
    core::FuzzDriverConfig config;
    config.jobs = jobs;
    core::FuzzDriver driver(config);
    batches.push_back(driver.run_batch(5, 8));
  }
  expect_same_outcomes(batches[0], batches[1]);
  expect_same_outcomes(batches[0], batches[2]);
}

TEST(FuzzDriver, BatchCountsRunsAndFailuresInMetrics) {
  core::FuzzDriverConfig config;
  config.invariants.max_energy_j = 0.0;  // every run trips energy-budget
  core::FuzzDriver driver(config);
  obs::MetricsRegistry metrics;
  driver.set_metrics(&metrics);
  const auto outcomes = driver.run_batch(1, 3);
  for (const auto& outcome : outcomes) {
    ASSERT_FALSE(outcome.ok());
    EXPECT_EQ(outcome.violations.front().invariant, "energy-budget");
  }
  EXPECT_EQ(metrics.counter("fuzz.runs").value(), 3u);
  EXPECT_EQ(metrics.counter("fuzz.failures").value(), 3u);
}

TEST(FuzzDriver, PlantedViolationShrinksToMinimalScenario) {
  // Plant an impossible energy budget so every scenario fails, then
  // require the shrinker to strip the failing spec down to the smallest
  // shape that still trips the same invariant: one phase at the duration
  // floor, no sources, no stress.
  core::FuzzDriverConfig config;
  config.invariants.max_energy_j = 0.0;
  core::FuzzDriver driver(config);

  // Deterministically pick a seed with shrinking headroom.
  std::uint64_t seed = 0;
  workload::FuzzSpec spec;
  for (;; ++seed) {
    spec = workload::generate_fuzz_spec(seed);
    if (spec.phases.size() >= 2 && spec.source_count() >= 1 &&
        spec.stress.any()) {
      break;
    }
  }
  const auto failing = driver.run_spec(spec);
  ASSERT_FALSE(failing.ok());
  ASSERT_EQ(failing.violations.front().invariant, "energy-budget");

  const auto shrunk = driver.shrink(failing);
  EXPECT_GT(shrunk.attempts, 0u);
  EXPECT_GT(shrunk.accepted, 0u);
  ASSERT_FALSE(shrunk.outcome.ok());
  EXPECT_EQ(shrunk.outcome.violations.front().invariant, "energy-budget");
  const auto& minimal = shrunk.outcome.spec;
  EXPECT_EQ(minimal.phases.size(), 1u);
  EXPECT_EQ(minimal.source_count(), 0u);
  EXPECT_GE(minimal.phases[0].duration_s,
            driver.config().min_phase_duration_s);
  EXPECT_LT(minimal.phases[0].duration_s,
            2.0 * driver.config().min_phase_duration_s);
  EXPECT_FALSE(minimal.stress.any());
  EXPECT_LT(minimal.total_duration_s(), spec.total_duration_s());
}

TEST(FuzzDriver, ShrunkScenarioRoundTripsThroughTheCorpusFormat) {
  // The corpus workflow: a minimized spec is saved, reloaded, and re-run —
  // it must reproduce the same failure after the round trip.
  core::FuzzDriverConfig config;
  config.invariants.max_energy_j = 0.0;
  core::FuzzDriver driver(config);
  const auto failing = driver.run_spec(workload::generate_fuzz_spec(2));
  ASSERT_FALSE(failing.ok());
  const auto shrunk = driver.shrink(failing);

  std::ostringstream out;
  shrunk.outcome.spec.save(out, {"planted energy-budget regression"});
  std::istringstream in(out.str());
  const auto reloaded = workload::FuzzSpec::load(in);
  const auto replayed = driver.run_spec(reloaded);
  ASSERT_FALSE(replayed.ok());
  EXPECT_EQ(replayed.violations.front().invariant, "energy-budget");
  EXPECT_EQ(replayed.result.energy_j, shrunk.outcome.result.energy_j);
}

TEST(FuzzDriver, ShrinkOfPassingOutcomeIsANoop) {
  core::FuzzDriver driver{core::FuzzDriverConfig{}};
  const auto ok = driver.run_spec(workload::generate_fuzz_spec(3));
  ASSERT_TRUE(ok.ok());
  const auto shrunk = driver.shrink(ok);
  EXPECT_EQ(shrunk.attempts, 0u);
  EXPECT_EQ(shrunk.accepted, 0u);
}

TEST(FuzzDriver, BudgetArmRunsAndSettlesCleanly) {
  // A capsched spec with a 10x-ish step landing above the pinned-OPP
  // floor: the canonical budgeted fleet must settle inside the bound and
  // keep the tree's audit clean.
  core::FuzzDriver driver{core::FuzzDriverConfig{}};
  workload::FuzzSpec spec;
  spec.name = "budget-clean";
  spec.seed = 21;
  spec.phases.push_back(workload::FuzzPhase{0.5, {}});
  spec.stress.budget_cap_w = 6.0;
  spec.stress.budget_step_cap_w = 0.9;
  spec.stress.budget_step_frac = 0.5;
  const auto outcome = driver.run_spec(spec);
  EXPECT_TRUE(outcome.ok()) << (outcome.violations.empty()
                                    ? ""
                                    : outcome.violations.front().invariant +
                                          ": " +
                                          outcome.violations.front().detail);
  EXPECT_GE(outcome.budget_settle_epochs, 0);
  EXPECT_LE(outcome.budget_settle_epochs, 30);
}

TEST(FuzzDriver, StarvingStepCapTripsBudgetSettleAndShrinkKeepsTheArm) {
  // A step cap below the fleet's pinned-OPP floor can never be met, so
  // budget-settle fires; the shrinker must keep the budget knobs (zeroing
  // them removes the violation) while still reducing the workload.
  core::FuzzDriver driver{core::FuzzDriverConfig{}};
  workload::FuzzSpec spec;
  spec.name = "budget-starved";
  spec.seed = 22;
  spec.phases.push_back(workload::FuzzPhase{0.5, {}});
  spec.stress.budget_cap_w = 6.0;
  spec.stress.budget_step_cap_w = 0.1;  // << pinned floor per device
  spec.stress.budget_step_frac = 0.5;
  const auto failing = driver.run_spec(spec);
  ASSERT_FALSE(failing.ok());
  EXPECT_EQ(failing.violations.front().invariant, "budget-settle");
  EXPECT_EQ(failing.budget_settle_epochs, -1);

  const auto shrunk = driver.shrink(failing);
  ASSERT_FALSE(shrunk.outcome.ok());
  EXPECT_EQ(shrunk.outcome.violations.front().invariant, "budget-settle");
  EXPECT_GT(shrunk.outcome.spec.stress.budget_cap_w, 0.0);
  EXPECT_GT(shrunk.outcome.spec.stress.budget_step_cap_w, 0.0);
}

TEST(FuzzDriver, BaselineGovernorRunsWithoutWatchdog) {
  core::FuzzDriverConfig config;
  config.governor = "ondemand";
  core::FuzzDriver driver(config);
  const auto outcome = driver.run_spec(workload::generate_fuzz_spec(4));
  EXPECT_TRUE(outcome.ok());
  EXPECT_EQ(outcome.watchdog_total_epochs, 0u);
}

}  // namespace
