// Regression corpus replay: every minimized scenario checked into
// tests/data/scenarios/ is auto-discovered, parsed, and re-run under the
// default fuzz-driver configuration. Corpus entries are scenarios that
// once exposed a failure and were fixed (or whose failure only fires under
// tightened bounds), so replaying them green guards against regressions —
// and the format itself is pinned: a corpus file that stops parsing is a
// breaking change to the scenario format.

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "core/fuzz_driver.hpp"

#ifndef PMRL_TEST_DATA_DIR
#error "PMRL_TEST_DATA_DIR must point at tests/data"
#endif

using namespace pmrl;
namespace fs = std::filesystem;

namespace {

std::vector<fs::path> corpus_files() {
  std::vector<fs::path> files;
  const fs::path dir = fs::path(PMRL_TEST_DATA_DIR) / "scenarios";
  for (const auto& entry : fs::directory_iterator(dir)) {
    if (entry.path().extension() == ".scenario") {
      files.push_back(entry.path());
    }
  }
  std::sort(files.begin(), files.end());
  return files;
}

TEST(ScenarioCorpus, HasSeededEntries) {
  EXPECT_GE(corpus_files().size(), 3u);
}

TEST(ScenarioCorpus, EveryEntryParsesAndReplaysGreen) {
  core::FuzzDriver driver{core::FuzzDriverConfig{}};
  for (const auto& path : corpus_files()) {
    SCOPED_TRACE(path.filename().string());
    std::ifstream in(path);
    ASSERT_TRUE(in) << "cannot open " << path;
    workload::FuzzSpec spec;
    ASSERT_NO_THROW(spec = workload::FuzzSpec::load(in));
    EXPECT_FALSE(spec.phases.empty());
    const auto outcome = driver.run_spec(spec);
    EXPECT_TRUE(outcome.ok())
        << outcome.violations.front().invariant << ": "
        << outcome.violations.front().detail;
  }
}

TEST(ScenarioCorpus, ReplayIsDeterministic) {
  core::FuzzDriver driver{core::FuzzDriverConfig{}};
  const auto files = corpus_files();
  ASSERT_FALSE(files.empty());
  std::ifstream in(files.front());
  const auto spec = workload::FuzzSpec::load(in);
  const auto a = driver.run_spec(spec);
  const auto b = driver.run_spec(spec);
  EXPECT_EQ(a.result.energy_j, b.result.energy_j);
  EXPECT_EQ(a.result.quality, b.result.quality);
  EXPECT_EQ(a.result.violations, b.result.violations);
}

}  // namespace
