#include "core/metrics.hpp"

#include <gtest/gtest.h>

namespace pmrl::core {
namespace {

RunResult run_with(const std::string& scenario, double energy_per_qos,
                   double violation_rate = 0.0, double energy = 10.0) {
  RunResult run;
  run.scenario = scenario;
  run.energy_per_qos = energy_per_qos;
  run.violation_rate = violation_rate;
  run.energy_j = energy;
  run.quality = energy / energy_per_qos;
  return run;
}

PolicySummary summary_of(const std::string& name,
                         std::vector<double> epqos) {
  PolicySummary summary;
  summary.governor = name;
  int i = 0;
  for (double v : epqos) {
    summary.runs.push_back(run_with("s" + std::to_string(i++), v));
  }
  return summary;
}

TEST(PolicySummaryTest, MeansOverRuns) {
  const auto s = summary_of("x", {0.01, 0.02, 0.03});
  EXPECT_NEAR(s.mean_energy_per_qos(), 0.02, 1e-12);
  EXPECT_DOUBLE_EQ(s.mean_energy_j(), 10.0);
  EXPECT_GT(s.total_quality(), 0.0);
}

TEST(PolicySummaryTest, EmptySummaryIsZero) {
  const PolicySummary empty;
  EXPECT_EQ(empty.mean_energy_per_qos(), 0.0);
  EXPECT_EQ(empty.mean_violation_rate(), 0.0);
  EXPECT_EQ(empty.mean_energy_j(), 0.0);
  EXPECT_EQ(empty.total_quality(), 0.0);
}

TEST(ImprovementTest, RelativeToOneBaseline) {
  const auto candidate = summary_of("rl", {0.008});
  const auto baseline = summary_of("ondemand", {0.010});
  EXPECT_NEAR(energy_per_qos_improvement(candidate, baseline), 0.20, 1e-12);
  // Worse candidate -> negative improvement.
  const auto worse = summary_of("bad", {0.012});
  EXPECT_NEAR(energy_per_qos_improvement(worse, baseline), -0.20, 1e-12);
}

TEST(ImprovementTest, ZeroBaselineIsSafe) {
  const auto candidate = summary_of("rl", {0.008});
  const auto degenerate = summary_of("zero", {0.0});
  EXPECT_EQ(energy_per_qos_improvement(candidate, degenerate), 0.0);
}

TEST(ImprovementTest, MeanOfImprovements) {
  const auto candidate = summary_of("rl", {0.008});
  const std::vector<PolicySummary> baselines = {
      summary_of("a", {0.010}),  // 20%
      summary_of("b", {0.016}),  // 50%
  };
  EXPECT_NEAR(mean_improvement_vs_baselines(candidate, baselines), 0.35,
              1e-12);
  EXPECT_EQ(mean_improvement_vs_baselines(candidate, {}), 0.0);
}

TEST(ImprovementTest, ImprovementVsMeanBaseline) {
  const auto candidate = summary_of("rl", {0.008});
  const std::vector<PolicySummary> baselines = {
      summary_of("a", {0.010}),
      summary_of("b", {0.016}),
  };
  // Mean baseline = 0.013 -> (0.013-0.008)/0.013.
  EXPECT_NEAR(improvement_vs_mean_baseline(candidate, baselines),
              5.0 / 13.0, 1e-12);
  EXPECT_EQ(improvement_vs_mean_baseline(candidate, {}), 0.0);
}

TEST(ImprovementTest, AggregationsDifferWhenBaselinesSkewed) {
  // The two aggregations answer different questions; with one outlier
  // baseline they diverge — documented behaviour, both reported by E1.
  const auto candidate = summary_of("rl", {0.008});
  const std::vector<PolicySummary> baselines = {
      summary_of("a", {0.009}),
      summary_of("b", {0.100}),  // outlier
  };
  const double mean_of_imps =
      mean_improvement_vs_baselines(candidate, baselines);
  const double imp_of_mean =
      improvement_vs_mean_baseline(candidate, baselines);
  EXPECT_GT(imp_of_mean, mean_of_imps);
}

TEST(RunLookupTest, FindsByScenarioName) {
  auto summary = summary_of("x", {0.01, 0.02});
  EXPECT_DOUBLE_EQ(run_for_scenario(summary, "s1").energy_per_qos, 0.02);
  EXPECT_THROW(run_for_scenario(summary, "nope"), std::invalid_argument);
}

}  // namespace
}  // namespace pmrl::core
