// Unit tests for the progress/ETA math and line formatting extracted from
// ProgressReporter, plus the reporter's counting behaviour.

#include "core/runfarm/progress.hpp"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace runfarm = pmrl::core::runfarm;

TEST(EtaSeconds, ExtrapolatesFromMeanRate) {
  // 4 of 10 done in 8 s -> 2 s/run -> 12 s remaining.
  EXPECT_DOUBLE_EQ(runfarm::eta_seconds(4, 10, 8.0), 12.0);
  // Halfway: remaining equals elapsed.
  EXPECT_DOUBLE_EQ(runfarm::eta_seconds(5, 10, 30.0), 30.0);
}

TEST(EtaSeconds, ZeroBeforeFirstCompletion) {
  EXPECT_DOUBLE_EQ(runfarm::eta_seconds(0, 10, 5.0), 0.0);
}

TEST(EtaSeconds, ZeroWhenFinishedOrOvershot) {
  EXPECT_DOUBLE_EQ(runfarm::eta_seconds(10, 10, 5.0), 0.0);
  EXPECT_DOUBLE_EQ(runfarm::eta_seconds(11, 10, 5.0), 0.0);
}

TEST(EtaSeconds, ZeroWithoutElapsedTime) {
  EXPECT_DOUBLE_EQ(runfarm::eta_seconds(3, 10, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(runfarm::eta_seconds(3, 10, -1.0), 0.0);
}

TEST(EtaSeconds, ShrinksMonotonicallyAtFixedRate) {
  // At a constant rate (elapsed = done * 2 s) the estimate must only
  // decrease as work completes.
  double prev = runfarm::eta_seconds(1, 20, 2.0);
  for (std::size_t done = 2; done < 20; ++done) {
    const double eta =
        runfarm::eta_seconds(done, 20, static_cast<double>(done) * 2.0);
    EXPECT_LE(eta, prev) << "done=" << done;
    prev = eta;
  }
}

TEST(ProgressLine, InFlightFormat) {
  EXPECT_EQ(runfarm::progress_line("farm", 4, 10, 8.0),
            "[farm] 4/10, elapsed 8.0s, eta 12.0s");
}

TEST(ProgressLine, FinalFormat) {
  EXPECT_EQ(runfarm::progress_line("train", 10, 10, 3.25),
            "[train] 10/10 done in 3.2s");
}

TEST(ProgressLine, ZeroDoneShowsZeroEta) {
  EXPECT_EQ(runfarm::progress_line("x", 0, 5, 1.0),
            "[x] 0/5, elapsed 1.0s, eta 0.0s");
}

TEST(ProgressReporter, CountsCompletions) {
  runfarm::ProgressReporter progress("test", 3, /*enabled=*/false);
  EXPECT_EQ(progress.completed(), 0u);
  progress.on_done();
  progress.on_done();
  EXPECT_EQ(progress.completed(), 2u);
  progress.on_done();
  EXPECT_EQ(progress.completed(), 3u);
}

TEST(ProgressReporter, ThreadSafeCounting) {
  runfarm::ProgressReporter progress("test", 400, /*enabled=*/false);
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&progress] {
      for (int i = 0; i < 100; ++i) progress.on_done();
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(progress.completed(), 400u);
}
