// Unit tests for the progress/ETA math and line formatting extracted from
// ProgressReporter, plus the reporter's counting behaviour.

#include "core/runfarm/progress.hpp"

#include <gtest/gtest.h>

#include <limits>
#include <thread>
#include <vector>

namespace runfarm = pmrl::core::runfarm;

TEST(EtaSeconds, ExtrapolatesFromMeanRate) {
  // 4 of 10 done in 8 s -> 2 s/run -> 12 s remaining.
  EXPECT_DOUBLE_EQ(runfarm::eta_seconds(4, 10, 8.0), 12.0);
  // Halfway: remaining equals elapsed.
  EXPECT_DOUBLE_EQ(runfarm::eta_seconds(5, 10, 30.0), 30.0);
}

TEST(EtaSeconds, ZeroBeforeFirstCompletion) {
  EXPECT_DOUBLE_EQ(runfarm::eta_seconds(0, 10, 5.0), 0.0);
}

TEST(EtaSeconds, ZeroWhenFinishedOrOvershot) {
  EXPECT_DOUBLE_EQ(runfarm::eta_seconds(10, 10, 5.0), 0.0);
  EXPECT_DOUBLE_EQ(runfarm::eta_seconds(11, 10, 5.0), 0.0);
}

TEST(EtaSeconds, ZeroWithoutElapsedTime) {
  EXPECT_DOUBLE_EQ(runfarm::eta_seconds(3, 10, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(runfarm::eta_seconds(3, 10, -1.0), 0.0);
}

TEST(EtaSeconds, ZeroForNonFiniteElapsed) {
  // A bad clock reading must not propagate NaN/Inf into the estimate.
  EXPECT_DOUBLE_EQ(
      runfarm::eta_seconds(3, 10, std::numeric_limits<double>::quiet_NaN()),
      0.0);
  EXPECT_DOUBLE_EQ(
      runfarm::eta_seconds(3, 10, std::numeric_limits<double>::infinity()),
      0.0);
}

TEST(FormatDuration, SubMinuteUsesTenthsOfSeconds) {
  EXPECT_EQ(runfarm::format_duration(0.0), "0.0s");
  EXPECT_EQ(runfarm::format_duration(8.04), "8.0s");
  EXPECT_EQ(runfarm::format_duration(59.94), "59.9s");
  EXPECT_EQ(runfarm::format_duration(-3.0), "0.0s");
}

TEST(FormatDuration, MinutesHoursDays) {
  EXPECT_EQ(runfarm::format_duration(60.0), "1m00s");
  EXPECT_EQ(runfarm::format_duration(245.0), "4m05s");
  EXPECT_EQ(runfarm::format_duration(3600.0), "1h00m");
  EXPECT_EQ(runfarm::format_duration(11220.0), "3h07m");
  EXPECT_EQ(runfarm::format_duration(86400.0), "1d00h");
  EXPECT_EQ(runfarm::format_duration(2.0 * 86400.0 + 14.0 * 3600.0),
            "2d14h");
}

TEST(FormatDuration, CapsAbsurdAndNonFiniteEstimates) {
  // A slow first task used to render ">24h" ETAs as raw seconds (e.g.
  // "8640000.0s"); huge and non-finite values now cap at ">99d".
  EXPECT_EQ(runfarm::format_duration(100.0 * 86400.0), ">99d");
  EXPECT_EQ(runfarm::format_duration(8.64e6), ">99d");
  EXPECT_EQ(runfarm::format_duration(std::numeric_limits<double>::infinity()),
            ">99d");
  EXPECT_EQ(
      runfarm::format_duration(std::numeric_limits<double>::quiet_NaN()),
      ">99d");
}

TEST(EtaSeconds, ShrinksMonotonicallyAtFixedRate) {
  // At a constant rate (elapsed = done * 2 s) the estimate must only
  // decrease as work completes.
  double prev = runfarm::eta_seconds(1, 20, 2.0);
  for (std::size_t done = 2; done < 20; ++done) {
    const double eta =
        runfarm::eta_seconds(done, 20, static_cast<double>(done) * 2.0);
    EXPECT_LE(eta, prev) << "done=" << done;
    prev = eta;
  }
}

TEST(ProgressLine, InFlightFormat) {
  EXPECT_EQ(runfarm::progress_line("farm", 4, 10, 8.0),
            "[farm] 4/10, elapsed 8.0s, eta 12.0s");
}

TEST(ProgressLine, FinalFormat) {
  EXPECT_EQ(runfarm::progress_line("train", 10, 10, 3.25),
            "[train] 10/10 done in 3.2s");
}

TEST(ProgressLine, ZeroDoneShowsNoEtaYet) {
  // Before the first completion there is no rate; "eta 0.0s" was a lie.
  EXPECT_EQ(runfarm::progress_line("x", 0, 5, 1.0),
            "[x] 0/5, elapsed 1.0s, eta --");
}

TEST(ProgressLine, LongEtaUsesCompoundUnits) {
  // 1 of 1000 done in 1000 s -> 999000 s remaining (~11.5 days).
  EXPECT_EQ(runfarm::progress_line("sweep", 1, 1000, 1000.0),
            "[sweep] 1/1000, elapsed 16m40s, eta 11d13h");
}

TEST(ProgressReporter, CountsCompletions) {
  runfarm::ProgressReporter progress("test", 3, /*enabled=*/false);
  EXPECT_EQ(progress.completed(), 0u);
  progress.on_done();
  progress.on_done();
  EXPECT_EQ(progress.completed(), 2u);
  progress.on_done();
  EXPECT_EQ(progress.completed(), 3u);
}

TEST(ProgressReporter, ThreadSafeCounting) {
  runfarm::ProgressReporter progress("test", 400, /*enabled=*/false);
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&progress] {
      for (int i = 0; i < 100; ++i) progress.on_done();
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(progress.completed(), 400u);
}
