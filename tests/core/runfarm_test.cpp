#include "core/runfarm/runfarm.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/runfarm/thread_pool.hpp"
#include "governors/registry.hpp"
#include "workload/scenarios.hpp"

namespace pmrl::core::runfarm {
namespace {

EngineConfig short_run(double duration = 2.0) {
  EngineConfig config;
  config.duration_s = duration;
  return config;
}

// ---- ThreadPool ----------------------------------------------------------

TEST(ThreadPoolTest, RunsEveryTask) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.thread_count(), 4u);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&counter] { counter.fetch_add(1); });
  }
  pool.wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, WaitWithNoTasksReturns) {
  ThreadPool pool(2);
  pool.wait();  // must not hang
  SUCCEED();
}

TEST(ThreadPoolTest, ReusableAcrossBatches) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  for (int batch = 0; batch < 3; ++batch) {
    for (int i = 0; i < 10; ++i) {
      pool.submit([&counter] { counter.fetch_add(1); });
    }
    pool.wait();
    EXPECT_EQ(counter.load(), (batch + 1) * 10);
  }
}

// ---- run_ordered ---------------------------------------------------------

TEST(RunOrderedTest, PreservesSubmissionOrder) {
  ThreadPool pool(4);
  std::vector<std::function<int()>> tasks;
  for (int i = 0; i < 64; ++i) {
    tasks.push_back([i] { return i * i; });
  }
  const auto results = run_ordered<int>(&pool, tasks);
  ASSERT_EQ(results.size(), 64u);
  for (int i = 0; i < 64; ++i) EXPECT_EQ(results[i], i * i);
}

TEST(RunOrderedTest, ZeroTasks) {
  ThreadPool pool(2);
  const auto results = run_ordered<int>(&pool, {});
  EXPECT_TRUE(results.empty());
  const auto serial = run_ordered<int>(nullptr, {});
  EXPECT_TRUE(serial.empty());
}

TEST(RunOrderedTest, SerialInlineWithoutPool) {
  std::vector<std::function<int()>> tasks = {[] { return 1; },
                                             [] { return 2; }};
  const auto results = run_ordered<int>(nullptr, tasks);
  ASSERT_EQ(results.size(), 2u);
  EXPECT_EQ(results[0], 1);
  EXPECT_EQ(results[1], 2);
}

TEST(RunOrderedTest, RethrowsLowestIndexExceptionAfterAllTasksRan) {
  ThreadPool pool(4);
  std::atomic<int> executed{0};
  std::vector<std::function<int()>> tasks;
  for (int i = 0; i < 16; ++i) {
    tasks.push_back([i, &executed]() -> int {
      executed.fetch_add(1);
      if (i == 3) throw std::runtime_error("task three");
      if (i == 11) throw std::logic_error("task eleven");
      return i;
    });
  }
  try {
    run_ordered<int>(&pool, tasks);
    FAIL() << "expected an exception";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "task three");  // lowest index wins
  }
  EXPECT_EQ(executed.load(), 16);  // a throwing task does not cancel others
}

// ---- RunFarm determinism -------------------------------------------------

TEST(RunFarmTest, RejectsSpecWithoutGovernorFactory) {
  RunFarm farm(soc::tiny_test_soc_config(), short_run(), 1);
  std::vector<RunSpec> specs(1);
  specs[0].kind = workload::ScenarioKind::VideoPlayback;
  EXPECT_THROW(farm.run_all(specs), std::invalid_argument);
}

std::vector<RunSpec> determinism_specs() {
  // Two scenarios x two governors, distinct seeds.
  std::vector<RunSpec> specs;
  const workload::ScenarioKind kinds[] = {
      workload::ScenarioKind::VideoPlayback, workload::ScenarioKind::Mixed};
  const char* names[] = {"ondemand", "schedutil"};
  std::uint64_t seed = 1234;
  for (const auto kind : kinds) {
    for (const char* name : names) {
      RunSpec spec;
      spec.kind = kind;
      spec.seed = seed++;
      const std::string governor = name;
      spec.make_governor = [governor] {
        return governors::make_governor(governor);
      };
      specs.push_back(std::move(spec));
    }
  }
  return specs;
}

void expect_bit_identical(const RunResult& a, const RunResult& b) {
  EXPECT_EQ(a.scenario, b.scenario);
  EXPECT_EQ(a.governor, b.governor);
  // Bit-exact: the farm's contract is full determinism, not tolerance.
  EXPECT_EQ(a.energy_j, b.energy_j);
  EXPECT_EQ(a.quality, b.quality);
  EXPECT_EQ(a.violations, b.violations);
  EXPECT_EQ(a.mean_freq_hz, b.mean_freq_hz);
  EXPECT_EQ(a.dvfs_transitions, b.dvfs_transitions);
}

TEST(RunFarmTest, FourThreadFarmBitIdenticalToSerial) {
  const auto soc_config = soc::default_mobile_soc_config();
  const auto specs = determinism_specs();

  RunFarm serial(soc_config, short_run(), 1);
  const auto serial_results = serial.run_all(specs);
  RunFarm threaded(soc_config, short_run(), 4);
  const auto threaded_results = threaded.run_all(specs);

  ASSERT_EQ(serial_results.size(), specs.size());
  ASSERT_EQ(threaded_results.size(), specs.size());
  for (std::size_t i = 0; i < specs.size(); ++i) {
    expect_bit_identical(serial_results[i], threaded_results[i]);
  }

  // And both match a plain engine.run loop (no farm at all).
  SimEngine engine(soc_config, short_run());
  for (std::size_t i = 0; i < specs.size(); ++i) {
    auto scenario = workload::make_scenario(specs[i].kind, specs[i].seed);
    auto governor = specs[i].make_governor();
    const auto direct = engine.run(*scenario, *governor);
    expect_bit_identical(direct, threaded_results[i]);
  }
}

TEST(RunFarmTest, ThreadCountDoesNotChangeResults) {
  const auto soc_config = soc::tiny_test_soc_config();
  std::vector<RunSpec> specs;
  for (std::uint64_t seed = 7; seed < 15; ++seed) {
    RunSpec spec;
    spec.kind = workload::ScenarioKind::WebBrowsing;
    spec.seed = seed;
    spec.make_governor = [] { return governors::make_governor("ondemand"); };
    specs.push_back(std::move(spec));
  }
  RunFarm two(soc_config, short_run(1.0), 2);
  RunFarm eight(soc_config, short_run(1.0), 8);
  const auto a = two.run_all(specs);
  const auto b = eight.run_all(specs);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    expect_bit_identical(a[i], b[i]);
  }
}

TEST(RunFarmTest, RecordsBatchStats) {
  RunFarm farm(soc::tiny_test_soc_config(), short_run(1.0), 2);
  std::vector<RunSpec> specs;
  for (std::uint64_t seed = 0; seed < 4; ++seed) {
    RunSpec spec;
    spec.kind = workload::ScenarioKind::AudioIdle;
    spec.seed = seed;
    spec.make_governor = [] { return governors::make_governor("powersave"); };
    specs.push_back(std::move(spec));
  }
  farm.run_all(specs);
  const auto& stats = farm.last_stats();
  EXPECT_EQ(stats.runs, specs.size());
  EXPECT_GT(stats.wall_s, 0.0);
  EXPECT_GT(stats.run_s_total, 0.0);
  EXPECT_GT(stats.speedup(), 0.0);
}

TEST(DefaultJobsTest, NeverZero) {
  EXPECT_GE(default_jobs(), 1u);
}

}  // namespace
}  // namespace pmrl::core::runfarm
