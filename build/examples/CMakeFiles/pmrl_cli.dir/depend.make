# Empty dependencies file for pmrl_cli.
# This may be replaced when dependencies are built.
