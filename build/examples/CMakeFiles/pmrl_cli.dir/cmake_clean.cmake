file(REMOVE_RECURSE
  "CMakeFiles/pmrl_cli.dir/pmrl_cli.cpp.o"
  "CMakeFiles/pmrl_cli.dir/pmrl_cli.cpp.o.d"
  "pmrl_cli"
  "pmrl_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pmrl_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
