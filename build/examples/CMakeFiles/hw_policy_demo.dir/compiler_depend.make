# Empty compiler generated dependencies file for hw_policy_demo.
# This may be replaced when dependencies are built.
