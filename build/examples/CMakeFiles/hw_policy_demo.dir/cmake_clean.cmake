file(REMOVE_RECURSE
  "CMakeFiles/hw_policy_demo.dir/hw_policy_demo.cpp.o"
  "CMakeFiles/hw_policy_demo.dir/hw_policy_demo.cpp.o.d"
  "hw_policy_demo"
  "hw_policy_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hw_policy_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
