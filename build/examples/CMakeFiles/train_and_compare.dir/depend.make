# Empty dependencies file for train_and_compare.
# This may be replaced when dependencies are built.
