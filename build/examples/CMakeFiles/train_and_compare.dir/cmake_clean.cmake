file(REMOVE_RECURSE
  "CMakeFiles/train_and_compare.dir/train_and_compare.cpp.o"
  "CMakeFiles/train_and_compare.dir/train_and_compare.cpp.o.d"
  "train_and_compare"
  "train_and_compare.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/train_and_compare.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
