file(REMOVE_RECURSE
  "CMakeFiles/test_rl.dir/rl/action_test.cpp.o"
  "CMakeFiles/test_rl.dir/rl/action_test.cpp.o.d"
  "CMakeFiles/test_rl.dir/rl/agent_test.cpp.o"
  "CMakeFiles/test_rl.dir/rl/agent_test.cpp.o.d"
  "CMakeFiles/test_rl.dir/rl/algorithms_test.cpp.o"
  "CMakeFiles/test_rl.dir/rl/algorithms_test.cpp.o.d"
  "CMakeFiles/test_rl.dir/rl/fixed_agent_test.cpp.o"
  "CMakeFiles/test_rl.dir/rl/fixed_agent_test.cpp.o.d"
  "CMakeFiles/test_rl.dir/rl/policy_io_test.cpp.o"
  "CMakeFiles/test_rl.dir/rl/policy_io_test.cpp.o.d"
  "CMakeFiles/test_rl.dir/rl/q_table_test.cpp.o"
  "CMakeFiles/test_rl.dir/rl/q_table_test.cpp.o.d"
  "CMakeFiles/test_rl.dir/rl/reward_test.cpp.o"
  "CMakeFiles/test_rl.dir/rl/reward_test.cpp.o.d"
  "CMakeFiles/test_rl.dir/rl/rl_governor_test.cpp.o"
  "CMakeFiles/test_rl.dir/rl/rl_governor_test.cpp.o.d"
  "CMakeFiles/test_rl.dir/rl/state_test.cpp.o"
  "CMakeFiles/test_rl.dir/rl/state_test.cpp.o.d"
  "test_rl"
  "test_rl.pdb"
  "test_rl[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_rl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
