
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/rl/action_test.cpp" "tests/CMakeFiles/test_rl.dir/rl/action_test.cpp.o" "gcc" "tests/CMakeFiles/test_rl.dir/rl/action_test.cpp.o.d"
  "/root/repo/tests/rl/agent_test.cpp" "tests/CMakeFiles/test_rl.dir/rl/agent_test.cpp.o" "gcc" "tests/CMakeFiles/test_rl.dir/rl/agent_test.cpp.o.d"
  "/root/repo/tests/rl/algorithms_test.cpp" "tests/CMakeFiles/test_rl.dir/rl/algorithms_test.cpp.o" "gcc" "tests/CMakeFiles/test_rl.dir/rl/algorithms_test.cpp.o.d"
  "/root/repo/tests/rl/fixed_agent_test.cpp" "tests/CMakeFiles/test_rl.dir/rl/fixed_agent_test.cpp.o" "gcc" "tests/CMakeFiles/test_rl.dir/rl/fixed_agent_test.cpp.o.d"
  "/root/repo/tests/rl/policy_io_test.cpp" "tests/CMakeFiles/test_rl.dir/rl/policy_io_test.cpp.o" "gcc" "tests/CMakeFiles/test_rl.dir/rl/policy_io_test.cpp.o.d"
  "/root/repo/tests/rl/q_table_test.cpp" "tests/CMakeFiles/test_rl.dir/rl/q_table_test.cpp.o" "gcc" "tests/CMakeFiles/test_rl.dir/rl/q_table_test.cpp.o.d"
  "/root/repo/tests/rl/reward_test.cpp" "tests/CMakeFiles/test_rl.dir/rl/reward_test.cpp.o" "gcc" "tests/CMakeFiles/test_rl.dir/rl/reward_test.cpp.o.d"
  "/root/repo/tests/rl/rl_governor_test.cpp" "tests/CMakeFiles/test_rl.dir/rl/rl_governor_test.cpp.o" "gcc" "tests/CMakeFiles/test_rl.dir/rl/rl_governor_test.cpp.o.d"
  "/root/repo/tests/rl/state_test.cpp" "tests/CMakeFiles/test_rl.dir/rl/state_test.cpp.o" "gcc" "tests/CMakeFiles/test_rl.dir/rl/state_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/hw/CMakeFiles/pmrl_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/rl/CMakeFiles/pmrl_rl.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/pmrl_core.dir/DependInfo.cmake"
  "/root/repo/build/src/governors/CMakeFiles/pmrl_governors.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/pmrl_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/soc/CMakeFiles/pmrl_soc.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/pmrl_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
