
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/workload/qos_test.cpp" "tests/CMakeFiles/test_workload.dir/workload/qos_test.cpp.o" "gcc" "tests/CMakeFiles/test_workload.dir/workload/qos_test.cpp.o.d"
  "/root/repo/tests/workload/scenarios_test.cpp" "tests/CMakeFiles/test_workload.dir/workload/scenarios_test.cpp.o" "gcc" "tests/CMakeFiles/test_workload.dir/workload/scenarios_test.cpp.o.d"
  "/root/repo/tests/workload/sources_test.cpp" "tests/CMakeFiles/test_workload.dir/workload/sources_test.cpp.o" "gcc" "tests/CMakeFiles/test_workload.dir/workload/sources_test.cpp.o.d"
  "/root/repo/tests/workload/trace_test.cpp" "tests/CMakeFiles/test_workload.dir/workload/trace_test.cpp.o" "gcc" "tests/CMakeFiles/test_workload.dir/workload/trace_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/hw/CMakeFiles/pmrl_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/rl/CMakeFiles/pmrl_rl.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/pmrl_core.dir/DependInfo.cmake"
  "/root/repo/build/src/governors/CMakeFiles/pmrl_governors.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/pmrl_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/soc/CMakeFiles/pmrl_soc.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/pmrl_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
