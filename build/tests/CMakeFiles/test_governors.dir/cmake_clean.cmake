file(REMOVE_RECURSE
  "CMakeFiles/test_governors.dir/governors/conservative_test.cpp.o"
  "CMakeFiles/test_governors.dir/governors/conservative_test.cpp.o.d"
  "CMakeFiles/test_governors.dir/governors/interactive_test.cpp.o"
  "CMakeFiles/test_governors.dir/governors/interactive_test.cpp.o.d"
  "CMakeFiles/test_governors.dir/governors/ondemand_test.cpp.o"
  "CMakeFiles/test_governors.dir/governors/ondemand_test.cpp.o.d"
  "CMakeFiles/test_governors.dir/governors/registry_test.cpp.o"
  "CMakeFiles/test_governors.dir/governors/registry_test.cpp.o.d"
  "CMakeFiles/test_governors.dir/governors/schedutil_test.cpp.o"
  "CMakeFiles/test_governors.dir/governors/schedutil_test.cpp.o.d"
  "CMakeFiles/test_governors.dir/governors/static_governors_test.cpp.o"
  "CMakeFiles/test_governors.dir/governors/static_governors_test.cpp.o.d"
  "test_governors"
  "test_governors.pdb"
  "test_governors[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_governors.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
