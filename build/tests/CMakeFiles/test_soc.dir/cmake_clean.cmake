file(REMOVE_RECURSE
  "CMakeFiles/test_soc.dir/soc/cluster_test.cpp.o"
  "CMakeFiles/test_soc.dir/soc/cluster_test.cpp.o.d"
  "CMakeFiles/test_soc.dir/soc/core_test.cpp.o"
  "CMakeFiles/test_soc.dir/soc/core_test.cpp.o.d"
  "CMakeFiles/test_soc.dir/soc/cpuidle_test.cpp.o"
  "CMakeFiles/test_soc.dir/soc/cpuidle_test.cpp.o.d"
  "CMakeFiles/test_soc.dir/soc/mem_domain_test.cpp.o"
  "CMakeFiles/test_soc.dir/soc/mem_domain_test.cpp.o.d"
  "CMakeFiles/test_soc.dir/soc/opp_test.cpp.o"
  "CMakeFiles/test_soc.dir/soc/opp_test.cpp.o.d"
  "CMakeFiles/test_soc.dir/soc/pelt_test.cpp.o"
  "CMakeFiles/test_soc.dir/soc/pelt_test.cpp.o.d"
  "CMakeFiles/test_soc.dir/soc/power_model_test.cpp.o"
  "CMakeFiles/test_soc.dir/soc/power_model_test.cpp.o.d"
  "CMakeFiles/test_soc.dir/soc/scheduler_test.cpp.o"
  "CMakeFiles/test_soc.dir/soc/scheduler_test.cpp.o.d"
  "CMakeFiles/test_soc.dir/soc/soc_test.cpp.o"
  "CMakeFiles/test_soc.dir/soc/soc_test.cpp.o.d"
  "CMakeFiles/test_soc.dir/soc/task_test.cpp.o"
  "CMakeFiles/test_soc.dir/soc/task_test.cpp.o.d"
  "CMakeFiles/test_soc.dir/soc/thermal_test.cpp.o"
  "CMakeFiles/test_soc.dir/soc/thermal_test.cpp.o.d"
  "test_soc"
  "test_soc.pdb"
  "test_soc[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_soc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
