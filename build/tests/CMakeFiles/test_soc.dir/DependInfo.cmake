
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/soc/cluster_test.cpp" "tests/CMakeFiles/test_soc.dir/soc/cluster_test.cpp.o" "gcc" "tests/CMakeFiles/test_soc.dir/soc/cluster_test.cpp.o.d"
  "/root/repo/tests/soc/core_test.cpp" "tests/CMakeFiles/test_soc.dir/soc/core_test.cpp.o" "gcc" "tests/CMakeFiles/test_soc.dir/soc/core_test.cpp.o.d"
  "/root/repo/tests/soc/cpuidle_test.cpp" "tests/CMakeFiles/test_soc.dir/soc/cpuidle_test.cpp.o" "gcc" "tests/CMakeFiles/test_soc.dir/soc/cpuidle_test.cpp.o.d"
  "/root/repo/tests/soc/mem_domain_test.cpp" "tests/CMakeFiles/test_soc.dir/soc/mem_domain_test.cpp.o" "gcc" "tests/CMakeFiles/test_soc.dir/soc/mem_domain_test.cpp.o.d"
  "/root/repo/tests/soc/opp_test.cpp" "tests/CMakeFiles/test_soc.dir/soc/opp_test.cpp.o" "gcc" "tests/CMakeFiles/test_soc.dir/soc/opp_test.cpp.o.d"
  "/root/repo/tests/soc/pelt_test.cpp" "tests/CMakeFiles/test_soc.dir/soc/pelt_test.cpp.o" "gcc" "tests/CMakeFiles/test_soc.dir/soc/pelt_test.cpp.o.d"
  "/root/repo/tests/soc/power_model_test.cpp" "tests/CMakeFiles/test_soc.dir/soc/power_model_test.cpp.o" "gcc" "tests/CMakeFiles/test_soc.dir/soc/power_model_test.cpp.o.d"
  "/root/repo/tests/soc/scheduler_test.cpp" "tests/CMakeFiles/test_soc.dir/soc/scheduler_test.cpp.o" "gcc" "tests/CMakeFiles/test_soc.dir/soc/scheduler_test.cpp.o.d"
  "/root/repo/tests/soc/soc_test.cpp" "tests/CMakeFiles/test_soc.dir/soc/soc_test.cpp.o" "gcc" "tests/CMakeFiles/test_soc.dir/soc/soc_test.cpp.o.d"
  "/root/repo/tests/soc/task_test.cpp" "tests/CMakeFiles/test_soc.dir/soc/task_test.cpp.o" "gcc" "tests/CMakeFiles/test_soc.dir/soc/task_test.cpp.o.d"
  "/root/repo/tests/soc/thermal_test.cpp" "tests/CMakeFiles/test_soc.dir/soc/thermal_test.cpp.o" "gcc" "tests/CMakeFiles/test_soc.dir/soc/thermal_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/hw/CMakeFiles/pmrl_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/rl/CMakeFiles/pmrl_rl.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/pmrl_core.dir/DependInfo.cmake"
  "/root/repo/build/src/governors/CMakeFiles/pmrl_governors.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/pmrl_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/soc/CMakeFiles/pmrl_soc.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/pmrl_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
