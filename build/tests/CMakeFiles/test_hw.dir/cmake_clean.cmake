file(REMOVE_RECURSE
  "CMakeFiles/test_hw.dir/hw/axi_test.cpp.o"
  "CMakeFiles/test_hw.dir/hw/axi_test.cpp.o.d"
  "CMakeFiles/test_hw.dir/hw/datapath_test.cpp.o"
  "CMakeFiles/test_hw.dir/hw/datapath_test.cpp.o.d"
  "CMakeFiles/test_hw.dir/hw/hw_policy_test.cpp.o"
  "CMakeFiles/test_hw.dir/hw/hw_policy_test.cpp.o.d"
  "CMakeFiles/test_hw.dir/hw/latency_test.cpp.o"
  "CMakeFiles/test_hw.dir/hw/latency_test.cpp.o.d"
  "CMakeFiles/test_hw.dir/hw/sw_cost_test.cpp.o"
  "CMakeFiles/test_hw.dir/hw/sw_cost_test.cpp.o.d"
  "test_hw"
  "test_hw.pdb"
  "test_hw[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
