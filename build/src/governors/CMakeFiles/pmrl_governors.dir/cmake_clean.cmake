file(REMOVE_RECURSE
  "CMakeFiles/pmrl_governors.dir/conservative.cpp.o"
  "CMakeFiles/pmrl_governors.dir/conservative.cpp.o.d"
  "CMakeFiles/pmrl_governors.dir/interactive.cpp.o"
  "CMakeFiles/pmrl_governors.dir/interactive.cpp.o.d"
  "CMakeFiles/pmrl_governors.dir/ondemand.cpp.o"
  "CMakeFiles/pmrl_governors.dir/ondemand.cpp.o.d"
  "CMakeFiles/pmrl_governors.dir/registry.cpp.o"
  "CMakeFiles/pmrl_governors.dir/registry.cpp.o.d"
  "CMakeFiles/pmrl_governors.dir/schedutil.cpp.o"
  "CMakeFiles/pmrl_governors.dir/schedutil.cpp.o.d"
  "CMakeFiles/pmrl_governors.dir/static_governors.cpp.o"
  "CMakeFiles/pmrl_governors.dir/static_governors.cpp.o.d"
  "libpmrl_governors.a"
  "libpmrl_governors.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pmrl_governors.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
