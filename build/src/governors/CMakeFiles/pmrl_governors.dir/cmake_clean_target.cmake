file(REMOVE_RECURSE
  "libpmrl_governors.a"
)
