# Empty compiler generated dependencies file for pmrl_governors.
# This may be replaced when dependencies are built.
