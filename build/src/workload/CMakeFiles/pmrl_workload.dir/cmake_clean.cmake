file(REMOVE_RECURSE
  "CMakeFiles/pmrl_workload.dir/qos.cpp.o"
  "CMakeFiles/pmrl_workload.dir/qos.cpp.o.d"
  "CMakeFiles/pmrl_workload.dir/scenarios.cpp.o"
  "CMakeFiles/pmrl_workload.dir/scenarios.cpp.o.d"
  "CMakeFiles/pmrl_workload.dir/sources.cpp.o"
  "CMakeFiles/pmrl_workload.dir/sources.cpp.o.d"
  "CMakeFiles/pmrl_workload.dir/trace.cpp.o"
  "CMakeFiles/pmrl_workload.dir/trace.cpp.o.d"
  "libpmrl_workload.a"
  "libpmrl_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pmrl_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
