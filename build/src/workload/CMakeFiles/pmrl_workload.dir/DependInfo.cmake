
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/qos.cpp" "src/workload/CMakeFiles/pmrl_workload.dir/qos.cpp.o" "gcc" "src/workload/CMakeFiles/pmrl_workload.dir/qos.cpp.o.d"
  "/root/repo/src/workload/scenarios.cpp" "src/workload/CMakeFiles/pmrl_workload.dir/scenarios.cpp.o" "gcc" "src/workload/CMakeFiles/pmrl_workload.dir/scenarios.cpp.o.d"
  "/root/repo/src/workload/sources.cpp" "src/workload/CMakeFiles/pmrl_workload.dir/sources.cpp.o" "gcc" "src/workload/CMakeFiles/pmrl_workload.dir/sources.cpp.o.d"
  "/root/repo/src/workload/trace.cpp" "src/workload/CMakeFiles/pmrl_workload.dir/trace.cpp.o" "gcc" "src/workload/CMakeFiles/pmrl_workload.dir/trace.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/soc/CMakeFiles/pmrl_soc.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/pmrl_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
