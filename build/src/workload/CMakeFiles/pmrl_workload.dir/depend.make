# Empty dependencies file for pmrl_workload.
# This may be replaced when dependencies are built.
