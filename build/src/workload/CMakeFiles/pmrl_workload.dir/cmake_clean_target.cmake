file(REMOVE_RECURSE
  "libpmrl_workload.a"
)
