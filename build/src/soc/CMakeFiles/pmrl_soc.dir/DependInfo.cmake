
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/soc/cluster.cpp" "src/soc/CMakeFiles/pmrl_soc.dir/cluster.cpp.o" "gcc" "src/soc/CMakeFiles/pmrl_soc.dir/cluster.cpp.o.d"
  "/root/repo/src/soc/core.cpp" "src/soc/CMakeFiles/pmrl_soc.dir/core.cpp.o" "gcc" "src/soc/CMakeFiles/pmrl_soc.dir/core.cpp.o.d"
  "/root/repo/src/soc/cpuidle.cpp" "src/soc/CMakeFiles/pmrl_soc.dir/cpuidle.cpp.o" "gcc" "src/soc/CMakeFiles/pmrl_soc.dir/cpuidle.cpp.o.d"
  "/root/repo/src/soc/mem_domain.cpp" "src/soc/CMakeFiles/pmrl_soc.dir/mem_domain.cpp.o" "gcc" "src/soc/CMakeFiles/pmrl_soc.dir/mem_domain.cpp.o.d"
  "/root/repo/src/soc/opp.cpp" "src/soc/CMakeFiles/pmrl_soc.dir/opp.cpp.o" "gcc" "src/soc/CMakeFiles/pmrl_soc.dir/opp.cpp.o.d"
  "/root/repo/src/soc/pelt.cpp" "src/soc/CMakeFiles/pmrl_soc.dir/pelt.cpp.o" "gcc" "src/soc/CMakeFiles/pmrl_soc.dir/pelt.cpp.o.d"
  "/root/repo/src/soc/power_model.cpp" "src/soc/CMakeFiles/pmrl_soc.dir/power_model.cpp.o" "gcc" "src/soc/CMakeFiles/pmrl_soc.dir/power_model.cpp.o.d"
  "/root/repo/src/soc/scheduler.cpp" "src/soc/CMakeFiles/pmrl_soc.dir/scheduler.cpp.o" "gcc" "src/soc/CMakeFiles/pmrl_soc.dir/scheduler.cpp.o.d"
  "/root/repo/src/soc/soc.cpp" "src/soc/CMakeFiles/pmrl_soc.dir/soc.cpp.o" "gcc" "src/soc/CMakeFiles/pmrl_soc.dir/soc.cpp.o.d"
  "/root/repo/src/soc/task.cpp" "src/soc/CMakeFiles/pmrl_soc.dir/task.cpp.o" "gcc" "src/soc/CMakeFiles/pmrl_soc.dir/task.cpp.o.d"
  "/root/repo/src/soc/thermal.cpp" "src/soc/CMakeFiles/pmrl_soc.dir/thermal.cpp.o" "gcc" "src/soc/CMakeFiles/pmrl_soc.dir/thermal.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/pmrl_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
