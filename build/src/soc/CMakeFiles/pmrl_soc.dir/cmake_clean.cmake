file(REMOVE_RECURSE
  "CMakeFiles/pmrl_soc.dir/cluster.cpp.o"
  "CMakeFiles/pmrl_soc.dir/cluster.cpp.o.d"
  "CMakeFiles/pmrl_soc.dir/core.cpp.o"
  "CMakeFiles/pmrl_soc.dir/core.cpp.o.d"
  "CMakeFiles/pmrl_soc.dir/cpuidle.cpp.o"
  "CMakeFiles/pmrl_soc.dir/cpuidle.cpp.o.d"
  "CMakeFiles/pmrl_soc.dir/mem_domain.cpp.o"
  "CMakeFiles/pmrl_soc.dir/mem_domain.cpp.o.d"
  "CMakeFiles/pmrl_soc.dir/opp.cpp.o"
  "CMakeFiles/pmrl_soc.dir/opp.cpp.o.d"
  "CMakeFiles/pmrl_soc.dir/pelt.cpp.o"
  "CMakeFiles/pmrl_soc.dir/pelt.cpp.o.d"
  "CMakeFiles/pmrl_soc.dir/power_model.cpp.o"
  "CMakeFiles/pmrl_soc.dir/power_model.cpp.o.d"
  "CMakeFiles/pmrl_soc.dir/scheduler.cpp.o"
  "CMakeFiles/pmrl_soc.dir/scheduler.cpp.o.d"
  "CMakeFiles/pmrl_soc.dir/soc.cpp.o"
  "CMakeFiles/pmrl_soc.dir/soc.cpp.o.d"
  "CMakeFiles/pmrl_soc.dir/task.cpp.o"
  "CMakeFiles/pmrl_soc.dir/task.cpp.o.d"
  "CMakeFiles/pmrl_soc.dir/thermal.cpp.o"
  "CMakeFiles/pmrl_soc.dir/thermal.cpp.o.d"
  "libpmrl_soc.a"
  "libpmrl_soc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pmrl_soc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
