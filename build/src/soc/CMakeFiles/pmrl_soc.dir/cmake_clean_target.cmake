file(REMOVE_RECURSE
  "libpmrl_soc.a"
)
