# Empty dependencies file for pmrl_soc.
# This may be replaced when dependencies are built.
