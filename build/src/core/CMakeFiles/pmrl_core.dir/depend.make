# Empty dependencies file for pmrl_core.
# This may be replaced when dependencies are built.
