file(REMOVE_RECURSE
  "libpmrl_core.a"
)
