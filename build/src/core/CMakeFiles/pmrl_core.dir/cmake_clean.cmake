file(REMOVE_RECURSE
  "CMakeFiles/pmrl_core.dir/engine.cpp.o"
  "CMakeFiles/pmrl_core.dir/engine.cpp.o.d"
  "CMakeFiles/pmrl_core.dir/metrics.cpp.o"
  "CMakeFiles/pmrl_core.dir/metrics.cpp.o.d"
  "libpmrl_core.a"
  "libpmrl_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pmrl_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
