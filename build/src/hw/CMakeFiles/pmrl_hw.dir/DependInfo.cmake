
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hw/axi.cpp" "src/hw/CMakeFiles/pmrl_hw.dir/axi.cpp.o" "gcc" "src/hw/CMakeFiles/pmrl_hw.dir/axi.cpp.o.d"
  "/root/repo/src/hw/datapath.cpp" "src/hw/CMakeFiles/pmrl_hw.dir/datapath.cpp.o" "gcc" "src/hw/CMakeFiles/pmrl_hw.dir/datapath.cpp.o.d"
  "/root/repo/src/hw/hw_policy.cpp" "src/hw/CMakeFiles/pmrl_hw.dir/hw_policy.cpp.o" "gcc" "src/hw/CMakeFiles/pmrl_hw.dir/hw_policy.cpp.o.d"
  "/root/repo/src/hw/latency.cpp" "src/hw/CMakeFiles/pmrl_hw.dir/latency.cpp.o" "gcc" "src/hw/CMakeFiles/pmrl_hw.dir/latency.cpp.o.d"
  "/root/repo/src/hw/sw_cost.cpp" "src/hw/CMakeFiles/pmrl_hw.dir/sw_cost.cpp.o" "gcc" "src/hw/CMakeFiles/pmrl_hw.dir/sw_cost.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/rl/CMakeFiles/pmrl_rl.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/pmrl_util.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/pmrl_core.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/pmrl_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/governors/CMakeFiles/pmrl_governors.dir/DependInfo.cmake"
  "/root/repo/build/src/soc/CMakeFiles/pmrl_soc.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
