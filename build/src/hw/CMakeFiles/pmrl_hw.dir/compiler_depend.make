# Empty compiler generated dependencies file for pmrl_hw.
# This may be replaced when dependencies are built.
