file(REMOVE_RECURSE
  "CMakeFiles/pmrl_hw.dir/axi.cpp.o"
  "CMakeFiles/pmrl_hw.dir/axi.cpp.o.d"
  "CMakeFiles/pmrl_hw.dir/datapath.cpp.o"
  "CMakeFiles/pmrl_hw.dir/datapath.cpp.o.d"
  "CMakeFiles/pmrl_hw.dir/hw_policy.cpp.o"
  "CMakeFiles/pmrl_hw.dir/hw_policy.cpp.o.d"
  "CMakeFiles/pmrl_hw.dir/latency.cpp.o"
  "CMakeFiles/pmrl_hw.dir/latency.cpp.o.d"
  "CMakeFiles/pmrl_hw.dir/sw_cost.cpp.o"
  "CMakeFiles/pmrl_hw.dir/sw_cost.cpp.o.d"
  "libpmrl_hw.a"
  "libpmrl_hw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pmrl_hw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
