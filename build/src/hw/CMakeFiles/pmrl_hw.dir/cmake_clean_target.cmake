file(REMOVE_RECURSE
  "libpmrl_hw.a"
)
