file(REMOVE_RECURSE
  "libpmrl_util.a"
)
