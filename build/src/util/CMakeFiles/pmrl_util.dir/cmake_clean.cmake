file(REMOVE_RECURSE
  "CMakeFiles/pmrl_util.dir/csv.cpp.o"
  "CMakeFiles/pmrl_util.dir/csv.cpp.o.d"
  "CMakeFiles/pmrl_util.dir/log.cpp.o"
  "CMakeFiles/pmrl_util.dir/log.cpp.o.d"
  "CMakeFiles/pmrl_util.dir/rng.cpp.o"
  "CMakeFiles/pmrl_util.dir/rng.cpp.o.d"
  "CMakeFiles/pmrl_util.dir/stats.cpp.o"
  "CMakeFiles/pmrl_util.dir/stats.cpp.o.d"
  "CMakeFiles/pmrl_util.dir/table.cpp.o"
  "CMakeFiles/pmrl_util.dir/table.cpp.o.d"
  "libpmrl_util.a"
  "libpmrl_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pmrl_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
