# Empty dependencies file for pmrl_util.
# This may be replaced when dependencies are built.
