file(REMOVE_RECURSE
  "libpmrl_rl.a"
)
