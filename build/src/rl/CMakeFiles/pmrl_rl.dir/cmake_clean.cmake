file(REMOVE_RECURSE
  "CMakeFiles/pmrl_rl.dir/action.cpp.o"
  "CMakeFiles/pmrl_rl.dir/action.cpp.o.d"
  "CMakeFiles/pmrl_rl.dir/agent.cpp.o"
  "CMakeFiles/pmrl_rl.dir/agent.cpp.o.d"
  "CMakeFiles/pmrl_rl.dir/fixed_agent.cpp.o"
  "CMakeFiles/pmrl_rl.dir/fixed_agent.cpp.o.d"
  "CMakeFiles/pmrl_rl.dir/policy_io.cpp.o"
  "CMakeFiles/pmrl_rl.dir/policy_io.cpp.o.d"
  "CMakeFiles/pmrl_rl.dir/q_table.cpp.o"
  "CMakeFiles/pmrl_rl.dir/q_table.cpp.o.d"
  "CMakeFiles/pmrl_rl.dir/reward.cpp.o"
  "CMakeFiles/pmrl_rl.dir/reward.cpp.o.d"
  "CMakeFiles/pmrl_rl.dir/rl_governor.cpp.o"
  "CMakeFiles/pmrl_rl.dir/rl_governor.cpp.o.d"
  "CMakeFiles/pmrl_rl.dir/state.cpp.o"
  "CMakeFiles/pmrl_rl.dir/state.cpp.o.d"
  "CMakeFiles/pmrl_rl.dir/trainer.cpp.o"
  "CMakeFiles/pmrl_rl.dir/trainer.cpp.o.d"
  "libpmrl_rl.a"
  "libpmrl_rl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pmrl_rl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
