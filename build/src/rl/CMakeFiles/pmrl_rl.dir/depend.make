# Empty dependencies file for pmrl_rl.
# This may be replaced when dependencies are built.
