
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rl/action.cpp" "src/rl/CMakeFiles/pmrl_rl.dir/action.cpp.o" "gcc" "src/rl/CMakeFiles/pmrl_rl.dir/action.cpp.o.d"
  "/root/repo/src/rl/agent.cpp" "src/rl/CMakeFiles/pmrl_rl.dir/agent.cpp.o" "gcc" "src/rl/CMakeFiles/pmrl_rl.dir/agent.cpp.o.d"
  "/root/repo/src/rl/fixed_agent.cpp" "src/rl/CMakeFiles/pmrl_rl.dir/fixed_agent.cpp.o" "gcc" "src/rl/CMakeFiles/pmrl_rl.dir/fixed_agent.cpp.o.d"
  "/root/repo/src/rl/policy_io.cpp" "src/rl/CMakeFiles/pmrl_rl.dir/policy_io.cpp.o" "gcc" "src/rl/CMakeFiles/pmrl_rl.dir/policy_io.cpp.o.d"
  "/root/repo/src/rl/q_table.cpp" "src/rl/CMakeFiles/pmrl_rl.dir/q_table.cpp.o" "gcc" "src/rl/CMakeFiles/pmrl_rl.dir/q_table.cpp.o.d"
  "/root/repo/src/rl/reward.cpp" "src/rl/CMakeFiles/pmrl_rl.dir/reward.cpp.o" "gcc" "src/rl/CMakeFiles/pmrl_rl.dir/reward.cpp.o.d"
  "/root/repo/src/rl/rl_governor.cpp" "src/rl/CMakeFiles/pmrl_rl.dir/rl_governor.cpp.o" "gcc" "src/rl/CMakeFiles/pmrl_rl.dir/rl_governor.cpp.o.d"
  "/root/repo/src/rl/state.cpp" "src/rl/CMakeFiles/pmrl_rl.dir/state.cpp.o" "gcc" "src/rl/CMakeFiles/pmrl_rl.dir/state.cpp.o.d"
  "/root/repo/src/rl/trainer.cpp" "src/rl/CMakeFiles/pmrl_rl.dir/trainer.cpp.o" "gcc" "src/rl/CMakeFiles/pmrl_rl.dir/trainer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/pmrl_core.dir/DependInfo.cmake"
  "/root/repo/build/src/governors/CMakeFiles/pmrl_governors.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/pmrl_util.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/pmrl_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/soc/CMakeFiles/pmrl_soc.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
