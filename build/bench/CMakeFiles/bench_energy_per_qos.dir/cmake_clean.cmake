file(REMOVE_RECURSE
  "CMakeFiles/bench_energy_per_qos.dir/bench_common.cpp.o"
  "CMakeFiles/bench_energy_per_qos.dir/bench_common.cpp.o.d"
  "CMakeFiles/bench_energy_per_qos.dir/bench_energy_per_qos.cpp.o"
  "CMakeFiles/bench_energy_per_qos.dir/bench_energy_per_qos.cpp.o.d"
  "bench_energy_per_qos"
  "bench_energy_per_qos.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_energy_per_qos.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
