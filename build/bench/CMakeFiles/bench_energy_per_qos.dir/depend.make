# Empty dependencies file for bench_energy_per_qos.
# This may be replaced when dependencies are built.
