# Empty compiler generated dependencies file for bench_ablation_epoch.
# This may be replaced when dependencies are built.
