file(REMOVE_RECURSE
  "CMakeFiles/bench_scenario_breakdown.dir/bench_common.cpp.o"
  "CMakeFiles/bench_scenario_breakdown.dir/bench_common.cpp.o.d"
  "CMakeFiles/bench_scenario_breakdown.dir/bench_scenario_breakdown.cpp.o"
  "CMakeFiles/bench_scenario_breakdown.dir/bench_scenario_breakdown.cpp.o.d"
  "bench_scenario_breakdown"
  "bench_scenario_breakdown.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_scenario_breakdown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
