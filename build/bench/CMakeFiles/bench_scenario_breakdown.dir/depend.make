# Empty dependencies file for bench_scenario_breakdown.
# This may be replaced when dependencies are built.
