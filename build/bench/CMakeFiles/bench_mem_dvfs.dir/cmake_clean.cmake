file(REMOVE_RECURSE
  "CMakeFiles/bench_mem_dvfs.dir/bench_common.cpp.o"
  "CMakeFiles/bench_mem_dvfs.dir/bench_common.cpp.o.d"
  "CMakeFiles/bench_mem_dvfs.dir/bench_mem_dvfs.cpp.o"
  "CMakeFiles/bench_mem_dvfs.dir/bench_mem_dvfs.cpp.o.d"
  "bench_mem_dvfs"
  "bench_mem_dvfs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_mem_dvfs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
