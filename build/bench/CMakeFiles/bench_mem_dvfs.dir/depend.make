# Empty dependencies file for bench_mem_dvfs.
# This may be replaced when dependencies are built.
