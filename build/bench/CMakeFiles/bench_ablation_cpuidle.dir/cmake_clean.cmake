file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_cpuidle.dir/bench_ablation_cpuidle.cpp.o"
  "CMakeFiles/bench_ablation_cpuidle.dir/bench_ablation_cpuidle.cpp.o.d"
  "CMakeFiles/bench_ablation_cpuidle.dir/bench_common.cpp.o"
  "CMakeFiles/bench_ablation_cpuidle.dir/bench_common.cpp.o.d"
  "bench_ablation_cpuidle"
  "bench_ablation_cpuidle.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_cpuidle.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
