# Empty dependencies file for bench_ablation_cpuidle.
# This may be replaced when dependencies are built.
