# Empty compiler generated dependencies file for bench_hw_latency.
# This may be replaced when dependencies are built.
