file(REMOVE_RECURSE
  "CMakeFiles/bench_hw_latency.dir/bench_common.cpp.o"
  "CMakeFiles/bench_hw_latency.dir/bench_common.cpp.o.d"
  "CMakeFiles/bench_hw_latency.dir/bench_hw_latency.cpp.o"
  "CMakeFiles/bench_hw_latency.dir/bench_hw_latency.cpp.o.d"
  "bench_hw_latency"
  "bench_hw_latency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_hw_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
