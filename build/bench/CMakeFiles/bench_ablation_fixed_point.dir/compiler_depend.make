# Empty compiler generated dependencies file for bench_ablation_fixed_point.
# This may be replaced when dependencies are built.
